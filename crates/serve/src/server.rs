//! The network serving front end: a thread-per-connection TCP server
//! wrapping one [`ServeEngine`].
//!
//! # Architecture
//!
//! ```text
//! clients ──TCP──▶ accept loop ──▶ session threads (session.rs)
//!                                   │ validate, try_submit under the
//!                                   │ core lock, record (conn, tag)
//!                                   ▼
//!                        ┌── Core { ServeEngine, pending } ──┐
//!                        │    one mutex; submission and      │
//!                        │    drain serialize through it     │
//!                        └──────────────┬────────────────────┘
//!                                       │ dispatcher thread:
//!                                       │ coalescing window, then
//!                                       │ drain_traced()
//!                                       ▼
//!                        completions routed back per (conn, tag)
//! ```
//!
//! The engine stays the pure deterministic core the rest of the
//! workspace pins: the server adds *no* scheduling of its own — it only
//! decides **when** to call `drain_traced` (after a short coalescing
//! window, so concurrent connections' requests land in one batcher
//! pass). Outputs over the wire are therefore byte-identical to an
//! in-process engine fed the same `(model, input)` pairs, which is what
//! the closed-loop benchmark asserts.
//!
//! # Admission control and backpressure
//!
//! * **Model admission** goes through [`ServeEngine::admit_strict`]: a
//!   model is admitted only if some chip can commit its full
//!   weight-stationary footprint, so a client cannot oversubscribe the
//!   cluster's cell budgets.
//! * **Request admission** is bounded by `queue_capacity`: an `Infer`
//!   arriving while the engine holds that many undrained requests draws
//!   [`ErrorCode::Backpressure`](crate::protocol::ErrorCode::Backpressure)
//!   instead of queueing, checked under the same lock as the submit so
//!   the bound is exact.
//! * Out-of-order arrival ticks across connections are routine and
//!   handled by ordered insertion in [`ServeEngine::try_submit`] — a
//!   misbehaving client can be *refused*, never crash the server.

use crate::cluster::{ChipHealth, ChipId};
use crate::engine::ServeEngine;
use crate::protocol::{ServerFrame, WireToken};
use crate::request::{RequestId, SequenceId};
use crate::session::{self, Conn};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of the network front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// How long the dispatcher waits after work appears before draining,
    /// so concurrent connections' requests coalesce into shared batches.
    pub coalesce: Duration,
    /// Submission-queue depth past which `Infer` draws `Backpressure`.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            coalesce: Duration::from_millis(2),
            queue_capacity: 256,
        }
    }
}

/// Where a finished request's completion goes.
struct Pending {
    conn: Arc<Conn>,
    tag: u64,
}

/// The engine plus the reply-routing table — everything behind the one
/// core mutex.
pub(crate) struct Core {
    pub(crate) engine: ServeEngine,
    pending: HashMap<RequestId, Pending>,
    /// Routes for live `Generate` sequences, keyed by sequence id. A
    /// route persists across the sequence's whole token stream (every
    /// step's completion goes to the same `(conn, tag)`) and is dropped
    /// on the `done` frame or a shed.
    seq_routes: HashMap<u64, Pending>,
    /// Batches dispatched before the current drain: per-drain `batch_seq`
    /// restarts at 0, and this offset makes the wire-visible sequence
    /// monotone across the server's lifetime.
    batch_base: u64,
}

impl Core {
    /// Records where `id`'s completion should be delivered.
    pub(crate) fn note_pending(&mut self, id: RequestId, conn: Arc<Conn>, tag: u64) {
        self.pending.insert(id, Pending { conn, tag });
    }

    /// Records where sequence `id`'s token stream should be delivered.
    pub(crate) fn note_sequence(&mut self, id: SequenceId, conn: Arc<Conn>, tag: u64) {
        self.seq_routes.insert(id.0, Pending { conn, tag });
    }

    /// Whether any in-flight request — single inference or live
    /// sequence — belongs to session `conn_id`.
    pub(crate) fn has_pending_for(&self, conn_id: u64) -> bool {
        self.pending.values().any(|p| p.conn.id == conn_id)
            || self.seq_routes.values().any(|p| p.conn.id == conn_id)
    }
}

/// State shared by the accept loop, session threads, and the dispatcher.
pub(crate) struct Shared {
    pub(crate) core: Mutex<Core>,
    /// Signaled when work is queued (or at shutdown).
    pub(crate) work: Condvar,
    /// Signaled after each drain (Goodbye waits on it to flush).
    pub(crate) drained: Condvar,
    pub(crate) shutdown: AtomicBool,
    pub(crate) queue_capacity: usize,
    /// Device activation ceiling (`2^bits − 1`); inputs outside `0..=v_max`
    /// are refused at the session edge.
    pub(crate) v_max: i64,
    coalesce: Duration,
}

/// A running serving front end. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop, unblocks and joins every
/// session, drains nothing further, and joins the dispatcher.
///
/// # Examples
///
/// ```no_run
/// use oxbar_serve::{catalog, Server, ServerConfig, ServeConfig, ServeEngine};
/// use oxbar_sim::SimConfig;
///
/// let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)));
/// engine.admit(catalog::lenet5_model()).unwrap();
/// let server = Server::start(engine, ServerConfig::default()).unwrap();
/// println!("serving on {}", server.addr());
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<Arc<Conn>>>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds a loopback listener on an ephemeral port and starts serving
    /// `engine` behind it.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(engine: ServeEngine, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let v_max = engine.config().device.v_max();
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                engine,
                pending: HashMap::new(),
                seq_routes: HashMap::new(),
                batch_base: 0,
            }),
            work: Condvar::new(),
            drained: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_capacity: config.queue_capacity,
            v_max,
            coalesce: config.coalesce,
        });
        let conns: Arc<Mutex<Vec<Arc<Conn>>>> = Arc::new(Mutex::new(Vec::new()));
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let dispatcher = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || dispatch_loop(&shared, &conns))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            let sessions = Arc::clone(&sessions);
            std::thread::spawn(move || accept_loop(&listener, &shared, &conns, &sessions))
        };
        Ok(Self {
            addr,
            shared,
            conns,
            sessions,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound loopback address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks and joins every session thread, joins
    /// the dispatcher, and returns. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Unblock every session's blocking read.
        for conn in self.conns.lock().expect("conns lock").iter() {
            conn.shutdown();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.sessions.lock().expect("sessions lock"));
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || self.dispatcher.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<Arc<Conn>>>>,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let Ok(writer) = stream.try_clone() else {
            continue;
        };
        let conn = Arc::new(Conn::new(next_id, writer));
        next_id += 1;
        conns.lock().expect("conns lock").push(Arc::clone(&conn));
        let shared = Arc::clone(shared);
        let conns = Arc::clone(conns);
        let handle = std::thread::spawn(move || {
            session::run(stream, &conn, &shared);
            // Close the socket for real (the write half lives on in
            // `conns` and any pending replies) and drop the registry
            // entry, so a finished session's peer sees end-of-stream.
            conn.shutdown();
            conns
                .lock()
                .expect("conns lock")
                .retain(|c| c.id != conn.id);
        });
        sessions.lock().expect("sessions lock").push(handle);
    }
}

/// The dispatcher: waits for queued work, lets the coalescing window
/// elapse so concurrent connections share batches, drains the engine,
/// and routes completions — and shed notices — back to their sessions.
/// Chip-health transitions a drain exposes are broadcast to every live
/// session as [`ServerFrame::Degraded`].
fn dispatch_loop(shared: &Arc<Shared>, conns: &Arc<Mutex<Vec<Arc<Conn>>>>) {
    let mut last_health: Vec<ChipHealth> = Vec::new();
    loop {
        {
            let mut core = shared.core.lock().expect("core lock");
            while core.engine.queued() == 0 && !shared.shutdown.load(Ordering::SeqCst) {
                core = shared.work.wait(core).expect("core lock");
            }
            if core.engine.queued() == 0 {
                // Shutdown with an empty queue: nothing left to serve.
                return;
            }
        }
        // Coalescing window, outside the lock so sessions keep admitting.
        std::thread::sleep(shared.coalesce);
        let mut broadcasts: Vec<ServerFrame> = Vec::new();
        let replies: Vec<(Arc<Conn>, ServerFrame)> = {
            let mut core = shared.core.lock().expect("core lock");
            let trace = core.engine.drain_traced();
            let base = core.batch_base;
            core.batch_base += trace.batch_ms.len() as u64;
            let mut replies: Vec<(Arc<Conn>, ServerFrame)> = Vec::new();
            for c in trace.completions {
                if let Some(tc) = c.sequence {
                    // Token steps stream through the sequence route:
                    // every step of a sequence answers the same tag, in
                    // dispatch (= step) order; the route dies with the
                    // `done` frame.
                    let Some(p) = core.seq_routes.get(&tc.sequence.0) else {
                        continue;
                    };
                    let frame = ServerFrame::Completion {
                        tag: p.tag,
                        batch_seq: base + c.batch_seq as u64,
                        batch_size: c.batch_size as u64,
                        output: c.output,
                        sequence: Some(WireToken {
                            step: tc.step as u64,
                            token: u64::from(tc.token),
                            done: tc.done,
                        }),
                    };
                    replies.push((Arc::clone(&p.conn), frame));
                    if tc.done {
                        core.seq_routes.remove(&tc.sequence.0);
                    }
                } else if let Some(p) = core.pending.remove(&c.id) {
                    let frame = ServerFrame::Completion {
                        tag: p.tag,
                        batch_seq: base + c.batch_seq as u64,
                        batch_size: c.batch_size as u64,
                        output: c.output,
                        sequence: None,
                    };
                    replies.push((p.conn, frame));
                }
            }
            // Shed requests answer through the same pending table, so a
            // session waiting on its tag (or a Goodbye flush) always
            // terminates — a shed is a completion, not a hang.
            for shed in trace.sheds {
                if let Some(p) = core.pending.remove(&shed.id) {
                    let frame = ServerFrame::Shed {
                        tag: p.tag,
                        detail: shed.detail,
                    };
                    replies.push((p.conn, frame));
                }
            }
            // A sequence the fault handler terminated answers its tag
            // with a Shed — the terminal frame, so `wait_sequence`
            // never hangs on a killed sequence.
            let shed_seqs: Vec<u64> = core
                .seq_routes
                .keys()
                .copied()
                .filter(|&s| core.engine.sequence_shed(SequenceId(s)))
                .collect();
            for s in shed_seqs {
                if let Some(p) = core.seq_routes.remove(&s) {
                    let frame = ServerFrame::Shed {
                        tag: p.tag,
                        detail: format!("sequence {s} terminated by the fault handler"),
                    };
                    replies.push((p.conn, frame));
                }
            }
            let registry = core.engine.registry();
            let health: Vec<ChipHealth> = (0..registry.chip_count())
                .map(|c| registry.chip_health(ChipId(c)))
                .collect();
            if last_health.is_empty() {
                last_health = vec![ChipHealth::Healthy; health.len()];
            }
            for (chip, (&now, &before)) in health.iter().zip(&last_health).enumerate() {
                if now != before {
                    broadcasts.push(ServerFrame::Degraded {
                        chip: chip as u64,
                        health: now.to_string(),
                    });
                }
            }
            last_health = health;
            replies
        };
        // Write outside the lock; a dead peer just drops its replies.
        for (conn, frame) in &replies {
            let _ = conn.send(frame);
        }
        if !broadcasts.is_empty() {
            let live: Vec<Arc<Conn>> = conns.lock().expect("conns lock").clone();
            for conn in &live {
                for frame in &broadcasts {
                    let _ = conn.send(frame);
                }
            }
        }
        shared.drained.notify_all();
    }
}
