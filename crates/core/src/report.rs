//! The combined chip evaluation report.

use crate::area::AreaBreakdown;
use crate::power::PowerBreakdown;
use oxbar_units::{Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// Everything the paper reports about one (chip, network) evaluation:
/// IPS, IPS/W, power and area with full breakdowns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipReport {
    /// Network evaluated.
    pub network: String,
    /// Array geometry (rows, cols).
    pub array: (usize, usize),
    /// Batch size.
    pub batch: usize,
    /// Photonic core replicas.
    pub cores: usize,
    /// Inferences per second.
    pub ips: f64,
    /// Inferences per second per watt.
    pub ips_per_watt: f64,
    /// Average chip power.
    pub power: Power,
    /// Per-subsystem energy per batch pass.
    pub energy: PowerBreakdown,
    /// Per-subsystem area.
    pub area: AreaBreakdown,
    /// Energy per inference.
    pub energy_per_inference: Energy,
    /// Wall-clock time per batch pass.
    pub batch_time: Time,
    /// MAC-array average utilization.
    pub utilization: f64,
    /// Effective tera-operations per second (2 ops per MAC).
    pub tops: f64,
}

impl ChipReport {
    /// Effective TOPS/W.
    #[must_use]
    pub fn tops_per_watt(&self) -> f64 {
        self.tops / self.power.as_watts()
    }
}

impl core::fmt::Display for ChipReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{} on {}x{} (cores: {}, batch: {})",
            self.network, self.array.0, self.array.1, self.cores, self.batch
        )?;
        writeln!(f, "  IPS          : {:.0}", self.ips)?;
        writeln!(f, "  IPS/W        : {:.0}", self.ips_per_watt)?;
        writeln!(f, "  power        : {}", self.power)?;
        writeln!(
            f,
            "  area         : {:.1} mm²",
            self.area.total().as_square_millimeters()
        )?;
        writeln!(f, "  E/inference  : {}", self.energy_per_inference)?;
        writeln!(f, "  utilization  : {:.1}%", self.utilization * 100.0)?;
        writeln!(f, "  TOPS (eff.)  : {:.1}", self.tops)?;
        writeln!(f, "  power breakdown:")?;
        let total_e = self.energy.total().as_joules();
        for (name, e) in self.energy.entries() {
            writeln!(
                f,
                "    {:32} {:6.2}%",
                name,
                e.as_joules() / total_e * 100.0
            )?;
        }
        writeln!(f, "  area breakdown:")?;
        let total_a = self.area.total().as_square_meters();
        for (name, a) in self.area.entries() {
            writeln!(
                f,
                "    {:32} {:6.2}%  ({:.2} mm²)",
                name,
                a.as_square_meters() / total_a * 100.0,
                a.as_square_millimeters()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::chip::Chip;
    use crate::config::ChipConfig;
    use oxbar_nn::zoo::resnet50_v1_5;

    #[test]
    fn display_contains_key_metrics() {
        let report = Chip::new(ChipConfig::paper_optimal()).evaluate(&resnet50_v1_5());
        let text = report.to_string();
        assert!(text.contains("IPS"));
        assert!(text.contains("power breakdown"));
        assert!(text.contains("SRAM"));
        assert!(text.contains("128x128"));
    }

    #[test]
    fn tops_per_watt_consistent() {
        let report = Chip::new(ChipConfig::paper_optimal()).evaluate(&resnet50_v1_5());
        let manual = report.tops / report.power.as_watts();
        assert!((report.tops_per_watt() - manual).abs() < 1e-12);
    }
}
