//! Cluster-layer equivalence properties.
//!
//! Three invariants make the multi-chip refactor safe to ship:
//!
//! 1. a **1-chip cluster configuration is byte-identical** to the classic
//!    single-registry engine — outputs and the full stats block, eviction
//!    sequence included — across random policies, budgets, worker counts,
//!    and the pipelined prewarm stage;
//! 2. **multi-chip serving changes work, not results**: the same trace on
//!    a 2-chip cluster answers byte-identically to one big chip, and is
//!    itself invariant under the dispatch worker count (the chip-aware
//!    round routing is deterministic);
//! 3. an **over-budget hot spot migrates** models between chips during
//!    serving — snapshot-based, bit-exact, no eviction — when a sibling
//!    has occupancy room.

use oxbar_nn::synthetic::{self, small_network};
use oxbar_serve::request::request_seed;
use oxbar_serve::{
    catalog, BatchPolicy, ChipId, EngineStats, InferRequest, ModelId, ModelSpec, PlacementPolicy,
    ServeConfig, ServeEngine,
};
use oxbar_sim::SimConfig;
use proptest::prelude::*;

/// Two random small sequential networks as the resident models.
fn random_specs(seed: u64) -> [ModelSpec; 2] {
    [
        catalog::spec_from_network(small_network(seed), seed ^ 0x11),
        catalog::spec_from_network(small_network(seed ^ 0x7F3), seed ^ 0x22),
    ]
}

/// Runs the same random 8-request trace through an engine built from
/// `config`, returning per-request outputs (sorted by request id) and the
/// final stats.
fn serve_trace(
    config: ServeConfig,
    specs: &[ModelSpec],
    seed: u64,
) -> (Vec<Vec<i64>>, EngineStats) {
    let mut engine = ServeEngine::new(config);
    let ids: Vec<ModelId> = specs
        .iter()
        .map(|s| engine.admit(s.clone()).expect("sequential models admit"))
        .collect();
    for i in 0..8u64 {
        let which = (request_seed(seed, i) % specs.len() as u64) as usize;
        engine.submit(InferRequest {
            model: ids[which],
            input: synthetic::activations(
                specs[which].network.input(),
                6,
                request_seed(seed ^ 0xBEEF, i),
            ),
            arrival: i / 2,
            deadline: None,
        });
    }
    let mut done = engine.drain();
    done.sort_by_key(|c| c.id);
    (
        done.iter().map(|c| c.output.data().to_vec()).collect(),
        engine.stats(),
    )
}

/// Per-model residency: `(chip, resident cells, cache entries)`.
type ModelResidency = (usize, usize, usize);
/// Per-chip outcome: `(evictions, migrations in, migrations out,
/// occupancy cells, models)`.
type ChipOutcome = (u64, u64, u64, usize, usize);

/// What must be invariant under the dispatch worker count: where every
/// model ended up, what is resident, and every eviction/migration the
/// budgets forced.
fn residency_signature(stats: &EngineStats) -> (u64, u64, Vec<ModelResidency>, Vec<ChipOutcome>) {
    (
        stats.evictions,
        stats.migrations,
        stats
            .models
            .iter()
            .map(|m| (m.chip, m.cache.cells, m.cache.entries))
            .collect(),
        stats
            .chips
            .iter()
            .map(|c| {
                (
                    c.evictions,
                    c.migrations_in,
                    c.migrations_out,
                    c.occupancy_cells,
                    c.models,
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn one_chip_cluster_is_byte_identical_to_the_classic_engine(seed in 0u64..10_000) {
        let specs = random_specs(seed);
        let device = SimConfig::ideal(32, 16).with_seed(seed).with_threads(1);
        let budget = if seed % 2 == 0 { usize::MAX } else { 4_000 };
        let base = ServeConfig::new(device)
            .with_policy(BatchPolicy::new(1 + (seed % 5) as usize, seed % 7))
            .with_workers(1 + (seed % 3) as usize)
            .with_cache_budget(budget)
            .with_prewarm(seed % 2 == 0);
        let classic = serve_trace(base.clone(), &specs, seed);
        let explicit = serve_trace(base.with_chips(vec![budget]), &specs, seed);
        // Outputs byte for byte, and the full stats block — eviction
        // sequence included.
        prop_assert_eq!(&classic.0, &explicit.0);
        prop_assert_eq!(&classic.1, &explicit.1);
    }

    #[test]
    fn multi_chip_serving_changes_work_not_results(seed in 0u64..10_000) {
        let specs = random_specs(seed);
        let device = SimConfig::ideal(32, 16).with_seed(seed).with_threads(1);
        // Half the cases run roomy chips, half run per-chip budgets tight
        // enough to force eviction/migration churn.
        let per_chip = if seed % 2 == 0 { 1_000_000 } else { 3_000 };
        let placement = if seed % 2 == 0 {
            PlacementPolicy::LeastLoaded
        } else {
            PlacementPolicy::FirstFit
        };
        let dual = ServeConfig::new(device.clone())
            .with_policy(BatchPolicy::new(1 + (seed % 5) as usize, seed % 7))
            .with_chips(vec![per_chip, per_chip])
            .with_placement(placement)
            .with_prewarm(seed % 3 == 0);
        let serial = serve_trace(dual.clone().with_workers(1), &specs, seed);
        let wide = serve_trace(dual.clone().with_workers(3), &specs, seed);
        // Worker count must change neither outputs nor the
        // eviction/migration/placement outcome. (Prewarm-stage counters
        // legitimately differ: the round structure is the worker count.)
        prop_assert_eq!(&serial.0, &wide.0);
        prop_assert_eq!(residency_signature(&serial.1), residency_signature(&wide.1));
        // The same trace on one big chip answers identically: sharding
        // (and any migration/eviction it causes) never touches results.
        let single = serve_trace(dual.with_chips(vec![2 * per_chip]), &specs, seed);
        prop_assert_eq!(&serial.0, &single.0);
    }
}

#[test]
fn overflow_hot_spot_migrates_between_chips_during_serving() {
    // Three ~61k-cell LeNets on two 100k-cell chips: first fit pins A to
    // chip 0 and B to chip 1; C's footprint has committed room nowhere,
    // so permissive admission overflows it onto the least-committed chip
    // (the tie breaks to chip 0). Serving A then C pushes chip 0 to
    // ~122k resident cells, and enforcement must MIGRATE the LRU model A
    // to chip 1 — which has occupancy room because B never served — not
    // evict it.
    let device = SimConfig::ideal(128, 128).with_threads(1);
    let config = ServeConfig::new(device.clone()).with_chips(vec![100_000, 100_000]);
    let mut engine = ServeEngine::new(config);
    let a = engine.admit(catalog::lenet5_model()).unwrap();
    let b = engine.admit(catalog::lenet5_model()).unwrap();
    let c = engine.admit(catalog::lenet5_model()).unwrap();
    assert_eq!(engine.registry().chip_of(a), ChipId(0));
    assert_eq!(engine.registry().chip_of(b), ChipId(1));
    assert_eq!(
        engine.registry().chip_of(c),
        ChipId(0),
        "overflow lands on chip 0"
    );

    let shape = engine.input_shape(a);
    let input = move |seed| synthetic::activations(shape, 6, seed);
    engine.submit_simple(a, input(1));
    engine.submit_simple(c, input(2));
    let done = engine.drain();
    assert_eq!(done.len(), 2);

    let stats = engine.stats();
    assert_eq!(stats.evictions, 0, "a sibling had room: no eviction");
    assert_eq!(stats.migrations, 1, "the hot spot resolved by migration");
    assert_eq!(engine.registry().chip_of(a), ChipId(1), "LRU model A moved");
    assert_eq!(stats.chips[1].migrations_in, 1);
    assert_eq!(stats.chips[0].migrations_out, 1);
    assert_eq!(stats.chips[0].models, 1, "C remains on chip 0");
    assert_eq!(stats.chips[1].models, 2, "B plus the migrated A");
    assert!(stats.chips[0].occupancy_cells <= 100_000);
    assert!(stats.chips[1].occupancy_cells <= 100_000);

    // Per-chip stats reconcile with the per-model breakdown.
    let model_hits: u64 = stats.models.iter().map(|m| m.cache.hits).sum();
    let model_misses: u64 = stats.models.iter().map(|m| m.cache.misses).sum();
    let chip_hits: u64 = stats.chips.iter().map(|c| c.hits).sum();
    let chip_misses: u64 = stats.chips.iter().map(|c| c.misses).sum();
    assert_eq!((chip_hits, chip_misses), (model_hits, model_misses));
    let chip_occ: usize = stats.chips.iter().map(|c| c.occupancy_cells).sum();
    assert_eq!(chip_occ, stats.occupancy_cells);

    // Migration kept A's programmed state resident: serving it again is
    // pure cache hits, and the answer matches a one-big-chip engine that
    // never sharded (admission seeds are global, so model A is the same
    // device in both worlds).
    let misses_before = stats.models[a.0].cache.misses;
    engine.submit_simple(a, input(1));
    let replay = engine.drain();
    assert_eq!(
        engine.stats().models[a.0].cache.misses,
        misses_before,
        "migrated state serves without reprogramming"
    );

    let mut oracle = ServeEngine::new(ServeConfig::new(device).with_cache_budget(1_000_000));
    let oa = oracle.admit(catalog::lenet5_model()).unwrap();
    oracle.admit(catalog::lenet5_model()).unwrap();
    oracle.admit(catalog::lenet5_model()).unwrap();
    oracle.submit_simple(oa, input(1));
    let expect = oracle.drain();
    assert_eq!(oa, a);
    assert_eq!(
        replay[0].output, expect[0].output,
        "migration must never change what a model answers"
    );
}
