//! Determinism of autoregressive token serving.
//!
//! The contract under test: a sequence's token stream is a pure function
//! of `(weights, prompt, steps, device config)` — byte-identical across
//! dispatch worker counts, with the prewarm pipeline on or off, and
//! across cluster shapes (1 chip vs `Replicated(2)`), **including** a
//! chip kill landing mid-sequence: replicas share the model's admission
//! seed, so failover never perturbs a single decoded token.

use oxbar_nn::synthetic;
use oxbar_serve::{
    catalog, Completion, FaultPlan, InferRequest, PlacementPolicy, ServeConfig, ServeEngine,
};
use oxbar_sim::SimConfig;

/// Runs the canonical mixed CNN + LLM trace through `config`: two
/// sequences against `llm_tiny` interleaved with four LeNet requests,
/// drained to idle. Returns the completions and both token streams.
fn mixed_trace(config: ServeConfig) -> (Vec<Completion>, Vec<Vec<u32>>) {
    let mut engine = ServeEngine::new(config);
    let lenet = engine.admit(catalog::lenet5_model()).expect("lenet admits");
    let llm = engine.admit(catalog::llm_tiny()).expect("llm_tiny admits");
    let a = engine.begin_sequence(llm, 5, 8, 0, 1).expect("sequence a");
    let b = engine.begin_sequence(llm, 20, 8, 1, 1).expect("sequence b");
    for i in 0..4u64 {
        engine.submit(InferRequest {
            model: lenet,
            input: synthetic::activations(engine.input_shape(lenet), 6, i),
            arrival: i,
            deadline: Some(i + 200),
        });
    }
    let done = engine.drain();
    assert!(engine.sequence_finished(a) && engine.sequence_finished(b));
    assert!(!engine.sequence_shed(a) && !engine.sequence_shed(b));
    let tokens = vec![
        engine.sequence_tokens(a).to_vec(),
        engine.sequence_tokens(b).to_vec(),
    ];
    (done, tokens)
}

#[test]
fn token_streams_are_invariant_across_workers_and_prewarm() {
    // Noisy physics on purpose: determinism must survive the full device
    // model, not just the ideal integer path.
    let device = SimConfig::noisy(64, 64).with_seed(41).with_threads(1);
    let base = ServeConfig::new(device);
    let (done_ref, tokens_ref) = mixed_trace(base.clone().with_workers(1));
    for workers in [2usize, 4] {
        for prewarm in [true, false] {
            let config = base.clone().with_workers(workers).with_prewarm(prewarm);
            let (done, tokens) = mixed_trace(config);
            assert_eq!(
                tokens, tokens_ref,
                "token streams diverged at workers={workers} prewarm={prewarm}"
            );
            assert_eq!(
                done, done_ref,
                "completions diverged at workers={workers} prewarm={prewarm}"
            );
        }
    }
    assert_eq!(done_ref.len(), 4 + 16, "4 CNN + 2 sequences x 8 steps");
}

#[test]
fn replicated_failover_mid_sequence_is_byte_identical() {
    let device = SimConfig::noisy(64, 64).with_seed(17).with_threads(1);
    // Reference: one healthy chip, no faults.
    let single = ServeConfig::new(device.clone()).with_chips(vec![600_000]);
    let (_, tokens_ref) = mixed_trace(single);

    // Same trace on a two-chip replicated cluster whose chip 0 is killed
    // at global batch 3 — mid-sequence (each decode step is its own
    // scheduler pass, so the sequences span many batches).
    let replicated = ServeConfig::new(device)
        .with_chips(vec![600_000, 600_000])
        .with_placement(PlacementPolicy::Replicated(2))
        .with_faults(FaultPlan::new().kill_chip(3, 0));
    let (_, tokens) = mixed_trace(replicated);
    assert_eq!(
        tokens, tokens_ref,
        "mid-sequence chip kill must be invisible in the token stream"
    );
}

#[test]
fn all_chips_failed_sheds_the_sequence_instead_of_hanging() {
    // A single chip killed mid-sequence leaves no replica and nothing to
    // recover onto once its snapshot path also runs out; the engine must
    // terminate the sequence with a structured shed, not loop forever.
    let device = SimConfig::ideal(64, 64).with_seed(3).with_threads(1);
    let config = ServeConfig::new(device)
        .with_chips(vec![600_000])
        .with_faults(
            FaultPlan::new()
                .kill_chip(2, 0)
                .kill_chip(3, 0)
                .kill_chip(4, 0),
        );
    let mut engine = ServeEngine::new(config);
    let llm = engine.admit(catalog::llm_tiny()).expect("llm_tiny admits");
    let seq = engine.begin_sequence(llm, 5, 8, 0, 1).expect("sequence");
    let trace = engine.drain_traced();
    assert!(engine.sequence_finished(seq), "shed sequences finish");
    if engine.sequence_shed(seq) {
        assert!(
            engine.sequence_tokens(seq).len() < 8,
            "a shed sequence stops early"
        );
        assert!(
            !trace.sheds.is_empty(),
            "the shed is structured, not silent"
        );
    } else {
        // Snapshot recovery may legitimately save the sequence; then
        // every token must be present.
        assert_eq!(engine.sequence_tokens(seq).len(), 8);
    }
}
