//! Load generation and latency accounting for the serving engine.
//!
//! Two disciplines, mirroring standard serving benchmarks:
//!
//! * **Open loop** ([`OpenLoop`]): requests arrive on a fixed schedule
//!   (every `interarrival` ticks) regardless of how fast the server
//!   drains them — the discipline that exposes queueing delay under
//!   offered load.
//! * **Closed loop** ([`ClosedLoop`]): a fixed population of
//!   `concurrency` clients, each submitting its next request only when
//!   the previous one completes — the discipline that measures saturated
//!   service throughput.
//!
//! Both synthesize every request's input from [`request_seed`], so a
//! trace is a pure
//! function of its parameters: replaying it through any engine
//! configuration yields byte-identical outputs.
//!
//! Wall-clock time exists only in the caller: the engine is deterministic
//! and tick-based, so a benchmark measures the wall time of each
//! dispatched batch and feeds it to [`replay_latencies`], which re-runs
//! the queueing timeline (arrivals in ticks × measured service times) to
//! recover per-request latencies and deadline misses.

use crate::request::{request_seed, Completion, InferRequest, ModelId};
use oxbar_nn::synthetic;
use oxbar_nn::TensorShape;
use serde::{Deserialize, Serialize};

/// One entry of a request mix: a model and its relative traffic weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixEntry {
    /// The admitted model.
    pub model: ModelId,
    /// Relative weight (requests are drawn proportionally).
    pub weight: u32,
}

/// Picks the mix entry for request `index` (deterministic weighted draw).
fn pick(mix: &[MixEntry], seed: u64, index: u64) -> ModelId {
    let total: u64 = mix.iter().map(|m| u64::from(m.weight)).sum();
    assert!(total > 0, "mix weights must not all be zero");
    let mut roll = request_seed(seed, index) % total;
    for entry in mix {
        let w = u64::from(entry.weight);
        if roll < w {
            return entry.model;
        }
        roll -= w;
    }
    unreachable!("roll < total")
}

/// An open-loop (fixed-arrival-schedule) workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoop {
    /// The traffic mix over admitted models.
    pub mix: Vec<MixEntry>,
    /// Total requests in the trace.
    pub requests: usize,
    /// Ticks between consecutive arrivals.
    pub interarrival: u64,
    /// Trace seed (drives model picks and input synthesis).
    pub seed: u64,
    /// Deadline slack in ticks added to each arrival (`None` = no
    /// deadlines).
    pub deadline_slack: Option<u64>,
}

impl OpenLoop {
    /// Generates the request trace. `input_shape(model)` supplies each
    /// model's input shape (use
    /// [`ServeEngine::input_shape`](crate::engine::ServeEngine::input_shape)).
    pub fn trace(&self, mut input_shape: impl FnMut(ModelId) -> TensorShape) -> Vec<InferRequest> {
        (0..self.requests as u64)
            .map(|i| {
                let model = pick(&self.mix, self.seed, i);
                let arrival = i * self.interarrival;
                InferRequest {
                    model,
                    input: synthetic::activations(
                        input_shape(model),
                        6,
                        request_seed(self.seed ^ 0x1a9d, i),
                    ),
                    arrival,
                    deadline: self.deadline_slack.map(|s| arrival + s),
                }
            })
            .collect()
    }
}

/// A closed-loop workload: `rounds` waves of `concurrency` simultaneous
/// requests, each wave submitted when the previous one has fully drained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoop {
    /// The traffic mix over admitted models.
    pub mix: Vec<MixEntry>,
    /// In-flight requests per wave.
    pub concurrency: usize,
    /// Number of waves.
    pub rounds: usize,
    /// Trace seed.
    pub seed: u64,
}

impl ClosedLoop {
    /// Generates the per-round request traces; round `r` arrives wholly
    /// at tick `r` (the round boundary is the completion barrier).
    pub fn rounds(
        &self,
        mut input_shape: impl FnMut(ModelId) -> TensorShape,
    ) -> Vec<Vec<InferRequest>> {
        (0..self.rounds)
            .map(|r| {
                (0..self.concurrency)
                    .map(|c| {
                        let i = (r * self.concurrency + c) as u64;
                        let model = pick(&self.mix, self.seed, i);
                        InferRequest {
                            model,
                            input: synthetic::activations(
                                input_shape(model),
                                6,
                                request_seed(self.seed ^ 0xc105, i),
                            ),
                            arrival: r as u64,
                            deadline: None,
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Latency percentiles over a set of per-request samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Worst latency (ms).
    pub max_ms: f64,
    /// Mean latency (ms).
    pub mean_ms: f64,
}

impl LatencySummary {
    /// Summarizes a non-empty sample set (nearest-rank percentiles).
    /// NaN samples sort last under IEEE 754 total ordering rather than
    /// aborting the whole summary.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "at least one latency sample required");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| {
            let idx = (p * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        Self {
            p50_ms: rank(0.50),
            p99_ms: rank(0.99),
            max_ms: *sorted.last().expect("non-empty"),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }
}

/// Replays the queueing timeline of one drain and returns `(latencies_ms,
/// deadline_misses)` in completion order.
///
/// The model mirrors what the scheduler actually does
/// ([`crate::engine::ServeEngine::drain_traced`]): batches execute in
/// dispatch *rounds*, and every batch within a round runs **concurrently**
/// across the worker pool. Round `k` starts when round `k − 1` has
/// finished and every member of round `k`'s batches has arrived (the
/// batcher held those batches open); each batch then completes at the
/// round's start plus *its own* wall time, and the round finishes when its
/// slowest batch does. A request's latency is its batch's completion time
/// minus its own arrival time; a deadline is missed when completion lands
/// after `deadline × tick_ms`.
///
/// With one batch per round (`rounds == [[0], [1], ..]`, the serial
/// `workers = 1` schedule) this degenerates to the classic single-pipeline
/// replay. The previous implementation *always* assumed that serial
/// pipeline, which overstated p50/p99 whenever the engine dispatched
/// rounds concurrently (`workers > 1`, multi-chip routing) — pass the
/// `rounds` the drain actually ran and the replay is faithful in every
/// configuration.
///
/// # Panics
///
/// Panics if a completion references a batch without a measured wall
/// time, or if `rounds` does not cover every measured batch exactly once.
#[must_use]
pub fn replay_latencies(
    completions: &[Completion],
    batch_wall_ms: &[f64],
    rounds: &[Vec<usize>],
    tick_ms: f64,
) -> (Vec<f64>, usize) {
    let batches = batch_wall_ms.len();
    let mut routed = vec![false; batches];
    for &seq in rounds.iter().flatten() {
        assert!(seq < batches, "round references unmeasured batch {seq}");
        assert!(!routed[seq], "batch {seq} routed into two rounds");
        routed[seq] = true;
    }
    assert!(
        routed.iter().all(|&r| r),
        "every measured batch must be routed into exactly one round"
    );
    // Latest member arrival per batch: the batch cannot dispatch earlier.
    let mut ready_ms = vec![0.0f64; batches];
    for c in completions {
        assert!(c.batch_seq < batches, "unmeasured batch {}", c.batch_seq);
        ready_ms[c.batch_seq] = ready_ms[c.batch_seq].max(c.arrival as f64 * tick_ms);
    }
    let mut finish_ms = vec![0.0f64; batches];
    let mut clock = 0.0f64;
    for round in rounds {
        let start = round.iter().map(|&b| ready_ms[b]).fold(clock, f64::max);
        for &b in round {
            finish_ms[b] = start + batch_wall_ms[b];
            clock = clock.max(finish_ms[b]);
        }
    }
    let mut misses = 0;
    let latencies = completions
        .iter()
        .map(|c| {
            let done = finish_ms[c.batch_seq];
            if let Some(d) = c.deadline {
                if done > d as f64 * tick_ms {
                    misses += 1;
                }
            }
            done - c.arrival as f64 * tick_ms
        })
        .collect();
    (latencies, misses)
}

/// The serial dispatch schedule — one batch per round — for replaying a
/// `workers = 1` drain whose rounds were not recorded.
#[must_use]
pub fn serial_rounds(batches: usize) -> Vec<Vec<usize>> {
    (0..batches).map(|b| vec![b]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use oxbar_nn::reference::Tensor3;

    #[test]
    fn open_loop_traces_are_reproducible_and_scheduled() {
        let load = OpenLoop {
            mix: vec![
                MixEntry {
                    model: ModelId(0),
                    weight: 3,
                },
                MixEntry {
                    model: ModelId(1),
                    weight: 1,
                },
            ],
            requests: 40,
            interarrival: 2,
            seed: 9,
            deadline_slack: Some(50),
        };
        let shape = |_m: ModelId| TensorShape::new(2, 2, 1);
        let a = load.trace(shape);
        let b = load.trace(shape);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        for (i, req) in a.iter().enumerate() {
            assert_eq!(req.arrival, 2 * i as u64);
            assert_eq!(req.deadline, Some(req.arrival + 50));
        }
        let zeros = a.iter().filter(|r| r.model == ModelId(0)).count();
        assert!(zeros > 20 && zeros < 40, "mix is weighted 3:1, got {zeros}");
    }

    #[test]
    fn closed_loop_rounds_have_fixed_population() {
        let load = ClosedLoop {
            mix: vec![MixEntry {
                model: ModelId(0),
                weight: 1,
            }],
            concurrency: 4,
            rounds: 3,
            seed: 1,
        };
        let rounds = load.rounds(|_| TensorShape::new(2, 2, 1));
        assert_eq!(rounds.len(), 3);
        for (r, wave) in rounds.iter().enumerate() {
            assert_eq!(wave.len(), 4);
            assert!(wave.iter().all(|q| q.arrival == r as u64));
        }
    }

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencySummary::of(&samples);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-12);
    }

    fn completion(id: u64, arrival: u64, deadline: Option<u64>, seq: usize) -> Completion {
        Completion {
            id: RequestId(id),
            model: ModelId(0),
            arrival,
            deadline,
            output: Tensor3::new(TensorShape::flat(1), vec![0]),
            batch_seq: seq,
            batch_size: 1,
            sequence: None,
        }
    }

    #[test]
    fn replay_accounts_queueing_and_deadlines() {
        // Two batches of 10 ms each; requests arrive at ticks 0 and 1
        // (1 tick = 1 ms). The second batch queues behind the first.
        let completions = vec![completion(0, 0, Some(15), 0), completion(1, 1, Some(15), 1)];
        let (lat, misses) = replay_latencies(&completions, &[10.0, 10.0], &serial_rounds(2), 1.0);
        assert_eq!(lat, vec![10.0, 19.0]);
        assert_eq!(misses, 1, "request 1 finishes at 20 ms > deadline 15 ms");
    }

    #[test]
    fn replay_waits_for_late_batch_members() {
        // One batch whose last member arrives at tick 5 (5 ms): dispatch
        // cannot start before then.
        let completions = vec![completion(0, 0, None, 0), completion(1, 5, None, 0)];
        let (lat, misses) = replay_latencies(&completions, &[2.0], &serial_rounds(1), 1.0);
        assert_eq!(lat, vec![7.0, 2.0]);
        assert_eq!(misses, 0);
    }

    #[test]
    fn replay_runs_round_members_concurrently() {
        // Rounds [[0, 1], [2]] with walls [10, 4, 5]: batches 0 and 1
        // share round 0 and both start at t = 0, so batch 1 finishes at
        // 4 ms (not queued behind batch 0 as the old serial replay
        // claimed). Round 1 starts when the *slowest* member of round 0
        // finishes (10 ms), so batch 2 finishes at 15 ms.
        let completions = vec![
            completion(0, 0, None, 0),
            completion(1, 0, None, 1),
            completion(2, 0, None, 2),
        ];
        let rounds = vec![vec![0, 1], vec![2]];
        let (lat, misses) = replay_latencies(&completions, &[10.0, 4.0, 5.0], &rounds, 1.0);
        assert_eq!(lat, vec![10.0, 4.0, 15.0]);
        assert_eq!(misses, 0);
    }

    #[test]
    fn replay_round_start_waits_for_all_member_arrivals() {
        // Round 0 holds batches 0 and 1; batch 1's member arrives at tick
        // 6, so the whole round starts at 6 ms even though batch 0 was
        // ready at 0. Batch 0 finishes at 6 + 2 = 8 ms.
        let completions = vec![completion(0, 0, None, 0), completion(1, 6, None, 1)];
        let rounds = vec![vec![0, 1]];
        let (lat, misses) = replay_latencies(&completions, &[2.0, 3.0], &rounds, 1.0);
        assert_eq!(lat, vec![8.0, 3.0]);
        assert_eq!(misses, 0);
    }

    #[test]
    fn serial_rounds_degenerate_to_single_pipeline() {
        // With one batch per round the round-aware replay must reproduce
        // the classic serial model: clock = max(clock, ready) + wall.
        let completions = vec![
            completion(0, 0, None, 0),
            completion(1, 3, None, 1),
            completion(2, 30, None, 2),
        ];
        let walls = [10.0, 5.0, 2.0];
        let (lat, _) = replay_latencies(&completions, &walls, &serial_rounds(3), 1.0);
        // Serial: f0 = 10, f1 = max(10, 3) + 5 = 15, f2 = max(15, 30) + 2 = 32.
        assert_eq!(lat, vec![10.0, 12.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "routed into exactly one round")]
    fn replay_rejects_unrouted_batches() {
        let completions = vec![completion(0, 0, None, 0)];
        let _ = replay_latencies(&completions, &[1.0, 1.0], &[vec![0]], 1.0);
    }
}
