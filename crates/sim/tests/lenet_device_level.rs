//! The acceptance scenario: LeNet-5 end to end through
//! PCM → photonics → ADC, bit-exact against the integer reference in
//! ideal mode, with a meaningful per-layer fidelity report in noisy mode —
//! and fast enough to live in the regular test suite.

use oxbar_nn::reference::Executor;
use oxbar_nn::synthetic;
use oxbar_nn::zoo::lenet5;
use oxbar_sim::{device_forward, run_inference, SimConfig};
use std::time::Instant;

#[test]
fn lenet5_ideal_mode_is_bit_exact() {
    let net = lenet5();
    let images: Vec<_> = (0..3)
        .map(|s| synthetic::activations(net.input(), 6, 1000 + s))
        .collect();
    let filters = synthetic::filter_banks(&net, 6, 77);
    let report = run_inference(&net, &SimConfig::ideal(128, 128), &images, &filters).unwrap();
    assert!(report.exact, "{report:?}");
    assert_eq!(report.output_error_rate, 0.0);
    assert_eq!(report.output_max_abs_delta, 0);
    assert_eq!(report.top1_agreement, 1.0);
    assert_eq!(report.images, 3);
    // Every crossbar-mapped layer programmed PCM cells; the network has
    // 5 conv-like layers and 2 pools.
    assert_eq!(report.layers.len(), 7);
    assert!(report.cells_programmed > 0);

    // Cross-check a single image against the reference executor directly.
    let (ref_out, _) = Executor::new(6)
        .forward(&net, &images[0], &filters)
        .unwrap();
    let fwd = device_forward(&net, &SimConfig::ideal(128, 128), &images[0], &filters).unwrap();
    assert_eq!(fwd.output, ref_out);
}

#[test]
fn lenet5_noisy_mode_reports_fidelity() {
    let net = lenet5();
    let images = vec![synthetic::activations(net.input(), 6, 2000)];
    let filters = synthetic::filter_banks(&net, 6, 88);
    let report = run_inference(&net, &SimConfig::noisy(128, 128), &images, &filters).unwrap();
    assert!(!report.exact);
    assert!(report.output_error_rate > 0.0 || report.output_max_abs_delta == 0);
    // Per-layer records exist for every layer, with per-layer error rates.
    assert_eq!(report.layers.len(), net.layers().len());
    for layer in &report.layers {
        assert!(
            layer.error_rate >= 0.0 && layer.error_rate <= 1.0,
            "{layer:?}"
        );
        assert!(layer.elements > 0);
    }
    // The report is serializable (it feeds the bench figure + golden files).
    let json = serde_json::to_string_pretty(&report).unwrap();
    assert!(json.contains("top1_agreement"));
}

#[test]
fn device_level_tests_stay_fast() {
    // Wall-clock sanity bound: a full ideal LeNet-5 pass must stay cheap
    // enough for CI (release job budgets 60 s for the whole crate).
    let net = lenet5();
    let input = synthetic::activations(net.input(), 6, 5);
    let filters = synthetic::filter_banks(&net, 6, 6);
    let start = Instant::now();
    let fwd = device_forward(&net, &SimConfig::ideal(128, 128), &input, &filters).unwrap();
    assert_eq!(fwd.output.shape().elements(), 10);
    let elapsed = start.elapsed();
    // Generous bound (debug builds are ~20× slower than release).
    assert!(
        elapsed.as_secs() < 120,
        "single LeNet pass took {elapsed:?}"
    );
}
