//! Property-based tests over the quantity algebra.

use crate::{Area, DataVolume, Decibel, Energy, EnergyPerBit, Frequency, Power, Ratio, Time};
use proptest::prelude::*;

fn small_positive() -> impl Strategy<Value = f64> {
    1e-6..1e6f64
}

proptest! {
    #[test]
    fn energy_power_time_triangle(watts in small_positive(), secs in small_positive()) {
        let p = Power::from_watts(watts);
        let t = Time::from_seconds(secs);
        let e: Energy = p * t;
        // e / t recovers p, e / p recovers t.
        prop_assert!(((e / t).as_watts() - watts).abs() / watts < 1e-12);
        prop_assert!(((e / p).as_seconds() - secs).abs() / secs < 1e-12);
    }

    #[test]
    fn frequency_period_inverse(ghz in 1e-3..1e3f64) {
        let f = Frequency::from_gigahertz(ghz);
        let round = f.period().rate();
        prop_assert!((round.as_gigahertz() - ghz).abs() / ghz < 1e-12);
    }

    #[test]
    fn db_power_round_trip(ratio in 1e-9..1.0f64) {
        let db = Decibel::from_power_ratio(ratio);
        prop_assert!(db.value() >= 0.0);
        prop_assert!((db.attenuation_power() - ratio).abs() / ratio < 1e-9);
    }

    #[test]
    fn db_field_is_sqrt_power(db in 0.0..100.0f64) {
        let l = Decibel::new(db);
        prop_assert!((l.attenuation_field().powi(2) - l.attenuation_power()).abs() < 1e-12);
    }

    #[test]
    fn db_addition_is_linear_multiplication(a in 0.0..50.0f64, b in 0.0..50.0f64) {
        let sum = Decibel::new(a) + Decibel::new(b);
        let product = Decibel::new(a).attenuation_power() * Decibel::new(b).attenuation_power();
        prop_assert!((sum.attenuation_power() - product).abs() / product < 1e-9);
    }

    #[test]
    fn dbm_round_trip(dbm in -90.0..40.0f64) {
        let p = Power::from_dbm(dbm);
        prop_assert!((p.as_dbm() - dbm).abs() < 1e-9);
    }

    #[test]
    fn data_energy_linear(bits in 1u64..1u64 << 40, pj in 0.1..100.0f64) {
        let epb = EnergyPerBit::from_picojoules_per_bit(pj);
        let vol = DataVolume::from_bit_count(bits);
        let e = epb * vol;
        let expected = pj * 1e-12 * bits as f64;
        prop_assert!((e.as_joules() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn volume_fits_is_monotone(a in 0.0..1e12f64, b in 0.0..1e12f64) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(DataVolume::from_bits(small).fits_in(DataVolume::from_bits(large)));
    }

    #[test]
    fn ratio_complement_involution(f in 0.0..=1.0f64) {
        let r = Ratio::from_fraction(f);
        prop_assert!((r.complement().complement().as_fraction() - f).abs() < 1e-15);
    }

    #[test]
    fn area_sum_matches_scalar(mm2 in 1e-6..1e3f64, n in 1usize..64) {
        let total: Area = (0..n).map(|_| Area::from_square_millimeters(mm2)).sum();
        let expected = mm2 * n as f64;
        prop_assert!((total.as_square_millimeters() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn quantity_ordering_consistent(a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let (ea, eb) = (Energy::from_joules(a), Energy::from_joules(b));
        prop_assert_eq!(ea < eb, a < b);
        prop_assert_eq!(ea.max(eb).as_joules(), a.max(b));
    }
}
