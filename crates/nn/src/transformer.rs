//! Quantized autoregressive transformer blocks for the crossbar.
//!
//! The attention pipeline is decomposed exactly the way the PCM crossbar
//! wants it:
//!
//! - **static MVMs** — the six projection matrices of every block
//!   (`wq/wk/wv/wo/up/down`) plus the LM head are ordinary dense layers,
//!   weight-stationary on programmed tiles. They are expressed as a
//!   sequential [`Network`] of [`Dense`] layers so the serving stack's
//!   admission, footprint accounting, prewarm, eviction, and migration
//!   paths all apply unchanged.
//! - **dynamic MVMs** — `QKᵀ` and `AV` are matmuls against *data*
//!   (the cached K/V rows), folded through the same tile geometry but
//!   never cached: their "weights" change every token.
//! - **digital glue** — layernorm, softmax, requantization, and the
//!   residual adds stay in the integer digital domain, exactly like the
//!   accumulate/pool/requant stages of the CNN path.
//!
//! Everything is integer-exact: [`generate_step`] driven by the
//! [`OracleEngine`] is the bit-for-bit ground truth the device-level
//! pipeline is validated against (`oxbar-sim` implements the same
//! [`MatmulEngine`] trait on the photonic executor).

use crate::layer::{Dense, Layer};
use crate::reference::{requantize, FilterBank, Tensor3};
use crate::shape::TensorShape;
use crate::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Static dense layers per transformer block (`wq wk wv wo up down`).
pub const LAYERS_PER_BLOCK: usize = 6;

/// Shape of a quantized decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LmConfig {
    /// Model (residual stream) width.
    pub d_model: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Attention heads (`d_model` must divide evenly).
    pub heads: usize,
    /// Vocabulary size (logit count of the LM head).
    pub vocab: usize,
    /// Decoder block count.
    pub blocks: usize,
    /// Activation precision in bits (6 for the INT6 crossbar pipeline).
    pub bits: u8,
    /// Length of the positional-embedding table (positions wrap modulo
    /// this, so sequences longer than the table stay well-defined).
    pub positions: usize,
}

impl LmConfig {
    /// A tiny single-block configuration, sized so every projection fits
    /// a handful of crossbar tiles — the serving smoke model.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            d_model: 32,
            d_ff: 64,
            heads: 4,
            vocab: 32,
            blocks: 1,
            bits: 6,
            positions: 64,
        }
    }

    /// Per-head width.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.d_model / self.heads
    }

    /// Unsigned activation ceiling `2^bits − 1`.
    #[must_use]
    pub fn v_max(&self) -> i64 {
        (1i64 << self.bits) - 1
    }

    /// Signed weight-code ceiling `2^(bits−1) − 1`.
    #[must_use]
    pub fn q_max(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions, heads not dividing `d_model`, or a
    /// vocabulary smaller than 2.
    pub fn validate(&self) {
        assert!(
            self.d_model > 0
                && self.d_ff > 0
                && self.heads > 0
                && self.blocks > 0
                && self.positions > 0,
            "transformer dimensions must be non-zero"
        );
        assert!(
            self.d_model.is_multiple_of(self.heads),
            "heads ({}) must divide d_model ({})",
            self.heads,
            self.d_model
        );
        assert!(self.vocab >= 2, "vocabulary needs at least two tokens");
        assert!((2..=8).contains(&self.bits), "bits out of range");
    }
}

/// The six static projection banks of one decoder block, in the same
/// order they appear in the dense-stack [`Network`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockWeights {
    /// Query projection, `d_model → d_model`.
    pub wq: FilterBank,
    /// Key projection, `d_model → d_model`.
    pub wk: FilterBank,
    /// Value projection, `d_model → d_model`.
    pub wv: FilterBank,
    /// Attention output projection, `d_model → d_model`.
    pub wo: FilterBank,
    /// Feed-forward up projection, `d_model → d_ff`.
    pub up: FilterBank,
    /// Feed-forward down projection, `d_ff → d_model`.
    pub down: FilterBank,
}

/// A complete quantized decoder-only LM: config, per-block projections,
/// LM head, and the (digital) token/position embedding tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LmWeights {
    /// Model shape.
    pub config: LmConfig,
    /// Per-block static projections.
    pub blocks: Vec<BlockWeights>,
    /// LM head, `d_model → vocab`.
    pub head: FilterBank,
    /// Token embedding rows (`vocab` rows of `d_model` unsigned codes).
    pub embedding: Vec<Vec<i64>>,
    /// Positional embedding rows (`config.positions` rows).
    pub positional: Vec<Vec<i64>>,
}

fn synthetic_bank(out_rows: usize, in_cols: usize, q: i64, rng: &mut StdRng) -> FilterBank {
    let weights = (0..out_rows)
        .map(|_| {
            (0..in_cols)
                .map(|_| rng.random_range(-q..=q) as i8)
                .collect()
        })
        .collect();
    FilterBank { weights }
}

impl LmWeights {
    /// Generates reproducible synthetic weights for `config` (the LLM
    /// analogue of [`crate::synthetic::filter_banks`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn synthetic(config: LmConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = config.q_max();
        let d = config.d_model;
        let blocks = (0..config.blocks)
            .map(|_| BlockWeights {
                wq: synthetic_bank(d, d, q, &mut rng),
                wk: synthetic_bank(d, d, q, &mut rng),
                wv: synthetic_bank(d, d, q, &mut rng),
                wo: synthetic_bank(d, d, q, &mut rng),
                up: synthetic_bank(config.d_ff, d, q, &mut rng),
                down: synthetic_bank(d, config.d_ff, q, &mut rng),
            })
            .collect();
        let head = synthetic_bank(config.vocab, d, q, &mut rng);
        let v_max = config.v_max();
        let embedding = (0..config.vocab)
            .map(|_| (0..d).map(|_| rng.random_range(0..=v_max)).collect())
            .collect();
        let positional = (0..config.positions)
            .map(|_| (0..d).map(|_| rng.random_range(0..=v_max)).collect())
            .collect();
        Self {
            config,
            blocks,
            head,
            embedding,
            positional,
        }
    }

    /// The dense-stack [`Network`] view of the static projections: per
    /// block `wq wk wv wo up down`, then the LM head. This is what the
    /// serving registry admits — footprint, prewarm, eviction, and
    /// migration all see an ordinary sequential network.
    #[must_use]
    pub fn network(&self, name: impl Into<String>) -> Network {
        let d = self.config.d_model;
        let mut net = Network::new(name, TensorShape::flat(d));
        for (b, _) in self.blocks.iter().enumerate() {
            net.push(Layer::Dense(Dense::new(format!("b{b}_wq"), d, d)));
            net.push(Layer::Dense(Dense::new(format!("b{b}_wk"), d, d)));
            net.push(Layer::Dense(Dense::new(format!("b{b}_wv"), d, d)));
            net.push(Layer::Dense(Dense::new(format!("b{b}_wo"), d, d)));
            net.push(Layer::Dense(Dense::new(
                format!("b{b}_up"),
                d,
                self.config.d_ff,
            )));
            net.push(Layer::Dense(Dense::new(
                format!("b{b}_down"),
                self.config.d_ff,
                d,
            )));
        }
        net.push(Layer::Dense(Dense::new("lm_head", d, self.config.vocab)));
        net
    }

    /// The filter banks of [`Self::network`], in conv-like layer order.
    #[must_use]
    pub fn filters(&self) -> Vec<FilterBank> {
        let mut banks = Vec::with_capacity(self.blocks.len() * LAYERS_PER_BLOCK + 1);
        for block in &self.blocks {
            banks.push(block.wq.clone());
            banks.push(block.wk.clone());
            banks.push(block.wv.clone());
            banks.push(block.wo.clone());
            banks.push(block.up.clone());
            banks.push(block.down.clone());
        }
        banks.push(self.head.clone());
        banks
    }

    /// The filter bank behind dense-stack layer `layer_index` (what a
    /// [`MatmulEngine::static_mv`] implementation multiplies by).
    ///
    /// # Panics
    ///
    /// Panics if the index is past the LM head.
    #[must_use]
    pub fn bank(&self, layer_index: usize) -> &FilterBank {
        let head_index = self.blocks.len() * LAYERS_PER_BLOCK;
        if layer_index == head_index {
            return &self.head;
        }
        assert!(layer_index < head_index, "layer {layer_index} out of range");
        let block = &self.blocks[layer_index / LAYERS_PER_BLOCK];
        match layer_index % LAYERS_PER_BLOCK {
            0 => &block.wq,
            1 => &block.wk,
            2 => &block.wv,
            3 => &block.wo,
            4 => &block.up,
            _ => &block.down,
        }
    }

    /// The (digital) embedding of `token` at sequence position `pos`:
    /// token row plus positional row, clamped to the unsigned activation
    /// range so it can drive the first static MVM directly.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    #[must_use]
    pub fn embed(&self, token: u32, pos: usize) -> Vec<i64> {
        let row = &self.embedding[token as usize];
        let positional = &self.positional[pos % self.config.positions];
        let v_max = self.config.v_max();
        row.iter()
            .zip(positional)
            .map(|(&e, &p)| ((e + p) / 2).clamp(0, v_max))
            .collect()
    }
}

/// Integer square root (largest `r` with `r² ≤ v`; 0 for negatives).
#[must_use]
fn isqrt(v: i64) -> i64 {
    if v <= 0 {
        return 0;
    }
    let mut r = (v as f64).sqrt() as i64;
    while r * r > v {
        r -= 1;
    }
    while (r + 1) * (r + 1) <= v {
        r += 1;
    }
    r
}

/// Integer layer normalization into the unsigned activation range
/// `[0, v_max]`: center on the truncating mean, scale by the integer
/// standard deviation, and re-bias around `(v_max+1)/2`. Pure integer
/// arithmetic — the digital-domain normalizer of the transformer block.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn layernorm_int(values: &[i64], v_max: i64) -> Vec<i64> {
    assert!(!values.is_empty(), "layernorm of an empty vector");
    let n = values.len() as i64;
    let mean = values.iter().sum::<i64>() / n;
    let centered: Vec<i64> = values.iter().map(|v| v - mean).collect();
    let var = centered.iter().map(|c| c * c).sum::<i64>() / n;
    let std = isqrt(var).max(1);
    let half = (v_max + 1) / 2;
    centered
        .iter()
        .map(|c| (c * half / std + half).clamp(0, v_max))
        .collect()
}

/// Integer base-2 softmax into `[0, v_max]`: the maximum score maps to
/// `v_max` and every other score is attenuated by one right shift per
/// `scale` units of distance from the maximum (`scale` adapts to the
/// score spread). Monotone, exact, and cheap — the digital boundary
/// between the two folded attention MVMs.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn softmax_int(scores: &[i64], v_max: i64) -> Vec<i64> {
    let max = *scores.iter().max().expect("softmax of an empty vector");
    let min = *scores.iter().min().expect("softmax of an empty vector");
    let scale = ((max - min) / 6).max(1);
    scores
        .iter()
        .map(|&s| {
            let shift = ((max - s) / scale).min(62) as u32;
            v_max >> shift
        })
        .collect()
}

/// Index of the maximum value (lowest index on ties) — greedy decoding.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn argmax(values: &[i64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Per-block cached K/V rows: one signed quantized row per generated
/// position. Rows are stored in *weight code* range (±`q_max`) so they
/// can be folded onto crossbar tiles as dynamic weights directly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCache {
    /// Cached key rows, one per position, each `d_model` long.
    pub k: Vec<Vec<i8>>,
    /// Cached value rows, one per position, each `d_model` long.
    pub v: Vec<Vec<i8>>,
}

/// The KV cache of one autoregressive sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvCache {
    /// Per-block caches, in block order.
    pub blocks: Vec<BlockCache>,
}

impl KvCache {
    /// An empty cache for `config`.
    #[must_use]
    pub fn new(config: &LmConfig) -> Self {
        Self {
            blocks: vec![BlockCache::default(); config.blocks],
        }
    }

    /// Positions cached so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.first().map_or(0, |b| b.k.len())
    }

    /// Whether no position has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the K/V rows a completed step produced. Kept separate
    /// from [`generate_step`] so a failed/retried device step never
    /// half-mutates the cache.
    ///
    /// # Panics
    ///
    /// Panics if the outcome's block count mismatches the cache.
    pub fn apply(&mut self, outcome: &StepOutcome) {
        assert_eq!(
            outcome.k_rows.len(),
            self.blocks.len(),
            "outcome block count mismatch"
        );
        for (block, (k, v)) in self
            .blocks
            .iter_mut()
            .zip(outcome.k_rows.iter().zip(&outcome.v_rows))
        {
            block.k.push(k.clone());
            block.v.push(v.clone());
        }
    }
}

/// What one [`generate_step`] produced. The cache mutation is split out
/// (see [`KvCache::apply`]) so device retries and replica failover can
/// re-run a step idempotently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Greedy-decoded next token.
    pub next_token: u32,
    /// Raw integer logits over the vocabulary.
    pub logits: Vec<i64>,
    /// New K row per block (to append to the cache).
    pub k_rows: Vec<Vec<i8>>,
    /// New V row per block (to append to the cache).
    pub v_rows: Vec<Vec<i8>>,
}

/// The matmul backend a transformer step runs on.
///
/// Two flavors mirror the two kinds of crossbar traffic:
/// [`MatmulEngine::static_mv`] multiplies by a *programmed* projection
/// (dense-stack layer `layer_index`, weight-stationary and cacheable),
/// while [`MatmulEngine::dynamic_mv`] multiplies by freshly supplied
/// signed rows (the K/V data of `QKᵀ` and `AV`, never cached).
pub trait MatmulEngine {
    /// Backend failure (infallible for the oracle, device faults for the
    /// photonic executor).
    type Error;

    /// Multiplies the static projection at dense-stack `layer_index` by
    /// `drive` (length = the layer's input features, `|v| ≤ v_max`).
    ///
    /// # Errors
    ///
    /// Propagates backend execution failures.
    fn static_mv(&mut self, layer_index: usize, drive: &[i64]) -> Result<Vec<i64>, Self::Error>;

    /// Multiplies dynamic signed rows by `drive`. `stage` is a stable
    /// small integer identifying the matmul site
    /// (`block·heads·2 + head·2 + {0: QKᵀ, 1: AV}`) so device backends
    /// can seed their analog noise deterministically.
    ///
    /// # Errors
    ///
    /// Propagates backend execution failures.
    fn dynamic_mv(
        &mut self,
        stage: usize,
        rows: &[Vec<i8>],
        drive: &[i64],
    ) -> Result<Vec<i64>, Self::Error>;
}

fn requantize_vec(values: Vec<i64>, bits: u8) -> Vec<i64> {
    let len = values.len();
    let tensor = Tensor3::new(TensorShape::flat(len), values);
    let (out, _) = requantize(&tensor, bits);
    out.data().to_vec()
}

fn to_codes(values: &[i64]) -> Vec<i8> {
    values
        .iter()
        .map(|&v| i8::try_from(v).expect("requantized code fits i8"))
        .collect()
}

/// Runs one autoregressive decode step: embed `token` at `pos`, run
/// every block (attention over `cache` plus the current position, then
/// the feed-forward), and greedy-decode the next token from the LM-head
/// logits. The cache is *read only* — apply the returned
/// [`StepOutcome`] with [`KvCache::apply`] once the step is accepted.
///
/// # Errors
///
/// Propagates engine execution failures (device faults).
///
/// # Panics
///
/// Panics if `token` is outside the vocabulary or the cache length
/// disagrees with `pos`.
pub fn generate_step<E: MatmulEngine>(
    weights: &LmWeights,
    engine: &mut E,
    cache: &KvCache,
    token: u32,
    pos: usize,
) -> Result<StepOutcome, E::Error> {
    let config = &weights.config;
    assert!(
        (token as usize) < config.vocab,
        "token {token} outside vocabulary {}",
        config.vocab
    );
    assert_eq!(cache.len(), pos, "cache length disagrees with position");
    let bits = config.bits;
    let v_max = config.v_max();
    let hd = config.head_dim();

    let mut x = weights.embed(token, pos);
    let mut k_rows = Vec::with_capacity(config.blocks);
    let mut v_rows = Vec::with_capacity(config.blocks);
    for b in 0..config.blocks {
        let base = b * LAYERS_PER_BLOCK;
        let h = layernorm_int(&x, v_max);
        // Three static projections share the normalized drive.
        let q = requantize_vec(engine.static_mv(base, &h)?, bits);
        let k = to_codes(&requantize_vec(engine.static_mv(base + 1, &h)?, bits - 1));
        let v = to_codes(&requantize_vec(engine.static_mv(base + 2, &h)?, bits - 1));

        // Attention: QKᵀ then AV, per head, over cache + current row.
        let block_cache = &cache.blocks[b];
        let positions = pos + 1;
        let mut ctx = vec![0i64; config.d_model];
        for head in 0..config.heads {
            let span = head * hd..(head + 1) * hd;
            let q_head = &q[span.clone()];
            let k_head: Vec<Vec<i8>> = (0..positions)
                .map(|j| {
                    let row = if j < pos { &block_cache.k[j] } else { &k };
                    row[span.clone()].to_vec()
                })
                .collect();
            let stage = (b * config.heads + head) * 2;
            let scores = engine.dynamic_mv(stage, &k_head, q_head)?;
            let attn = softmax_int(&scores, v_max);
            // AV as a second folded MVM: row d holds V[j][d] over j.
            let v_rows_t: Vec<Vec<i8>> = (0..hd)
                .map(|d| {
                    (0..positions)
                        .map(|j| {
                            let row = if j < pos { &block_cache.v[j] } else { &v };
                            row[head * hd + d]
                        })
                        .collect()
                })
                .collect();
            let head_ctx = engine.dynamic_mv(stage + 1, &v_rows_t, &attn)?;
            ctx[span].copy_from_slice(&head_ctx);
        }
        let ctx_q = requantize_vec(ctx, bits);
        let o = requantize_vec(engine.static_mv(base + 3, &ctx_q)?, bits);
        x = requantize_vec(x.iter().zip(&o).map(|(&a, &b)| a + b).collect(), bits);

        // Feed-forward with a digital ReLU between the two projections.
        let h2 = layernorm_int(&x, v_max);
        let up = engine.static_mv(base + 4, &h2)?;
        let u = requantize_vec(up.into_iter().map(|v| v.max(0)).collect(), bits);
        let down = requantize_vec(engine.static_mv(base + 5, &u)?, bits);
        x = requantize_vec(x.iter().zip(&down).map(|(&a, &b)| a + b).collect(), bits);

        k_rows.push(k);
        v_rows.push(v);
    }
    let logits = engine.static_mv(config.blocks * LAYERS_PER_BLOCK, &layernorm_int(&x, v_max))?;
    let next_token = argmax(&logits) as u32;
    Ok(StepOutcome {
        next_token,
        logits,
        k_rows,
        v_rows,
    })
}

/// Runs a whole greedy decode of `steps` tokens starting from `prompt`,
/// applying the cache after every step. Returns every step outcome.
///
/// # Errors
///
/// Propagates engine execution failures.
pub fn generate<E: MatmulEngine>(
    weights: &LmWeights,
    engine: &mut E,
    prompt: u32,
    steps: usize,
) -> Result<Vec<StepOutcome>, E::Error> {
    let mut cache = KvCache::new(&weights.config);
    let mut token = prompt;
    let mut outcomes = Vec::with_capacity(steps);
    for pos in 0..steps {
        let outcome = generate_step(weights, engine, &cache, token, pos)?;
        cache.apply(&outcome);
        token = outcome.next_token;
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

/// The exact-integer reference backend: plain dot products, no device
/// model. [`generate_step`] on this engine *is* the functional ground
/// truth for the photonic transformer pipeline.
#[derive(Debug, Clone)]
pub struct OracleEngine<'a> {
    weights: &'a LmWeights,
}

impl<'a> OracleEngine<'a> {
    /// Creates an oracle over `weights`.
    #[must_use]
    pub fn new(weights: &'a LmWeights) -> Self {
        Self { weights }
    }
}

fn dot_rows<W: Copy + Into<i64>>(rows: &[Vec<W>], drive: &[i64]) -> Vec<i64> {
    rows.iter()
        .map(|row| {
            assert_eq!(row.len(), drive.len(), "drive length mismatch");
            row.iter()
                .zip(drive)
                .map(|(&w, &x)| w.into() * x)
                .sum::<i64>()
        })
        .collect()
}

impl MatmulEngine for OracleEngine<'_> {
    type Error = core::convert::Infallible;

    fn static_mv(&mut self, layer_index: usize, drive: &[i64]) -> Result<Vec<i64>, Self::Error> {
        Ok(dot_rows(&self.weights.bank(layer_index).weights, drive))
    }

    fn dynamic_mv(
        &mut self,
        _stage: usize,
        rows: &[Vec<i8>],
        drive: &[i64],
    ) -> Result<Vec<i64>, Self::Error> {
        Ok(dot_rows(rows, drive))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_weights(seed: u64) -> LmWeights {
        LmWeights::synthetic(LmConfig::tiny(), seed)
    }

    #[test]
    fn config_validation_catches_bad_heads() {
        let mut config = LmConfig::tiny();
        config.heads = 5;
        let caught = std::panic::catch_unwind(|| config.validate());
        assert!(caught.is_err(), "5 heads cannot divide d_model=32");
    }

    #[test]
    fn synthetic_weights_reproducible_and_in_range() {
        let a = tiny_weights(7);
        assert_eq!(a, tiny_weights(7));
        assert_ne!(a, tiny_weights(8));
        let q = a.config.q_max() as i8;
        for bank in a.filters() {
            for row in &bank.weights {
                assert!(row.iter().all(|&w| (-q..=q).contains(&w)));
            }
        }
        let v_max = a.config.v_max();
        for row in &a.embedding {
            assert!(row.iter().all(|&e| (0..=v_max).contains(&e)));
        }
    }

    #[test]
    fn dense_stack_network_audits_clean() {
        let weights = tiny_weights(3);
        let net = weights.network("llm");
        assert_eq!(net.audit_shapes(), None);
        assert_eq!(
            net.conv_like_layers().count(),
            weights.config.blocks * LAYERS_PER_BLOCK + 1
        );
        assert_eq!(net.conv_like_layers().count(), weights.filters().len());
        // Bank lookup agrees with the filter list layer for layer.
        for (idx, bank) in weights.filters().iter().enumerate() {
            assert_eq!(weights.bank(idx), bank, "layer {idx}");
        }
    }

    #[test]
    fn layernorm_lands_in_unsigned_range() {
        let out = layernorm_int(&[-120, -3, 0, 44, 63, 1000], 63);
        assert!(out.iter().all(|&v| (0..=63).contains(&v)));
        // Order is preserved (monotone transform).
        for w in out.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let flat = layernorm_int(&[5, 5, 5], 63);
        assert_eq!(flat, vec![32, 32, 32], "constant input centers at half");
    }

    #[test]
    fn softmax_peaks_at_the_maximum() {
        let probs = softmax_int(&[10, 500, -80, 499], 63);
        assert_eq!(probs[1], 63, "max score gets full weight");
        assert!(probs[3] <= 63 && probs[3] >= probs[0]);
        assert_eq!(probs[2], 0, "distant score attenuates to zero");
        assert!(probs.iter().all(|&p| (0..=63).contains(&p)));
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[3, 9, 9, 1]), 1);
        assert_eq!(argmax(&[-5]), 0);
    }

    #[test]
    fn oracle_generates_reproducibly_within_vocab() {
        let weights = tiny_weights(11);
        let mut engine = OracleEngine::new(&weights);
        let a = generate(&weights, &mut engine, 3, 12).unwrap();
        let mut engine = OracleEngine::new(&weights);
        let b = generate(&weights, &mut engine, 3, 12).unwrap();
        assert_eq!(a, b, "greedy decode is deterministic");
        assert!(a
            .iter()
            .all(|s| (s.next_token as usize) < weights.config.vocab));
        assert_eq!(a.len(), 12);
        // K/V rows are weight codes.
        let q = weights.config.q_max() as i8;
        for step in &a {
            for row in step.k_rows.iter().chain(&step.v_rows) {
                assert!(row.iter().all(|&c| (-q..=q).contains(&c)));
            }
        }
    }

    #[test]
    fn step_is_pure_in_the_cache() {
        // Re-running the same step against the same cache must agree —
        // the property device retries and replica failover rely on.
        let weights = tiny_weights(5);
        let mut engine = OracleEngine::new(&weights);
        let mut cache = KvCache::new(&weights.config);
        let first = generate_step(&weights, &mut engine, &cache, 1, 0).unwrap();
        let again = generate_step(&weights, &mut engine, &cache, 1, 0).unwrap();
        assert_eq!(first, again);
        cache.apply(&first);
        assert_eq!(cache.len(), 1);
        let second = generate_step(&weights, &mut engine, &cache, first.next_token, 1).unwrap();
        assert_eq!(second.logits.len(), weights.config.vocab);
    }
}
