//! Device-level fault injection: structured errors, one-shot transients,
//! and snapshot-readability of killed chips.

use oxbar_nn::synthetic;
use oxbar_nn::zoo::lenet5;
use oxbar_sim::{DeviceExecutor, ExecError, FaultPlan, InjectedFault, SimConfig};

fn fixture() -> (
    oxbar_nn::Network,
    oxbar_nn::reference::Tensor3,
    Vec<oxbar_nn::reference::FilterBank>,
) {
    let net = lenet5();
    let input = synthetic::activations(net.input(), 6, 11);
    let filters = synthetic::filter_banks(&net, 6, 12);
    (net, input, filters)
}

#[test]
fn killed_chip_refuses_execution_with_a_structured_error() {
    let (net, input, filters) = fixture();
    let exec = DeviceExecutor::new(SimConfig::ideal(64, 64));
    assert!(!exec.is_failed());
    exec.inject_fault(InjectedFault::Kill);
    assert!(exec.is_failed());
    assert_eq!(
        exec.try_forward(&net, &input, &filters),
        Err(ExecError::ChipFailed)
    );
    // Kill is sticky: a second attempt fails the same way.
    assert_eq!(
        exec.try_forward(&net, &input, &filters),
        Err(ExecError::ChipFailed)
    );
}

#[test]
fn transient_tile_fault_fails_once_then_retries_byte_identically() {
    let (net, input, filters) = fixture();
    let exec = DeviceExecutor::new(SimConfig::ideal(64, 64));
    let baseline = exec.forward(&net, &input, &filters).expect("baseline");

    exec.inject_fault(InjectedFault::TileTransient { layer: 0, tile: 0 });
    assert_eq!(
        exec.try_forward(&net, &input, &filters),
        Err(ExecError::TileFault { layer: 0, tile: 0 })
    );
    // The transient is one-shot: the retry succeeds and is byte-identical
    // to the unfaulted baseline.
    let retried = exec
        .try_forward(&net, &input, &filters)
        .expect("retry succeeds");
    assert_eq!(retried, baseline);
}

#[test]
fn drift_degrades_health_without_changing_results() {
    let (net, input, filters) = fixture();
    let exec = DeviceExecutor::new(SimConfig::noisy(64, 64).with_seed(9));
    let baseline = exec.forward(&net, &input, &filters).expect("baseline");
    assert!(!exec.is_degraded());
    exec.inject_fault(InjectedFault::Drift);
    assert!(exec.is_degraded());
    let degraded = exec
        .try_forward(&net, &input, &filters)
        .expect("degraded chips still execute");
    assert_eq!(degraded, baseline);
}

#[test]
fn killed_chip_stays_snapshot_readable_and_restores_healthy() {
    let (net, input, filters) = fixture();
    let exec = DeviceExecutor::new(SimConfig::noisy(64, 64).with_seed(21));
    let baseline = exec
        .forward(&net, &input, &filters)
        .expect("warm the cache");
    exec.inject_fault(InjectedFault::Kill);

    // PCM non-volatility: the programmed state survives the control-plane
    // death, so the snapshot still captures every resident tile…
    let snapshot = exec.snapshot();
    assert!(!snapshot.tiles.is_empty());

    // …and restoring it yields a *healthy* chip whose outputs are
    // byte-identical to the pre-kill baseline.
    let restored = DeviceExecutor::restore(&snapshot);
    assert!(!restored.is_failed());
    let replayed = restored
        .try_forward(&net, &input, &filters)
        .expect("restored chip serves");
    assert_eq!(replayed, baseline);
}

#[test]
fn clones_do_not_inherit_faults() {
    let exec = DeviceExecutor::new(SimConfig::ideal(32, 32));
    exec.inject_fault(InjectedFault::Kill);
    exec.inject_fault(InjectedFault::Drift);
    let clone = exec.clone();
    assert!(!clone.is_failed());
    assert!(!clone.is_degraded());
}

#[test]
fn fault_plans_are_round_keyed_and_serializable() {
    let plan = FaultPlan::new()
        .kill_chip(4, 1)
        .tile_transient(2, 0)
        .drift(6, 1);
    assert_eq!(plan.events_at(4).count(), 1);
    assert_eq!(plan.events_at(3).count(), 0);
    let json = serde_json::to_string(&plan).expect("serialize");
    let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, plan);
}
