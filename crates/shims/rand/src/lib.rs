//! Offline stand-in for the `rand` crate (0.9-era API surface).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods the
//! `oxbar` workspace uses: `random()`, `random_range(..)`, and
//! `random_bool(..)`. Deterministic, allocation-free, and adequate for
//! simulation/test workloads; not cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from a range, e.g. `rng.random_range(0..=63u8)`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types seedable from a `u64` (the only constructor `oxbar` uses).
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Standard-distribution sampling for a concrete type.
pub trait Random: Sized {
    /// Samples one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly for values of type `T`.
pub trait SampleRange<T> {
    /// Samples one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Random>::random(rng) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + <$t as Random>::random(rng) * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++.
    ///
    /// Deterministic for a given seed; streams are well-distributed enough
    /// for Monte-Carlo device models and property tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / N as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: i8 = rng.random_range(-31..=31i8);
            assert!((-31..=31).contains(&v));
            let u: u8 = rng.random_range(0..=63u8);
            assert!(u <= 63);
            let f = rng.random_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn dyn_rng_is_object_safe_enough() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(takes_unsized(&mut rng) < 1.0);
    }
}
