//! Field-level simulation of the coherent PCM crossbar array (§III.A).
//!
//! [`CrossbarSimulator::run`] propagates complex E-fields cell by cell
//! through the directional couplers, MMI crossings, waveguide segments, PCM
//! patches, and phase trimmers of an N×M array, then returns the column
//! output fields. In the ideal (lossless, phase-matched) configuration the
//! result equals the paper's Eq. (1) to machine precision; with losses and
//! phase errors enabled it quantifies the systematic path-loss gradient and
//! coherence penalty that the architecture must calibrate out.

use crate::coupling::CouplingPlan;
use crate::crossing::MmiCrossing;
use crate::waveguide::Waveguide;
use crate::Field;
use core::cell::RefCell;
use oxbar_units::Decibel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Geometry and non-ideality knobs for a crossbar field simulation.
///
/// # Examples
///
/// ```
/// use oxbar_photonics::crossbar::CrossbarConfig;
///
/// let cfg = CrossbarConfig::new(128, 128)
///     .with_losses(true)
///     .with_phase_error_sigma(0.02);
/// assert_eq!(cfg.rows(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    rows: usize,
    cols: usize,
    include_losses: bool,
    crossing_loss_db: f64,
    waveguide_loss_db_per_cm: f64,
    cell_pitch_um: f64,
    phase_error_sigma_rad: f64,
    phase_error_seed: u64,
    trim_resolution_rad: f64,
    compensate_path_loss: bool,
}

impl CrossbarConfig {
    /// Creates an ideal (lossless, phase-matched) configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self {
            rows,
            cols,
            include_losses: false,
            crossing_loss_db: MmiCrossing::DEFAULT_LOSS_DB,
            waveguide_loss_db_per_cm: Waveguide::DEFAULT_LOSS_DB_PER_CM,
            cell_pitch_um: 30.0,
            phase_error_sigma_rad: 0.0,
            phase_error_seed: 0,
            trim_resolution_rad: 0.0,
            compensate_path_loss: false,
        }
    }

    /// Enables or disables component losses.
    #[must_use]
    pub fn with_losses(mut self, on: bool) -> Self {
        self.include_losses = on;
        self
    }

    /// Overrides the MMI crossing loss (dB/junction).
    #[must_use]
    pub fn with_crossing_loss_db(mut self, db: f64) -> Self {
        self.crossing_loss_db = db;
        self
    }

    /// Overrides the waveguide loss (dB/cm).
    #[must_use]
    pub fn with_waveguide_loss(mut self, db_per_cm: f64) -> Self {
        self.waveguide_loss_db_per_cm = db_per_cm;
        self
    }

    /// Overrides the unit-cell pitch (µm).
    #[must_use]
    pub fn with_cell_pitch_um(mut self, pitch: f64) -> Self {
        self.cell_pitch_um = pitch;
        self
    }

    /// Injects Gaussian per-cell phase errors with the given sigma (rad).
    #[must_use]
    pub fn with_phase_error_sigma(mut self, sigma_rad: f64) -> Self {
        self.phase_error_sigma_rad = sigma_rad;
        self
    }

    /// Seeds the phase-error draw (reproducible Monte-Carlo).
    #[must_use]
    pub fn with_phase_error_seed(mut self, seed: u64) -> Self {
        self.phase_error_seed = seed;
        self
    }

    /// Enables the per-cell thermal trimmers with the given phase
    /// quantization step (rad); `0.0` disables trimming.
    #[must_use]
    pub fn with_trim_resolution(mut self, step_rad: f64) -> Self {
        self.trim_resolution_rad = step_rad;
        self
    }

    /// Pre-compensates the systematic path-loss gradient by scaling the
    /// programmed weights (calibration mode). Weights are normalized to the
    /// worst-loss cell so all stay within the PCM's [0, 1] range.
    #[must_use]
    pub fn with_path_loss_compensation(mut self, on: bool) -> Self {
        self.compensate_path_loss = on;
        self
    }

    /// Number of rows (N).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (M).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether losses are enabled.
    #[must_use]
    pub fn losses_enabled(&self) -> bool {
        self.include_losses
    }
}

/// The field-level crossbar simulator.
///
/// See the [crate-level docs](crate) for a usage example.
#[derive(Debug, Clone)]
pub struct CrossbarSimulator {
    config: CrossbarConfig,
    plan: CouplingPlan,
    /// Per-cell phase errors (rad), rows × cols; empty when sigma = 0.
    phase_errors: Vec<f64>,
    /// Per-cell trim phases (rad); empty when trimming is off.
    trims: Vec<f64>,
    /// Per-cell path-loss pre-compensation field factors (the boost of each
    /// weight relative to the worst-loss path); empty when compensation is
    /// off. Precomputed once so `run` does not recompute `cell_path_loss`
    /// for every cell on every call.
    comp_factors: Vec<f64>,
    /// Reusable flat buffers (effective weights + cell fields) so `run`
    /// allocates nothing per call beyond its output vector.
    scratch: RefCell<Scratch>,
}

#[derive(Debug, Clone, Default)]
struct Scratch {
    weights: Vec<f64>,
    cells: Vec<Field>,
}

impl CrossbarSimulator {
    /// Builds a simulator from a configuration.
    #[must_use]
    pub fn new(config: CrossbarConfig) -> Self {
        let plan = CouplingPlan::equalizing(config.rows, config.cols);
        let n_cells = config.rows * config.cols;
        let phase_errors = if config.phase_error_sigma_rad > 0.0 {
            let mut rng = StdRng::seed_from_u64(config.phase_error_seed);
            (0..n_cells)
                .map(|_| gaussian(&mut rng) * config.phase_error_sigma_rad)
                .collect()
        } else {
            Vec::new()
        };
        let trims = if config.trim_resolution_rad > 0.0 && !phase_errors.is_empty() {
            // The trimmer cancels the measured error up to its quantization.
            phase_errors
                .iter()
                .map(|&e| -(e / config.trim_resolution_rad).round() * config.trim_resolution_rad)
                .collect()
        } else {
            Vec::new()
        };
        let mut sim = Self {
            config,
            plan,
            phase_errors,
            trims,
            comp_factors: Vec::new(),
            scratch: RefCell::new(Scratch::default()),
        };
        if sim.config.include_losses && sim.config.compensate_path_loss {
            let worst = sim.worst_cell_path_loss();
            // A cell's path loss depends only on its diagonal index
            // `k = col + (rows − 1 − row)` (crossings = k, segments =
            // k + 1), so the `rows × cols` factor matrix has just
            // `rows + cols − 1` distinct values. Computing each once
            // through the same `cell_path_loss` call is bit-identical to
            // the per-cell loop and drops O(N·M) `powf`s to O(N + M).
            let (rows, cols) = (sim.config.rows, sim.config.cols);
            let by_diagonal: Vec<f64> = (0..rows + cols - 1)
                .map(|k| {
                    let (i, j) = if k < cols {
                        (rows - 1, k)
                    } else {
                        (rows - 1 - (k - (cols - 1)), cols - 1)
                    };
                    (worst - sim.cell_path_loss(i, j)).attenuation_field()
                })
                .collect();
            let mut factors = Vec::with_capacity(n_cells);
            for i in 0..rows {
                for j in 0..cols {
                    factors.push(by_diagonal[j + (rows - 1 - i)]);
                }
            }
            sim.comp_factors = factors;
        }
        sim
    }

    /// Shorthand for an ideal (lossless, phase-matched) simulator.
    #[must_use]
    pub fn ideal(config: CrossbarConfig) -> Self {
        Self::new(config.with_losses(false).with_phase_error_sigma(0.0))
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// The coupling plan in use.
    #[must_use]
    pub fn plan(&self) -> &CouplingPlan {
        &self.plan
    }

    /// Whether any per-cell phase errors were drawn (residual phases may
    /// then be non-zero; without them every residual is exactly 0).
    #[must_use]
    pub fn has_phase_errors(&self) -> bool {
        !self.phase_errors.is_empty()
    }

    /// Residual phase error at a cell after trimming (rad).
    #[must_use]
    pub fn residual_phase(&self, row: usize, col: usize) -> f64 {
        let idx = row * self.config.cols + col;
        let err = self.phase_errors.get(idx).copied().unwrap_or(0.0);
        let trim = self.trims.get(idx).copied().unwrap_or(0.0);
        err + trim
    }

    /// Relative power loss (dB) of the path through cell `(row, col)`
    /// compared with a loss-free path: crossings plus waveguide propagation.
    #[must_use]
    pub fn cell_path_loss(&self, row: usize, col: usize) -> Decibel {
        if !self.config.include_losses {
            return Decibel::ZERO;
        }
        // Row light passes `col` crossings before tapping; the product passes
        // `rows − 1 − row` crossings descending the column.
        let crossings = (col + (self.config.rows - 1 - row)) as f64;
        let cells_traversed = (col + 1 + (self.config.rows - 1 - row)) as f64;
        let path_cm = cells_traversed * self.config.cell_pitch_um * 1e-4;
        Decibel::new(
            self.config.crossing_loss_db * crossings
                + self.config.waveguide_loss_db_per_cm * path_cm,
        )
    }

    /// The worst (largest) per-cell path loss in the array.
    #[must_use]
    pub fn worst_cell_path_loss(&self) -> Decibel {
        // The far corner (top row, last column) has max crossings + length.
        self.cell_path_loss(0, self.config.cols - 1)
    }

    /// The path-loss pre-compensation field factor applied to the weight at
    /// `(row, col)` (1 when compensation is off): the loss advantage of this
    /// cell's path over the worst path, so that compensated weights all carry
    /// the worst-path attenuation.
    #[must_use]
    pub fn compensation_factor(&self, row: usize, col: usize) -> f64 {
        if self.comp_factors.is_empty() {
            1.0
        } else {
            self.comp_factors[row * self.config.cols + col]
        }
    }

    /// The per-element field factors of one crossing and one cell pitch of
    /// waveguide routing, `(crossing, segment)`; both are 1 when losses are
    /// disabled. These are the two unit attenuations the propagation walk
    /// applies between cells, exposed so the compiled transfer matrix
    /// ([`crate::transfer::CompiledCrossbar`]) folds exactly the same values.
    #[must_use]
    pub fn unit_loss_factors(&self) -> (f64, f64) {
        if self.config.include_losses {
            (
                Decibel::new(self.config.crossing_loss_db).attenuation_field(),
                Decibel::new(
                    self.config.waveguide_loss_db_per_cm * self.config.cell_pitch_um * 1e-4,
                )
                .attenuation_field(),
            )
        } else {
            (1.0, 1.0)
        }
    }

    /// Runs the full field propagation.
    ///
    /// `inputs` are the normalized row amplitudes `v_in[i] ∈ [0, 1]` (after
    /// the ODAC) and `weights[i][j] ∈ [0, 1]` are the PCM field
    /// transmissions. The laser field is normalized to amplitude 1 before
    /// the splitter tree. Returns the M column output fields.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `weights` do not match the array dimensions, or
    /// if any value is outside `[0, 1]`.
    #[must_use]
    pub fn run(&self, inputs: &[f64], weights: &[Vec<f64>]) -> Vec<Field> {
        let (n, m) = (self.config.rows, self.config.cols);
        assert_eq!(inputs.len(), n, "expected {n} row inputs");
        assert_eq!(weights.len(), n, "expected {n} weight rows");
        for (i, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), m, "weight row {i} must have {m} columns");
        }
        assert!(
            inputs.iter().all(|v| (0.0..=1.0).contains(v)),
            "inputs must lie in [0, 1]"
        );
        assert!(
            weights.iter().flatten().all(|w| (0.0..=1.0).contains(w)),
            "weights must lie in [0, 1]"
        );

        let mut scratch = self.scratch.borrow_mut();
        let Scratch {
            weights: flat,
            cells: cell_fields,
        } = &mut *scratch;
        self.effective_weights_into(weights, flat);

        let (crossing_field, segment_field) = self.unit_loss_factors();

        // Phase-matched layout assumption (§III.A.2): waveguide segments
        // contribute loss but their design phases cancel; only the residual
        // per-cell phase errors (minus trims) remain.
        cell_fields.clear();
        cell_fields.resize(n * m, Field::DARK);
        for (i, &input) in inputs.iter().enumerate().take(n) {
            // Row field after the 1/√N splitter and the ODAC amplitude.
            let mut row_field = Field::from_amplitude(input / (n as f64).sqrt());
            for j in 0..m {
                let dc = self.plan.input_coupler(j);
                let (through, tapped) = dc.couple(row_field, Field::DARK);
                // The through light crosses the column waveguide and one
                // cell pitch of routing before the next cell.
                row_field = through.attenuate(crossing_field).attenuate(segment_field);
                // The tapped light traverses the bended waveguide + PCM.
                let idx = i * m + j;
                let mut cell = tapped.attenuate(flat[idx]).attenuate(segment_field);
                let residual = self.residual_phase(i, j);
                if residual != 0.0 {
                    cell = cell.shift_phase(residual);
                }
                cell_fields[idx] = cell;
            }
        }

        (0..m)
            .map(|j| {
                let mut column = Field::DARK;
                for i in 0..n {
                    if i > 0 {
                        // Descend one cell pitch: the bus crosses the row
                        // waveguide and accumulates a segment of routing.
                        column = column.attenuate(crossing_field).attenuate(segment_field);
                    }
                    let dc = self.plan.output_coupler(i);
                    // Ports: `a` = cell tap, `b` = running column bus. The
                    // cross output (j·k·a + t·b) continues down the column.
                    let (_, cross) = dc.couple(cell_fields[i * m + j], column);
                    column = cross;
                }
                column
            })
            .collect()
    }

    /// The analytic outputs of Eq. (1):
    /// `E_c[j] = (1/(N·√M)) Σ_i v[i]·w[i][j]`, at the propagation phase the
    /// physical array produces (each contribution crosses two DCs → j² = −1,
    /// plus one 90° pickup per descended row from the column bus couplers).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn ideal_outputs(&self, inputs: &[f64], weights: &[Vec<f64>]) -> Vec<Field> {
        let (n, m) = (self.config.rows, self.config.cols);
        assert_eq!(inputs.len(), n);
        assert_eq!(weights.len(), n);
        (0..m)
            .map(|j| {
                let sum: f64 = (0..n).map(|i| inputs[i] * weights[i][j]).sum();
                let amplitude = sum / (n as f64 * (m as f64).sqrt());
                Field::from_amplitude(amplitude).shift_phase(core::f64::consts::PI)
            })
            .collect()
    }

    /// Normalized MAC results: `y[j] = Σ_i v[i]·w[i][j] / N`, recovered from
    /// the physical simulation by undoing the architecture prefactor
    /// (amplitude × N√M / N = amplitude × √M... i.e. `|E_c[j]|·√M`).
    #[must_use]
    pub fn run_normalized(&self, inputs: &[f64], weights: &[Vec<f64>]) -> Vec<f64> {
        let m = self.config.cols as f64;
        let scale = self.normalization_scale();
        self.run(inputs, weights)
            .iter()
            .map(|f| f.amplitude() * m.sqrt() / scale)
            .collect()
    }

    /// The amplitude divisor [`Self::run_normalized`] applies after the
    /// `√M` prefactor: the worst-path attenuation when compensated losses
    /// are enabled (all cells then carry the worst-path loss), 1 otherwise.
    #[must_use]
    pub fn normalization_scale(&self) -> f64 {
        if self.config.include_losses && self.config.compensate_path_loss {
            self.worst_cell_path_loss().attenuation_field()
        } else {
            1.0
        }
    }

    /// The effective (possibly path-loss-compensated) transmission of the
    /// weight programmed at `(row, col)` — exactly what the propagation walk
    /// applies to that cell's tapped field.
    #[must_use]
    pub fn effective_weight(&self, row: usize, col: usize, weight: f64) -> f64 {
        if self.comp_factors.is_empty() {
            weight
        } else {
            // Boost each weight by its loss advantage over the worst path;
            // the boost is ≤ 1 relative to the w=1 ceiling because
            // worst ≥ cell loss.
            (weight * self.comp_factors[row * self.config.cols + col]).min(1.0)
        }
    }

    /// Applies path-loss pre-compensation to the weight matrix if enabled,
    /// writing into the reusable flat buffer.
    fn effective_weights_into(&self, weights: &[Vec<f64>], flat: &mut Vec<f64>) {
        let (n, m) = (self.config.rows, self.config.cols);
        flat.clear();
        flat.reserve(n * m);
        if self.comp_factors.is_empty() {
            for row in weights {
                flat.extend(row.iter().copied());
            }
        } else {
            for (i, row) in weights.iter().enumerate().take(n) {
                for (j, &w) in row.iter().enumerate().take(m) {
                    flat.push(self.effective_weight(i, j, w));
                }
            }
        }
    }
}

/// Standard-normal draw via Box-Muller (avoids a distributions dependency).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_case(n: usize, m: usize, seed: u64) -> (Vec<f64>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = (0..n).map(|_| rng.random::<f64>()).collect();
        let weights = (0..n)
            .map(|_| (0..m).map(|_| rng.random::<f64>()).collect())
            .collect();
        (inputs, weights)
    }

    #[test]
    fn ideal_propagation_matches_equation_one() {
        for (n, m) in [(1, 1), (2, 2), (4, 3), (8, 8), (16, 5), (32, 32)] {
            let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
            let (inputs, weights) = random_case(n, m, 42 + n as u64);
            let outputs = sim.run(&inputs, &weights);
            let ideal = sim.ideal_outputs(&inputs, &weights);
            for j in 0..m {
                let got = outputs[j].envelope();
                let want = ideal[j].envelope();
                assert!(
                    (got - want).abs() < 1e-12,
                    "n={n} m={m} j={j}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn run_normalized_recovers_average_mac() {
        let n = 8;
        let m = 4;
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
        let (inputs, weights) = random_case(n, m, 7);
        let ys = sim.run_normalized(&inputs, &weights);
        for j in 0..m {
            let expected: f64 = (0..n).map(|i| inputs[i] * weights[i][j]).sum::<f64>() / n as f64;
            assert!((ys[j] - expected).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn outputs_scale_linearly_with_inputs() {
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(4, 4));
        let (inputs, weights) = random_case(4, 4, 3);
        let halved: Vec<f64> = inputs.iter().map(|v| v / 2.0).collect();
        let full = sim.run(&inputs, &weights);
        let half = sim.run(&halved, &weights);
        for j in 0..4 {
            assert!((full[j].amplitude() - 2.0 * half[j].amplitude()).abs() < 1e-12);
        }
    }

    #[test]
    fn losses_attenuate_outputs() {
        let (inputs, weights) = random_case(8, 8, 11);
        let ideal = CrossbarSimulator::ideal(CrossbarConfig::new(8, 8));
        let lossy = CrossbarSimulator::new(CrossbarConfig::new(8, 8).with_losses(true));
        let a = ideal.run(&inputs, &weights);
        let b = lossy.run(&inputs, &weights);
        for j in 0..8 {
            assert!(b[j].amplitude() < a[j].amplitude());
        }
    }

    #[test]
    fn path_loss_gradient_exists_without_compensation() {
        let sim = CrossbarSimulator::new(CrossbarConfig::new(16, 16).with_losses(true));
        // Far corner cell loses more than the near corner cell.
        assert!(sim.cell_path_loss(0, 15).value() > sim.cell_path_loss(15, 0).value());
    }

    #[test]
    fn compensation_restores_mac_proportionality() {
        let n = 8;
        let m = 8;
        let (inputs, weights) = random_case(n, m, 5);
        let comp = CrossbarSimulator::new(
            CrossbarConfig::new(n, m)
                .with_losses(true)
                .with_path_loss_compensation(true),
        );
        let ys = comp.run_normalized(&inputs, &weights);
        for j in 0..m {
            let expected: f64 = (0..n).map(|i| inputs[i] * weights[i][j]).sum::<f64>() / n as f64;
            // Equal to the exact MAC within small numerical tolerance; the
            // systematic gradient is calibrated out.
            assert!(
                (ys[j] - expected).abs() < 1e-6,
                "j={j}: {ys:?} vs {expected}"
            );
        }
    }

    #[test]
    fn uncompensated_losses_bias_the_mac() {
        let n = 16;
        let m = 16;
        let (inputs, weights) = random_case(n, m, 9);
        let lossy = CrossbarSimulator::new(CrossbarConfig::new(n, m).with_losses(true));
        let ys = lossy.run_normalized(&inputs, &weights);
        let mut max_err = 0.0f64;
        for j in 0..m {
            let expected: f64 = (0..n).map(|i| inputs[i] * weights[i][j]).sum::<f64>() / n as f64;
            max_err = max_err.max((ys[j] - expected).abs() / expected.abs().max(1e-12));
        }
        // Without calibration the gradient produces a visible (>1%) error.
        assert!(max_err > 0.01, "max relative error {max_err}");
    }

    #[test]
    fn phase_errors_reduce_coherent_sum() {
        let n = 32;
        let m = 8;
        let inputs = vec![1.0; n];
        let weights = vec![vec![1.0; m]; n];
        let clean = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
        let noisy = CrossbarSimulator::new(
            CrossbarConfig::new(n, m)
                .with_phase_error_sigma(0.5)
                .with_phase_error_seed(13),
        );
        let a = clean.run(&inputs, &weights);
        let b = noisy.run(&inputs, &weights);
        // Large phase errors destroy constructive interference.
        assert!(b[0].amplitude() < a[0].amplitude());
    }

    #[test]
    fn trimming_recovers_coherence() {
        let n = 32;
        let m = 4;
        let inputs = vec![1.0; n];
        let weights = vec![vec![1.0; m]; n];
        let ideal = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
        let noisy = CrossbarSimulator::new(
            CrossbarConfig::new(n, m)
                .with_phase_error_sigma(0.3)
                .with_phase_error_seed(21),
        );
        let trimmed = CrossbarSimulator::new(
            CrossbarConfig::new(n, m)
                .with_phase_error_sigma(0.3)
                .with_phase_error_seed(21)
                .with_trim_resolution(0.01),
        );
        let ai = ideal.run(&inputs, &weights)[0].amplitude();
        let an = noisy.run(&inputs, &weights)[0].amplitude();
        let at = trimmed.run(&inputs, &weights)[0].amplitude();
        assert!(at > an, "trimming should improve coherence");
        assert!((at - ai).abs() / ai < 1e-3, "trimmed should be near ideal");
    }

    #[test]
    fn residual_phase_is_bounded_by_trim_step() {
        let sim = CrossbarSimulator::new(
            CrossbarConfig::new(8, 8)
                .with_phase_error_sigma(0.2)
                .with_phase_error_seed(3)
                .with_trim_resolution(0.05),
        );
        for i in 0..8 {
            for j in 0..8 {
                assert!(sim.residual_phase(i, j).abs() <= 0.025 + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inputs must lie in [0, 1]")]
    fn out_of_range_input_panics() {
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(2, 2));
        let _ = sim.run(&[1.5, 0.0], &vec![vec![0.5; 2]; 2]);
    }

    #[test]
    #[should_panic(expected = "expected 2 row inputs")]
    fn dimension_mismatch_panics() {
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(2, 2));
        let _ = sim.run(&[0.5], &vec![vec![0.5; 2]; 2]);
    }
}
