//! Workspace wiring smoke test: every sub-crate re-exported by the
//! `oxbar` facade must be constructible through `oxbar::prelude` (or the
//! corresponding facade module), proving the workspace manifests and the
//! facade re-exports agree.

use oxbar::prelude::*;

#[test]
fn one_object_from_each_subcrate_via_facade() {
    // oxbar-units
    let power = Power::from_milliwatts(25.0);
    let energy: Energy = power * Time::from_nanoseconds(2.0);
    assert!(energy.as_picojoules() > 0.0);
    let loss = Decibel::new(3.0);
    assert!(loss.attenuation_power() < 1.0);
    assert!(DataVolume::from_megabytes(1.0).fits_in(DataVolume::from_megabytes(2.0)));
    assert!(Area::from_square_millimeters(1.0).as_square_millimeters() > 0.0);
    assert!((Frequency::from_gigahertz(10.0).period().as_nanoseconds() - 0.1).abs() < 1e-12);

    // oxbar-photonics
    let sim = CrossbarSimulator::ideal(CrossbarConfig::new(4, 4));
    let outputs = sim.run(&[1.0, 0.5, 0.25, 0.0], &vec![vec![0.5; 4]; 4]);
    assert_eq!(outputs.len(), 4);

    // oxbar-pcm
    let mut cell = oxbar::pcm::PcmCell::pristine();
    cell.set_crystalline_fraction(0.5);
    assert!(cell.transmission() > 0.0);

    // oxbar-electronics
    let adc = oxbar::electronics::Adc::paper_default(Frequency::from_gigahertz(10.0));
    assert!(adc.power().as_watts() > 0.0);

    // oxbar-memory
    let sram = oxbar::memory::sram::SramBlock::new(
        oxbar::memory::sram::SramKind::Input,
        DataVolume::from_megabytes(1.0),
    );
    assert!(sram.area().as_square_millimeters() > 0.0);

    // oxbar-nn
    let shape = TensorShape::new(8, 8, 3);
    let mut net = Network::new("smoke", shape);
    net.push(oxbar::nn::Layer::Conv2d(oxbar::nn::Conv2d::new(
        "conv", shape, 3, 3, 4, 1, 1,
    )));
    assert!(net.total_macs() > 0);

    // oxbar-dataflow
    let engine = DataflowEngine::paper_default(16, 16, 1);
    let spec: NetworkSpec = engine.analyze(&net);
    assert!(spec.total_compute_cycles > 0);
    let conv = net.conv_like_layers().next().expect("one conv");
    let plan = FoldPlan::plan(&conv, 16, 16, 1);
    assert!(plan.row_folds >= 1 && plan.col_folds >= 1);

    // oxbar-core
    let chip = Chip::new(ChipConfig::paper_optimal().with_cores(CoreCount::Single));
    let report: ChipReport = chip.evaluate(&net);
    assert!(report.ips > 0.0);
    assert!(report.power.as_watts() > 0.0);
    let tech = TechnologyParams::paper_default();
    assert!(tech == chip.config().tech);

    // oxbar-sim: a tiny network end to end through the device chain.
    let sim_net = oxbar::nn::synthetic::small_network(1);
    let image = oxbar::nn::synthetic::activations(sim_net.input(), 6, 2);
    let filters = oxbar::nn::synthetic::filter_banks(&sim_net, 6, 3);
    let fidelity: InferenceFidelity =
        run_inference(&sim_net, &SimConfig::ideal(32, 32), &[image], &filters).unwrap();
    assert!(fidelity.exact);
    let _ = DeviceExecutor::new(SimConfig::noisy(32, 32));

    // oxbar-serve: admit that network and serve one request through the
    // batched engine.
    let mut serve_engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(32, 32)));
    let model = serve_engine
        .admit(oxbar::serve::catalog::spec_from_network(sim_net, 3))
        .unwrap();
    let request = InferRequest {
        model,
        input: oxbar::nn::synthetic::activations(serve_engine.input_shape(model), 6, 2),
        arrival: 0,
        deadline: None,
    };
    serve_engine.submit(request);
    let completions = serve_engine.drain();
    assert_eq!(completions.len(), 1);
    assert_eq!(serve_engine.stats().requests, 1);
}
