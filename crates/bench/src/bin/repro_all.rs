//! Regenerates every table and figure in one run.
fn main() {
    let figures: [(&str, fn()); 11] = [
        ("Fig. 1", oxbar_bench::figures::fig1::run),
        ("Fig. 6", oxbar_bench::figures::fig6::run),
        ("Fig. 7a", oxbar_bench::figures::fig7::run_7a),
        ("Fig. 7b", oxbar_bench::figures::fig7::run_7b),
        ("Fig. 7c", oxbar_bench::figures::fig7::run_7c),
        ("Fig. 8", oxbar_bench::figures::fig8::run),
        ("Sec. VI.B", oxbar_bench::figures::optimize::run),
        ("Table (Sec. VII)", oxbar_bench::figures::table1::run),
        ("Fidelity study", oxbar_bench::figures::fidelity::run),
        ("Zoo sweep", oxbar_bench::figures::zoo::run),
        ("Sensitivity", oxbar_bench::figures::sensitivity::run),
    ];
    for (name, run) in figures {
        println!("\n================ {name} ================\n");
        run();
    }
    println!("\nAll artifacts regenerated under results/.");
}
