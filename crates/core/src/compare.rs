//! The §VII comparison against the Nvidia A100 baseline.

use crate::report::ChipReport;
use serde::{Deserialize, Serialize};

/// A published baseline accelerator record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRecord {
    /// System name.
    pub name: String,
    /// ResNet-50 inferences per second.
    pub ips: f64,
    /// IPS per watt.
    pub ips_per_watt: f64,
    /// Board/chip power (W).
    pub power_w: f64,
    /// Die area (mm²).
    pub area_mm2: f64,
}

impl BaselineRecord {
    /// The paper's A100 row (ref. \[24\]: INT8, batch 128, ResNet-50).
    #[must_use]
    pub fn nvidia_a100() -> Self {
        Self {
            name: "Nvidia A100 (INT8, batch 128)".to_string(),
            ips: 29_733.0,
            ips_per_watt: 75.0,
            power_w: 396.0,
            area_mm2: 826.0,
        }
    }

    /// The paper's own reported row for its 128×128 optimum ("This work").
    #[must_use]
    pub fn paper_this_work() -> Self {
        Self {
            name: "Paper's reported optimum".to_string(),
            ips: 36_382.0,
            ips_per_watt: 1_196.0,
            power_w: 30.0,
            area_mm2: 121.0,
        }
    }
}

/// The §VII table: this work (our reproduction) vs a baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Our evaluated chip.
    pub this_work: BaselineRecord,
    /// The baseline row.
    pub baseline: BaselineRecord,
}

impl Comparison {
    /// Builds the comparison from a chip report.
    #[must_use]
    pub fn against(report: &ChipReport, baseline: BaselineRecord) -> Self {
        Self {
            this_work: BaselineRecord {
                name: format!(
                    "This work ({}x{}, batch {})",
                    report.array.0, report.array.1, report.batch
                ),
                ips: report.ips,
                ips_per_watt: report.ips_per_watt,
                power_w: report.power.as_watts(),
                area_mm2: report.area.total().as_square_millimeters(),
            },
            baseline,
        }
    }

    /// Baseline power over ours (the paper reports 15.4×).
    #[must_use]
    pub fn power_advantage(&self) -> f64 {
        self.baseline.power_w / self.this_work.power_w
    }

    /// Baseline area over ours (the paper reports 7.24×).
    #[must_use]
    pub fn area_advantage(&self) -> f64 {
        self.baseline.area_mm2 / self.this_work.area_mm2
    }

    /// Our IPS over the baseline's (the paper reports ≈1.22×).
    #[must_use]
    pub fn ips_ratio(&self) -> f64 {
        self.this_work.ips / self.baseline.ips
    }
}

impl core::fmt::Display for Comparison {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{:38} {:>9} {:>8} {:>9} {:>10}",
            "System", "IPS", "IPS/W", "Power", "Area"
        )?;
        for rec in [&self.this_work, &self.baseline] {
            writeln!(
                f,
                "{:38} {:>9.0} {:>8.0} {:>8.1}W {:>7.0}mm²",
                rec.name, rec.ips, rec.ips_per_watt, rec.power_w, rec.area_mm2
            )?;
        }
        writeln!(
            f,
            "advantages: {:.2}x lower power, {:.2}x lower area, {:.2}x IPS",
            self.power_advantage(),
            self.area_advantage(),
            self.ips_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::Chip;
    use crate::config::ChipConfig;
    use oxbar_nn::zoo::resnet50_v1_5;

    #[test]
    fn a100_published_numbers() {
        let a100 = BaselineRecord::nvidia_a100();
        assert_eq!(a100.ips, 29_733.0);
        assert_eq!(a100.power_w, 396.0);
    }

    #[test]
    fn comparison_shows_large_power_and_area_advantage() {
        let report = Chip::new(ChipConfig::paper_optimal()).evaluate(&resnet50_v1_5());
        let cmp = Comparison::against(&report, BaselineRecord::nvidia_a100());
        // Paper: 15.4× power, 7.24× area, similar IPS. Shape check: both
        // advantages are large, IPS is the same order.
        assert!(
            cmp.power_advantage() > 5.0,
            "power {}",
            cmp.power_advantage()
        );
        assert!(
            cmp.area_advantage() > 5.0 && cmp.area_advantage() < 9.0,
            "area {}",
            cmp.area_advantage()
        );
        assert!(
            cmp.ips_ratio() > 0.8 && cmp.ips_ratio() < 1.8,
            "ips ratio {}",
            cmp.ips_ratio()
        );
    }

    #[test]
    fn display_renders_table() {
        let report = Chip::new(ChipConfig::paper_optimal()).evaluate(&resnet50_v1_5());
        let cmp = Comparison::against(&report, BaselineRecord::nvidia_a100());
        let text = cmp.to_string();
        assert!(text.contains("System"));
        assert!(text.contains("A100"));
        assert!(text.contains("advantages"));
    }
}
