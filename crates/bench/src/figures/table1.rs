//! §VII comparison table — this work vs Nvidia A100.

use crate::{fmt, write_csv};
use oxbar_core::compare::{BaselineRecord, Comparison};
use oxbar_core::{Chip, ChipConfig};
use oxbar_nn::zoo::resnet50_v1_5;

/// Builds the comparison at the paper-optimal configuration.
#[must_use]
pub fn generate() -> Comparison {
    let report = Chip::new(ChipConfig::paper_optimal()).evaluate(&resnet50_v1_5());
    Comparison::against(&report, BaselineRecord::nvidia_a100())
}

/// Prints the table plus the paper's reported row.
pub fn render(cmp: &Comparison) {
    println!("# Table (Sec. VII) — this work vs Nvidia A100 (ResNet-50)");
    println!("{cmp}");
    let paper = BaselineRecord::paper_this_work();
    println!(
        "paper's reported row:                  {:>9.0} {:>8.0} {:>8.1}W {:>7.0}mm²",
        paper.ips, paper.ips_per_watt, paper.power_w, paper.area_mm2
    );
    println!("paper's reported advantages: 15.4x lower power, 7.24x lower area, 1.22x IPS");
}

/// Builds the comparison and writes `results/table1_comparison.csv`.
pub fn run() -> Comparison {
    let cmp = generate();
    let paper = BaselineRecord::paper_this_work();
    let rows = vec![
        vec![
            cmp.this_work.name.clone(),
            fmt(cmp.this_work.ips, 0),
            fmt(cmp.this_work.ips_per_watt, 1),
            fmt(cmp.this_work.power_w, 2),
            fmt(cmp.this_work.area_mm2, 1),
        ],
        vec![
            cmp.baseline.name.clone(),
            fmt(cmp.baseline.ips, 0),
            fmt(cmp.baseline.ips_per_watt, 1),
            fmt(cmp.baseline.power_w, 2),
            fmt(cmp.baseline.area_mm2, 1),
        ],
        vec![
            paper.name.clone(),
            fmt(paper.ips, 0),
            fmt(paper.ips_per_watt, 1),
            fmt(paper.power_w, 2),
            fmt(paper.area_mm2, 1),
        ],
    ];
    write_csv(
        "table1_comparison",
        &["system", "ips", "ips_per_watt", "power_w", "area_mm2"],
        &rows,
    );
    cmp
}
