//! Power model: per-component energies per batch pass → watts.

use crate::config::ChipConfig;
use crate::perf::PerfReport;
use oxbar_electronics::bank::{ReceiverBank, TransmitterBank};
use oxbar_photonics::detector::Photodiode;
use oxbar_photonics::laser::Laser;
use oxbar_photonics::snr;
use oxbar_units::{DataVolume, Energy, EnergyPerBit, Power};
use serde::{Deserialize, Serialize};

/// Energy per batch pass, itemized by subsystem.
///
/// Dividing by the batch time gives the chip power; dividing the batch size
/// by the total gives IPS/W. Energies (not powers) are the primitive so the
/// paper's core-count invariance (§VI.A.1: dual-core changes IPS, not
/// IPS/W) holds by construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Laser wall-plug energy.
    pub laser: Energy,
    /// Row transmitters: ODAC drivers, ring tuning, SerDes, clocking.
    pub transmitters: Energy,
    /// Column receivers: TIA, ADC, SerDes, clocking.
    pub receivers: Energy,
    /// Per-cell thermal phase-trim heaters (active core).
    pub trim_heaters: Energy,
    /// PCM programming pulses.
    pub pcm_programming: Energy,
    /// All four SRAM blocks.
    pub sram: Energy,
    /// Off-chip DRAM (HBM).
    pub dram: Energy,
    /// Digital backend: accumulators and activation units.
    pub digital: Energy,
}

impl PowerBreakdown {
    /// Total energy per batch pass.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.laser
            + self.transmitters
            + self.receivers
            + self.trim_heaters
            + self.pcm_programming
            + self.sram
            + self.dram
            + self.digital
    }

    /// `(name, energy)` pairs in a stable order (Fig. 8 rows).
    #[must_use]
    pub fn entries(&self) -> Vec<(&'static str, Energy)> {
        vec![
            ("laser", self.laser),
            ("transmitters (ODAC+SerDes+clk)", self.transmitters),
            ("receivers (TIA+ADC+SerDes+clk)", self.receivers),
            ("phase-trim heaters", self.trim_heaters),
            ("PCM programming", self.pcm_programming),
            ("SRAM", self.sram),
            ("DRAM (HBM)", self.dram),
            ("digital (accum+activation)", self.digital),
        ]
    }

    /// The dominant component name.
    #[must_use]
    pub fn dominant(&self) -> &'static str {
        self.entries()
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("energies are finite"))
            .map(|(name, _)| name)
            .unwrap_or("none")
    }
}

/// The power model.
#[derive(Debug, Clone)]
pub struct PowerModel {
    config: ChipConfig,
}

impl PowerModel {
    /// Creates the model for a configuration.
    #[must_use]
    pub fn new(config: ChipConfig) -> Self {
        Self { config }
    }

    /// Sizes the shared laser: per-column full-scale receiver sensitivity,
    /// back-propagated through the worst-path loss stack, plus the LO taps.
    ///
    /// # Examples
    ///
    /// ```
    /// use oxbar_core::config::ChipConfig;
    /// use oxbar_core::power::PowerModel;
    ///
    /// let model = PowerModel::new(ChipConfig::paper_optimal());
    /// let laser = model.laser();
    /// // Tens of mW optical for a 128×128 array at 6-bit/10 GHz.
    /// assert!(laser.optical_power().as_milliwatts() > 1.0);
    /// assert!(laser.optical_power().as_watts() < 1.0);
    /// ```
    #[must_use]
    pub fn laser(&self) -> Laser {
        let tech = &self.config.tech;
        let p_signal = snr::required_signal_power(
            tech.receiver_enob,
            tech.clock,
            Photodiode::default(),
            tech.lo_power_per_column,
            &tech.receiver_noise,
        );
        let budget = tech
            .losses
            .worst_path_budget(self.config.rows, self.config.cols);
        let signal_at_laser = p_signal * self.config.cols as f64 * budget.total().gain_power();
        // LO taps bypass the array but still pay the fiber-to-chip coupler.
        let lo_at_laser = tech.lo_power_per_column
            * self.config.cols as f64
            * oxbar_units::Decibel::new(tech.losses.grating_db).gain_power();
        Laser::new(signal_at_laser + lo_at_laser, tech.laser_wall_plug)
    }

    /// Computes the per-batch energy breakdown for a timed perf report.
    #[must_use]
    pub fn evaluate(&self, perf: &PerfReport) -> PowerBreakdown {
        let tech = &self.config.tech;
        let compute_time = tech.clock.cycles_to_time(perf.cycle_report.compute_cycles);

        // Optical and transceiver energy accrues while the array computes;
        // the laser and the idle core's transceivers are gated during
        // programming bubbles (DESIGN.md §5).
        let laser = self.laser().electrical_power() * compute_time;
        let transmitters =
            TransmitterBank::paper_default(tech.clock).power(self.config.rows) * compute_time;
        let receivers =
            ReceiverBank::paper_default(tech.clock).power(self.config.cols) * compute_time;
        // Trim heaters hold the computing core's cells in phase; the
        // programming core's trims are off during its write (DESIGN.md §5).
        let trim_heaters =
            tech.trim_power_per_cell() * self.config.cells_per_core() as f64 * compute_time;

        let pcm_programming = tech.pcm_program_energy * perf.spec.total_cells_programmed as f64;

        let traffic = &perf.spec.traffic;
        let sram = DataVolume::from_bits(traffic.sram_total().as_bits())
            * EnergyPerBit::from_femtojoules_per_bit(
                oxbar_memory::sram::SramBlock::ACCESS_ENERGY_FJ_PER_BIT,
            );
        let dram = traffic.dram_total() * oxbar_memory::dram::DramKind::Hbm.access_energy();

        // Digital backend: one adder op per accumulator write, one
        // activation op per output element.
        let adder = Energy::from_femtojoules(
            oxbar_electronics::accumulator::Accumulator::ENERGY_PER_BIT_OP_FJ
                * traffic.accumulator_sram_writes,
        );
        let activation_ops = traffic.output_sram_writes / f64::from(tech.precision_bits);
        let activation = Energy::from_femtojoules(
            oxbar_electronics::activation::ActivationUnit::ENERGY_PER_OP_FJ * activation_ops,
        );

        PowerBreakdown {
            laser,
            transmitters,
            receivers,
            trim_heaters,
            pcm_programming,
            sram,
            dram,
            digital: adder + activation,
        }
    }

    /// Average chip power for a timed report: total batch energy over
    /// batch wall-clock time.
    #[must_use]
    pub fn average_power(&self, perf: &PerfReport) -> Power {
        self.evaluate(perf).total() / perf.batch_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChipConfig, CoreCount};
    use crate::perf::PerfModel;
    use oxbar_nn::zoo::resnet50_v1_5;

    fn breakdown(cfg: ChipConfig) -> (PerfReport, PowerBreakdown) {
        let perf = PerfModel::new(cfg.clone()).evaluate(&resnet50_v1_5());
        let power = PowerModel::new(cfg).evaluate(&perf);
        (perf, power)
    }

    #[test]
    fn total_power_in_paper_band() {
        let cfg = ChipConfig::paper_optimal();
        let (perf, power) = breakdown(cfg.clone());
        let watts = PowerModel::new(cfg).average_power(&perf).as_watts();
        // Paper reports 30 W; our principled counting lands the same order
        // (see EXPERIMENTS.md for the delta discussion).
        assert!(watts > 8.0 && watts < 60.0, "chip power {watts} W");
        assert!(power.total().as_millijoules() > 0.0);
    }

    #[test]
    fn ips_per_watt_invariant_across_core_count() {
        // §VI.A.1: dual core raises IPS and power together; IPS/W is fixed.
        let net = resnet50_v1_5();
        let mut ratios = Vec::new();
        for cores in [CoreCount::Single, CoreCount::Dual] {
            let cfg = ChipConfig::paper_optimal().with_batch(4).with_cores(cores);
            let perf = PerfModel::new(cfg.clone()).evaluate(&net);
            let energy = PowerModel::new(cfg).evaluate(&perf).total();
            ratios.push(perf.spec.batch as f64 / energy.as_joules());
        }
        assert!(
            (ratios[0] - ratios[1]).abs() / ratios[0] < 1e-9,
            "IPS/W differs: {ratios:?}"
        );
    }

    #[test]
    fn dual_core_draws_more_average_power() {
        let net = resnet50_v1_5();
        let single_cfg = ChipConfig::paper_optimal()
            .with_batch(4)
            .with_cores(CoreCount::Single);
        let dual_cfg = ChipConfig::paper_optimal()
            .with_batch(4)
            .with_cores(CoreCount::Dual);
        let single_perf = PerfModel::new(single_cfg.clone()).evaluate(&net);
        let dual_perf = PerfModel::new(dual_cfg.clone()).evaluate(&net);
        let p_single = PowerModel::new(single_cfg).average_power(&single_perf);
        let p_dual = PowerModel::new(dual_cfg).average_power(&dual_perf);
        assert!(p_dual > p_single);
    }

    #[test]
    fn laser_power_grows_with_array() {
        let small = PowerModel::new(ChipConfig::paper_optimal().with_array(32, 32));
        let large = PowerModel::new(ChipConfig::paper_optimal().with_array(256, 256));
        assert!(
            large.laser().optical_power().as_watts() > small.laser().optical_power().as_watts()
        );
    }

    #[test]
    fn receivers_dominate_transceiver_energy() {
        let (_, power) = breakdown(ChipConfig::paper_optimal());
        assert!(power.receivers > power.transmitters);
    }

    #[test]
    fn memory_components_are_significant() {
        let (_, power) = breakdown(ChipConfig::paper_optimal());
        let total = power.total().as_joules();
        let memory = (power.sram + power.dram).as_joules();
        assert!(memory / total > 0.15, "memory share {}", memory / total);
    }

    #[test]
    fn entries_sum_to_total() {
        let (_, power) = breakdown(ChipConfig::paper_optimal());
        let sum: Energy = power.entries().into_iter().map(|(_, e)| e).sum();
        assert!((sum.as_joules() - power.total().as_joules()).abs() < 1e-15);
    }
}
