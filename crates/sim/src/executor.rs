//! Whole-network execution through the device chain.

use crate::arena::ExecArena;
use crate::config::{tile_seed, SimConfig};
use crate::fault::{ExecError, InjectedFault};
use crate::snapshot::{ChipSnapshot, TileSnapshot};
use crate::tile::{run_tile_with, CompiledTile, MvmEngine, TileDrive};
use oxbar_core::dse::parallel_map;
use oxbar_dataflow::tiles::{TileGeometry, WeightTiles};
use oxbar_dataflow::FoldPlan;
use oxbar_electronics::accumulator::Accumulator;
use oxbar_nn::reference::{
    activate, pool_exact, requantize, FilterBank, Tensor3, UnsupportedLayer,
};
use oxbar_nn::{Conv2d, Layer, Network, TensorShape};
use oxbar_pcm::drift::DriftModel;
use oxbar_pcm::ProgramReport;
use oxbar_units::{Energy, Time};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Aggregated device statistics for one crossbar-mapped layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Fold tiles executed.
    pub tiles: usize,
    /// PCM cells written across all tiles.
    pub cells_programmed: usize,
    /// Total PCM programming energy.
    pub program_energy: Energy,
    /// Total PCM programming time (tiles programmed back to back).
    pub program_time: Time,
    /// Digital partial-sum accumulation operations.
    pub accumulator_ops: u64,
    /// Digital accumulation energy.
    pub accumulator_energy: Energy,
}

impl LayerStats {
    fn absorb(&mut self, program: &ProgramReport) {
        self.tiles += 1;
        self.cells_programmed += program.cells_programmed;
        self.program_energy += program.energy;
        self.program_time += program.time;
    }
}

/// One executed layer: its post-processing output and device statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerExecution {
    /// Layer name.
    pub name: String,
    /// Requantization shift applied after the layer (0 for pools).
    pub shift: u32,
    /// The layer's output tensor (after activation and requantization).
    pub output: Tensor3,
    /// Device statistics; `None` for digital layers (pooling).
    pub stats: Option<LayerStats>,
}

/// A completed device-level forward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceForward {
    /// The network's final output tensor.
    pub output: Tensor3,
    /// Per-layer records in execution order.
    pub layers: Vec<LayerExecution>,
}

/// Executes whole quantized networks through the physical device chain:
/// fold/tile planning → PCM programming → field-level photonic MVM →
/// TIA/ADC readout → digital accumulation, pooling, and requantization.
///
/// In [`SimConfig::ideal`] mode the result is bit-for-bit identical to
/// [`oxbar_nn::reference::Executor`]; with noise enabled the deviation is
/// what the fidelity report quantifies.
///
/// # Examples
///
/// ```
/// use oxbar_nn::synthetic;
/// use oxbar_nn::zoo::lenet5;
/// use oxbar_sim::{DeviceExecutor, SimConfig};
///
/// let net = lenet5();
/// let input = synthetic::activations(net.input(), 6, 1);
/// let filters = synthetic::filter_banks(&net, 6, 2);
/// let exec = DeviceExecutor::new(SimConfig::ideal(128, 128));
/// let forward = exec.forward(&net, &input, &filters).unwrap();
/// assert_eq!(forward.output.shape().elements(), 10);
/// ```
#[derive(Debug)]
pub struct DeviceExecutor {
    config: SimConfig,
    engine: MvmEngine,
    /// Weight-stationary cache of programmed + compiled tiles, keyed by
    /// `(layer index, tile index)` and validated against the tile's exact
    /// weights on every hit. Mirrors the hardware: a programmed PCM tile
    /// serves many pixel batches and images without reprogramming. Entries
    /// are deterministic functions of `(config, seed, layer, tile,
    /// weights)`, so caching never changes results — only work.
    cache: Mutex<TileCache>,
    /// Signaled whenever an in-flight tile compile finishes, waking any
    /// worker blocked on the same key in [`Self::compiled_tile`].
    compile_done: Condvar,
    /// Cells of compiled state the cache may hold.
    cache_budget: usize,
    /// Pool of reusable execution arenas: checked out per tile job (and
    /// once per layer for accumulation), returned after the layer's
    /// partials are accumulated. Arenas carry scratch space only, never
    /// results, so pooling cannot change outputs — it removes the heap
    /// allocator from the warm serving path.
    arenas: Mutex<Vec<ExecArena>>,
    /// Injected fault state (see [`crate::fault`]). Faults gate *forward
    /// execution* only: a killed chip's non-volatile programmed state is
    /// still snapshot-readable, which is what recovery relies on.
    fault: Mutex<FaultState>,
    /// The executor's virtual clock, in scheduler dispatch ticks. Serving
    /// engines advance it at round boundaries (single-threaded, from the
    /// global dispatch counter — never wall clock), which makes tile age,
    /// drifted readouts, and recalibration decisions deterministic
    /// functions of the workload.
    clock: AtomicU64,
}

/// The executor's current injected-fault condition.
#[derive(Debug, Default)]
struct FaultState {
    /// Control plane down: every `try_forward` returns
    /// [`ExecError::ChipFailed`].
    killed: bool,
    /// Drift-degraded: execution still succeeds; schedulers read this
    /// through [`DeviceExecutor::is_degraded`].
    degraded: bool,
    /// Armed one-shot transient `(layer, tile)`: consumed by the next
    /// `try_forward`, which fails once with [`ExecError::TileFault`].
    transient: Option<(usize, usize)>,
}

/// Cells of compiled tile state the cache may hold (bounds memory on
/// networks whose layers are far larger than the reuse window).
const TILE_CACHE_CELL_BUDGET: usize = 4_000_000;

/// Adder width of the digital partial-sum accumulator (bits).
const ACCUMULATOR_BITS: u8 = 48;

/// Seed-index base for dynamic (uncached) MVM stages: a dynamic stage `s`
/// seeds its tiles as layer `DYNAMIC_STAGE_BASE + s`, far above any real
/// network's layer count, so dynamic-path device noise can never collide
/// with a static layer's per-tile noise streams.
const DYNAMIC_STAGE_BASE: usize = 1 << 20;

/// A snapshot of the weight-stationary tile cache's performance counters.
///
/// Hits are executions served from an already programmed + compiled tile
/// (the weight-stationary fast path); misses had to program the PCM array
/// and compile the transfer matrix. Counters accumulate from executor
/// creation (or the last [`DeviceExecutor::clear_cache`], which resets
/// occupancy but *not* the counters — eviction under a serving budget is
/// itself a cache event worth measuring).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Tile executions served from the cache.
    pub hits: u64,
    /// Tile executions that had to program + compile.
    pub misses: u64,
    /// Compiled tiles currently held.
    pub entries: usize,
    /// Crossbar cells currently held (`Σ rows × physical cols`).
    pub cells: usize,
    /// The cell budget the cache admits entries against.
    pub budget: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 for an unused cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident tile's programming age and projected drift error, as
/// reported by [`DeviceExecutor::tile_ages`] — the observability surface a
/// serving scheduler ranks recalibration candidates with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileDriftInfo {
    /// Layer index of the tile.
    pub layer: usize,
    /// Tile index within the layer.
    pub tile: usize,
    /// WDM wavelength channel of the cached state.
    pub channel: usize,
    /// Dispatch ticks since the tile's PCM array was last programmed.
    pub age_ticks: u64,
    /// Worst-case transmission slip (full-scale fraction) at this age,
    /// relative to the baseline programming, across the device's levels.
    pub projected_slip: f64,
}

/// Rebuilds a geometry-less [`oxbar_dataflow::tiles::WeightTile`] from
/// stored column-major codes
/// — only the codes matter for recompilation (snapshot restore and
/// in-place recalibration both re-derive compiled state this way).
fn weight_tile_from_codes(values: &[i8], rows: usize) -> oxbar_dataflow::tiles::WeightTile {
    let cols = values.len().checked_div(rows).unwrap_or(0);
    let values: Vec<Vec<i8>> = (0..rows)
        .map(|r| (0..cols).map(|c| values[c * rows + r]).collect())
        .collect();
    oxbar_dataflow::tiles::WeightTile {
        group: 0,
        row_fold: 0,
        col_fold: 0,
        row_offset: 0,
        col_offset: 0,
        values,
    }
}

#[derive(Debug, Default)]
struct TileCache {
    /// Keyed by `(layer index, tile index, wavelength channel)`; the
    /// single-wavelength serving path lives entirely on channel 0.
    tiles: HashMap<(usize, usize, usize), Arc<CompiledTile>>,
    /// Keys some thread is compiling right now. Concurrent executions of
    /// the same network single-flight their compiles through this set:
    /// the first thread to miss programs the tile, everyone else waits on
    /// [`DeviceExecutor::compile_done`] and then takes the hit path. One
    /// missing tile is exactly one miss however many workers want it.
    in_flight: HashSet<(usize, usize, usize)>,
    /// Programming-age records for resident tiles, maintained in lockstep
    /// with `tiles` (only populated while aging is active). A tile whose
    /// `derived_age` lags the clock re-derives its drifted transmissions
    /// (same seed stream, later elapsed) before the next execution.
    ages: HashMap<(usize, usize, usize), TileAge>,
    cells: usize,
    hits: u64,
    misses: u64,
}

/// Programming age of one resident tile, in virtual dispatch ticks.
#[derive(Debug, Clone, Copy)]
struct TileAge {
    /// Clock value when the tile's PCM array was last (re)programmed.
    programmed_at: u64,
    /// The age the cached compiled state's transmissions were derived at;
    /// lags `clock − programmed_at` until the next aged re-derivation.
    derived_age: u64,
}

impl Clone for DeviceExecutor {
    /// Clones the configuration; the clone starts with an empty tile
    /// cache (entries are re-derived on demand, identically).
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            engine: self.engine,
            cache: Mutex::new(TileCache::default()),
            compile_done: Condvar::new(),
            cache_budget: self.cache_budget,
            arenas: Mutex::new(Vec::new()),
            // A clone is fresh hardware: injected faults do not follow it.
            fault: Mutex::new(FaultState::default()),
            clock: AtomicU64::new(0),
        }
    }
}

impl DeviceExecutor {
    /// Creates an executor for the given configuration on the default
    /// (compiled transfer-matrix) MVM engine.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Self {
            config,
            engine: MvmEngine::default(),
            cache: Mutex::new(TileCache::default()),
            compile_done: Condvar::new(),
            cache_budget: TILE_CACHE_CELL_BUDGET,
            arenas: Mutex::new(Vec::new()),
            fault: Mutex::new(FaultState::default()),
            clock: AtomicU64::new(0),
        }
    }

    /// Applies one injected fault (see [`crate::fault`]): `Kill` refuses
    /// all further forward execution, `TileTransient` arms a one-shot
    /// failure consumed by the next [`Self::try_forward`], and `Drift`
    /// marks the chip degraded without changing results.
    ///
    /// # Panics
    ///
    /// Panics if the fault mutex was poisoned.
    pub fn inject_fault(&self, fault: InjectedFault) {
        let mut state = self.fault.lock().expect("fault state");
        match fault {
            InjectedFault::Kill => state.killed = true,
            InjectedFault::TileTransient { layer, tile } => {
                state.transient = Some((layer, tile));
            }
            InjectedFault::Drift => state.degraded = true,
        }
    }

    /// Whether the chip's control plane has been killed (every
    /// [`Self::try_forward`] returns [`ExecError::ChipFailed`]). The
    /// programmed array state stays snapshot-readable regardless.
    ///
    /// # Panics
    ///
    /// Panics if the fault mutex was poisoned.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.fault.lock().expect("fault state").killed
    }

    /// Whether the chip is marked drift-degraded (results unchanged;
    /// schedulers should prefer healthy replicas).
    ///
    /// # Panics
    ///
    /// Panics if the fault mutex was poisoned.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.fault.lock().expect("fault state").degraded
    }

    /// [`Self::forward`] with the injected-fault surface: a killed chip
    /// returns [`ExecError::ChipFailed`] (never executes), an armed
    /// one-shot transient is consumed and returned as
    /// [`ExecError::TileFault`] (an immediate retry succeeds,
    /// byte-identically), and model-level refusals surface as
    /// [`ExecError::Unsupported`].
    ///
    /// # Errors
    ///
    /// See above — every failure mode is a structured [`ExecError`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::forward`] (mismatched
    /// filters or input), and if the fault mutex was poisoned.
    pub fn try_forward(
        &self,
        network: &Network,
        input: &Tensor3,
        filters: &[FilterBank],
    ) -> Result<DeviceForward, ExecError> {
        self.fault_gate()?;
        self.forward(network, input, filters)
            .map_err(ExecError::Unsupported)
    }

    /// The injected-fault gate every fallible execution entry point runs
    /// through: a killed chip refuses with [`ExecError::ChipFailed`], and
    /// an armed one-shot transient is consumed and surfaced as
    /// [`ExecError::TileFault`] (an immediate retry succeeds). Exposed so
    /// multi-MVM executions (the autoregressive transformer step in
    /// `crate::llm`) can take the same fault surface between their inner
    /// MVMs, not just at step entry.
    ///
    /// # Errors
    ///
    /// Returns the injected fault, if any is active.
    ///
    /// # Panics
    ///
    /// Panics if the fault mutex was poisoned.
    pub fn fault_gate(&self) -> Result<(), ExecError> {
        let mut state = self.fault.lock().expect("fault state");
        if state.killed {
            return Err(ExecError::ChipFailed);
        }
        if let Some((layer, tile)) = state.transient.take() {
            return Err(ExecError::TileFault { layer, tile });
        }
        Ok(())
    }

    /// Checks one reusable arena out of the pool (or starts a fresh one).
    fn checkout_arena(&self) -> ExecArena {
        self.arenas
            .lock()
            .expect("arena pool")
            .pop()
            .unwrap_or_default()
    }

    /// Returns arenas to the pool for the next round.
    fn return_arenas(&self, arenas: impl IntoIterator<Item = ExecArena>) {
        self.arenas.lock().expect("arena pool").extend(arenas);
    }

    /// The compiled state for one tile: a validated cache hit (a straight
    /// slice compare against the filter bank, no tile materialization),
    /// or a fresh compile (inserted while the cell budget allows).
    ///
    /// Compiles are **single-flight**: when several workers execute the
    /// same network concurrently and miss on the same tile, exactly one
    /// programs it while the rest block on [`Self::compile_done`] and
    /// then hit — so the hit/miss counters are a deterministic function
    /// of the workload, not of thread timing, and no compile ever runs
    /// twice. (A zero-budget cache cannot retain the compiled entry; its
    /// waiters re-miss by design, matching the serial cold path.)
    fn compiled_tile(
        &self,
        layer_index: usize,
        tile_index: usize,
        tiles: &WeightTiles<'_>,
        geom: &TileGeometry,
        seed: u64,
    ) -> Arc<CompiledTile> {
        let key = (layer_index, tile_index, 0);
        let aging = self.aging_active();
        let clock = self.clock.load(Ordering::Relaxed);
        // `None` compiles a fresh program at the baseline elapsed;
        // `Some(age)` re-derives a resident tile's drifted transmissions
        // at its current age (same codes, same seed streams).
        let mut rederive_age: Option<u64> = None;
        {
            let mut cache = self.cache.lock().expect("tile cache");
            loop {
                if cache.in_flight.contains(&key) {
                    cache = self.compile_done.wait(cache).expect("tile cache");
                    continue;
                }
                if let Some(hit) = cache.tiles.get(&key) {
                    if hit.matches_bank(tiles, geom) {
                        // The INT6 codes cannot reveal a stale drift
                        // derivation — the array state is unchanged — so
                        // staleness is tracked explicitly per key. Age is
                        // a pure function of the round clock, keeping the
                        // re-derivation (and the counters) byte-identical
                        // across worker counts.
                        let current_age = cache
                            .ages
                            .get(&key)
                            .map(|a| clock.saturating_sub(a.programmed_at));
                        let stale = aging
                            && cache
                                .ages
                                .get(&key)
                                .zip(current_age)
                                .is_some_and(|(a, current)| a.derived_age != current);
                        if !stale {
                            let hit = Arc::clone(hit);
                            cache.hits += 1;
                            return hit;
                        }
                        rederive_age = current_age;
                    }
                }
                cache.in_flight.insert(key);
                cache.misses += 1;
                break;
            }
        }
        let tile = tiles.tile(tile_index);
        let elapsed = self.aged_elapsed(rederive_age.unwrap_or(0));
        let compiled = Arc::new(CompiledTile::compile_channel_at(
            &tile,
            &self.config,
            seed,
            0,
            elapsed,
        ));
        let cells = compiled.cells();
        let mut cache = self.cache.lock().expect("tile cache");
        cache.in_flight.remove(&key);
        if let Some(stale) = cache.tiles.remove(&key) {
            cache.cells -= stale.cells();
        }
        cache.ages.remove(&key);
        if cache.cells + cells <= self.cache_budget {
            cache.tiles.insert(key, Arc::clone(&compiled));
            cache.cells += cells;
            if aging {
                cache.ages.insert(
                    key,
                    match rederive_age {
                        Some(age) => TileAge {
                            programmed_at: clock.saturating_sub(age),
                            derived_age: age,
                        },
                        None => TileAge {
                            programmed_at: clock,
                            derived_age: 0,
                        },
                    },
                );
            }
        }
        self.compile_done.notify_all();
        compiled
    }

    /// Overrides the weight-stationary cache's cell budget (the default is
    /// 4M cells). A budget of 0 disables caching entirely: every execution
    /// reprograms and recompiles, which is the "cold" serving baseline.
    #[must_use]
    pub fn with_cache_budget(mut self, cells: usize) -> Self {
        self.cache_budget = cells;
        self
    }

    /// A snapshot of the tile cache's counters and occupancy.
    ///
    /// Hit/miss counts are exact under serial *and* parallel execution:
    /// compiles are single-flight (see [`Self::prewarm`] and the tile
    /// path), so a missing tile is one miss however many workers race to
    /// it, and the counters are a deterministic function of the workload.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().expect("tile cache");
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            entries: cache.tiles.len(),
            cells: cache.cells,
            budget: self.cache_budget,
        }
    }

    /// Drops every cached tile (the next execution reprograms), keeping
    /// the hit/miss counters. This is the eviction primitive a serving
    /// layer uses to keep several executors under one global cell budget.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().expect("tile cache");
        cache.tiles.clear();
        cache.ages.clear();
        cache.cells = 0;
    }

    /// Whether tile aging is active: a drift exponent *and* a non-zero
    /// per-tick aging rate are both configured. When inactive, the clock,
    /// age records, and recalibration machinery are structurally inert —
    /// cache behavior, counters, and outputs are bit-identical to a
    /// build without them.
    fn aging_active(&self) -> bool {
        self.config.noise.drift_nu > 0.0 && self.config.noise.drift_tick.as_seconds() > 0.0
    }

    /// The physical drift elapsed for a tile `age` ticks old: the
    /// config's baseline `drift_elapsed` plus `age · drift_tick`.
    fn aged_elapsed(&self, age: u64) -> Time {
        Time::from_seconds(
            self.config.noise.drift_elapsed.as_seconds()
                + age as f64 * self.config.noise.drift_tick.as_seconds(),
        )
    }

    /// Advances the executor's virtual clock to `tick` (dispatch ticks;
    /// never rewinds). Serving engines call this at single-threaded round
    /// boundaries with the global dispatch counter, so tile ages — and
    /// everything derived from them — are deterministic functions of the
    /// workload, independent of wall clock and worker count.
    pub fn set_clock(&self, tick: u64) {
        self.clock.fetch_max(tick, Ordering::Relaxed);
    }

    /// The executor's current virtual clock, in dispatch ticks.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// The accuracy budget in dispatch ticks: the smallest analytic
    /// [`DriftModel::ticks_until_half_lsb`] across the device's
    /// programmable levels — a tile older than this may have slipped by
    /// half an LSB somewhere in its array, and a scheduler that
    /// recalibrates within it keeps every readout at fresh-program
    /// accuracy. `None` when the budget is unbounded (aging inactive, or
    /// no level can slip that far).
    #[must_use]
    pub fn drift_budget_ticks(&self) -> Option<u64> {
        if !self.aging_active() {
            return None;
        }
        let model = DriftModel::new(self.config.noise.drift_nu);
        let table = f64::from(self.config.table_max());
        let lsb = 1.0 / table;
        (0..=self.config.table_max())
            .filter_map(|code| {
                let mut cell = self.config.device();
                cell.set_crystalline_fraction(f64::from(code) / table);
                model.ticks_until_half_lsb(
                    cell,
                    lsb,
                    self.config.noise.drift_elapsed,
                    self.config.noise.drift_tick,
                )
            })
            .min()
    }

    /// Worst-case transmission slip (full-scale fraction) of a tile `age`
    /// ticks old, relative to its baseline programming: the largest
    /// drop across the device's programmable levels.
    fn projected_slip(&self, age: u64) -> f64 {
        let model = DriftModel::new(self.config.noise.drift_nu);
        let table = f64::from(self.config.table_max());
        let baseline = self.config.noise.drift_elapsed;
        let aged = self.aged_elapsed(age);
        (0..=self.config.table_max())
            .map(|code| {
                let mut cell = self.config.device();
                cell.set_crystalline_fraction(f64::from(code) / table);
                (model.transmission_after(cell, baseline) - model.transmission_after(cell, aged))
                    .max(0.0)
            })
            .fold(0.0, f64::max)
    }

    /// Per-tile programming ages and projected worst-case drift error for
    /// every resident tile, in `(layer, tile, channel)` order. Empty when
    /// aging is inactive.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn tile_ages(&self) -> Vec<TileDriftInfo> {
        if !self.aging_active() {
            return Vec::new();
        }
        let clock = self.clock.load(Ordering::Relaxed);
        let cache = self.cache.lock().expect("tile cache");
        let mut out: Vec<TileDriftInfo> = cache
            .ages
            .iter()
            .map(|(&(layer, tile, channel), age)| {
                let age_ticks = clock.saturating_sub(age.programmed_at);
                TileDriftInfo {
                    layer,
                    tile,
                    channel,
                    age_ticks,
                    projected_slip: self.projected_slip(age_ticks),
                }
            })
            .collect();
        out.sort_unstable_by_key(|info| (info.layer, info.tile, info.channel));
        out
    }

    /// Reprograms a resident tile's PCM array in place at the baseline
    /// drift elapsed, resetting its programming age. Every stochastic
    /// draw (programming variation, per-channel phase errors) is a pure
    /// function of the tile seed, so the recalibrated compiled state is
    /// **bit-exact to a fresh program** — readouts return to
    /// fresh-program accuracy. Counts one cache miss per reprogrammed
    /// channel state (recalibration is programming work, like a prewarm).
    /// Returns the number of channel states reprogrammed (0 when the tile
    /// is not resident).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn recalibrate_tile(&self, layer: usize, tile: usize) -> usize {
        let clock = self.clock.load(Ordering::Relaxed);
        let aging = self.aging_active();
        let mut cache = self.cache.lock().expect("tile cache");
        let mut keys: Vec<(usize, usize, usize)> = cache
            .tiles
            .keys()
            .filter(|&&(l, t, _)| l == layer && t == tile)
            .copied()
            .collect();
        keys.sort_unstable();
        let mut reprogrammed = 0;
        for key in keys {
            // A key mid-compile belongs to the thread compiling it; the
            // fresh compile it is producing is already at baseline age.
            if cache.in_flight.contains(&key) {
                continue;
            }
            let resident = &cache.tiles[&key];
            let weight_tile = weight_tile_from_codes(resident.values(), resident.value_rows());
            let seed = tile_seed(self.config.seed, layer, tile);
            let compiled = CompiledTile::compile_channel_at(
                &weight_tile,
                &self.config,
                seed,
                key.2,
                self.config.noise.drift_elapsed,
            );
            cache.tiles.insert(key, Arc::new(compiled));
            cache.misses += 1;
            if aging {
                cache.ages.insert(
                    key,
                    TileAge {
                        programmed_at: clock,
                        derived_age: 0,
                    },
                );
            }
            reprogrammed += 1;
        }
        reprogrammed
    }

    /// The oldest resident tile's programming age, in dispatch ticks.
    /// `None` when aging is inactive or nothing is resident — the cheap
    /// probe a drift health monitor polls every round without paying for
    /// the per-tile slip projections of [`Self::tile_ages`].
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn max_tile_age(&self) -> Option<u64> {
        if !self.aging_active() {
            return None;
        }
        let clock = self.clock.load(Ordering::Relaxed);
        let cache = self.cache.lock().expect("tile cache");
        cache
            .ages
            .values()
            .map(|age| clock.saturating_sub(age.programmed_at))
            .max()
    }

    /// The deterministic half of online recalibration: resets a resident
    /// tile's programming age to the current clock without touching its
    /// compiled state. The next readout of each channel re-derives the
    /// age-0 (baseline) transmissions lazily — bit-exact to
    /// [`Self::recalibrate_tile`] — so a scheduler can commit the
    /// decision at a single-threaded boundary and hand the reprogramming
    /// work ([`Self::rederive_tile`]) to a concurrent stage without the
    /// outcome depending on when (or whether) that stage runs first.
    /// Returns the number of channel states marked.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn mark_recalibrated(&self, layer: usize, tile: usize) -> usize {
        let clock = self.clock.load(Ordering::Relaxed);
        let mut cache = self.cache.lock().expect("tile cache");
        let keys: Vec<(usize, usize, usize)> = cache
            .ages
            .keys()
            .filter(|&&(l, t, _)| l == layer && t == tile)
            .copied()
            .collect();
        for key in &keys {
            if let Some(entry) = cache.ages.get_mut(key) {
                entry.programmed_at = clock;
            }
        }
        keys.len()
    }

    /// The work half of online recalibration: eagerly re-derives every
    /// resident channel state of a tile at its current age, exactly as
    /// the next readout would lazily. Compiles run single-flight against
    /// the execution path (a key mid-compile or already current is
    /// skipped), so a stale key is re-derived exactly once — eagerly here
    /// or lazily at first read — and the cache counters stay a
    /// deterministic function of the workload. Returns the number of
    /// channel states re-derived.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn rederive_tile(&self, layer: usize, tile: usize) -> usize {
        if !self.aging_active() {
            return 0;
        }
        let clock = self.clock.load(Ordering::Relaxed);
        let mut rederived = 0;
        let mut cache = self.cache.lock().expect("tile cache");
        let mut keys: Vec<(usize, usize, usize)> = cache
            .tiles
            .keys()
            .filter(|&&(l, t, _)| l == layer && t == tile)
            .copied()
            .collect();
        keys.sort_unstable();
        for key in keys {
            if cache.in_flight.contains(&key) {
                continue;
            }
            let Some(age) = cache
                .ages
                .get(&key)
                .map(|a| clock.saturating_sub(a.programmed_at))
            else {
                continue;
            };
            if cache.ages[&key].derived_age == age {
                continue;
            }
            let resident = Arc::clone(&cache.tiles[&key]);
            cache.in_flight.insert(key);
            drop(cache);
            let weight_tile = weight_tile_from_codes(resident.values(), resident.value_rows());
            let seed = tile_seed(self.config.seed, layer, tile);
            let compiled = CompiledTile::compile_channel_at(
                &weight_tile,
                &self.config,
                seed,
                key.2,
                self.aged_elapsed(age),
            );
            cache = self.cache.lock().expect("tile cache");
            cache.in_flight.remove(&key);
            // Re-check residency: an eviction may have raced the compile
            // (never in the serving engine, which re-derives only at
            // stage points ordered against budget enforcement).
            if let Some(slot) = cache.tiles.get_mut(&key) {
                *slot = Arc::new(compiled);
                cache.misses += 1;
                if let Some(entry) = cache.ages.get_mut(&key) {
                    entry.derived_age = age;
                }
                rederived += 1;
            }
            self.compile_done.notify_all();
        }
        rederived
    }

    /// Clears a drift-degraded mark (see [`InjectedFault::Drift`]) —
    /// the healing half of the fault surface, taken after recalibration
    /// brings every resident tile back under the accuracy budget.
    ///
    /// # Panics
    ///
    /// Panics if the fault mutex was poisoned.
    pub fn clear_drift(&self) {
        self.fault.lock().expect("fault state").degraded = false;
    }

    /// Overrides the crossbar MVM engine (e.g. [`MvmEngine::FieldWalk`]
    /// to run every pixel through the field-propagation oracle).
    #[must_use]
    pub fn with_engine(mut self, engine: MvmEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The MVM engine in use.
    #[must_use]
    pub fn engine(&self) -> MvmEngine {
        self.engine
    }

    /// Runs a forward pass with per-conv-layer filter banks (indexed in
    /// [`Network::conv_like_layers`] order), like the reference executor.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedLayer`] for networks with residual `Add`
    /// layers (the flattened graph carries no skip wiring).
    ///
    /// # Panics
    ///
    /// Panics if `filters` does not cover every conv-like layer or the
    /// input does not match the network/activation range.
    pub fn forward(
        &self,
        network: &Network,
        input: &Tensor3,
        filters: &[FilterBank],
    ) -> Result<DeviceForward, UnsupportedLayer> {
        let mut stats: Vec<LayerStats> = Vec::new();
        let walked = walk_network(
            network,
            input,
            self.config.activation_bits,
            |layer_idx, conv_idx, conv, conv_input| {
                assert!(
                    conv_idx < filters.len(),
                    "missing filter bank for `{}`",
                    conv.name
                );
                let out = conv.output_shape();
                let pixel_ids: Vec<usize> = (0..out.h * out.w).collect();
                // With every pixel present in order, the flat slot-major
                // values ARE the output tensor's data.
                let (values, layer_stats) = self.conv_pixels_flat(
                    conv,
                    conv_input,
                    &filters[conv_idx],
                    layer_idx,
                    &pixel_ids,
                );
                stats.push(layer_stats);
                Tensor3::new(out, values)
            },
        )?;
        let mut stats = stats.into_iter();
        let layers: Vec<LayerExecution> = walked
            .into_iter()
            .map(|w| LayerExecution {
                stats: if w.is_mac { stats.next() } else { None },
                name: w.name,
                shift: w.shift,
                output: w.output,
            })
            .collect();
        Ok(DeviceForward {
            output: layers
                .last()
                .map_or_else(|| input.clone(), |l| l.output.clone()),
            layers,
        })
    }

    /// Runs one conv-like layer at device level for a subset of output
    /// pixels, returning the raw (pre-activation, pre-requantization)
    /// accumulator values `[pixel_slot][out_channel]` plus device stats.
    ///
    /// This is the entry point for layer-probing on networks too large to
    /// execute end to end (e.g. residual nets): sampled pixels of a single
    /// layer are validated against [`oxbar_nn::reference::conv2d_exact`].
    ///
    /// # Panics
    ///
    /// Panics if the input does not match the conv spec, a pixel id is out
    /// of range, or activations exceed the configured bit range.
    #[must_use]
    pub fn conv_pixels(
        &self,
        conv: &Conv2d,
        input: &Tensor3,
        bank: &FilterBank,
        layer_index: usize,
        pixel_ids: &[usize],
    ) -> (Vec<Vec<i64>>, LayerStats) {
        let (flat, stats) = self.conv_pixels_flat(conv, input, bank, layer_index, pixel_ids);
        (
            flat.chunks_exact(conv.out_c).map(<[i64]>::to_vec).collect(),
            stats,
        )
    }

    /// [`Self::conv_pixels`] returning the accumulator values as one flat
    /// slot-major matrix (`pixel_slots × out_channels`) — the
    /// allocation-lean variant the forward pass and the serving engine
    /// run on.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Self::conv_pixels`].
    #[must_use]
    pub fn conv_pixels_flat(
        &self,
        conv: &Conv2d,
        input: &Tensor3,
        bank: &FilterBank,
        layer_index: usize,
        pixel_ids: &[usize],
    ) -> (Vec<i64>, LayerStats) {
        assert_eq!(input.shape(), conv.input, "input shape mismatch");
        bank.check(conv);
        assert!(
            input.max_abs() <= self.config.v_max(),
            "activations exceed the {}-bit range",
            self.config.activation_bits
        );
        let out = conv.output_shape();
        for &pid in pixel_ids {
            assert!(pid < out.h * out.w, "pixel id {pid} out of range");
        }
        let plan = FoldPlan::plan(
            conv,
            self.config.array_rows,
            self.config.array_cols,
            self.config.mapping.columns_per_output(),
        );
        let has_negative = input.data().iter().any(|&v| v < 0);
        let tiles = WeightTiles::new(conv, &bank.weights, &plan);
        let geoms: Vec<TileGeometry> = tiles.geometries().collect();
        // Each tile job checks an arena out of the pool, builds its
        // im2col drive into the arena's reusable buffers, and executes
        // into the arena's partials matrix. Tiles are handled by geometry
        // — weights are only materialized on a cache miss — so a warm
        // round touches the heap only for the job list itself.
        let outcomes: Vec<(ExecArena, ProgramReport)> =
            parallel_map(&geoms, self.config.threads, |tile_index, geom| {
                let seed = tile_seed(self.config.seed, layer_index, tile_index);
                let mut arena = self.checkout_arena();
                let mut drive = std::mem::replace(&mut arena.drive, TileDrive::empty());
                let mut taps = std::mem::take(&mut arena.taps);
                build_drive_into(
                    geom,
                    conv,
                    input,
                    pixel_ids,
                    has_negative,
                    &mut taps,
                    &mut drive,
                );
                let program = match self.engine {
                    // The oracle engine stays cache-free: it is the
                    // baseline the compiled path is benchmarked and
                    // validated against.
                    MvmEngine::FieldWalk => {
                        let tile = tiles.tile(tile_index);
                        let outcome =
                            run_tile_with(&tile, &drive, &self.config, seed, MvmEngine::FieldWalk);
                        arena.partials.clear();
                        for per_col in &outcome.partials {
                            arena.partials.extend_from_slice(per_col);
                        }
                        outcome.program
                    }
                    MvmEngine::Compiled | MvmEngine::CompiledNoCache => {
                        let compiled =
                            self.compiled_tile(layer_index, tile_index, &tiles, geom, seed);
                        compiled.execute_into(
                            &drive,
                            &self.config,
                            self.engine == MvmEngine::Compiled,
                            &mut arena,
                        );
                        compiled.program()
                    }
                };
                arena.drive = drive;
                arena.taps = taps;
                (arena, program)
            });

        // Per-pixel partial sums reduce into raw i64 lanes and saturate
        // once at extraction — identical to the per-add saturating
        // `Accumulator` for any network whose running sums stay inside
        // the 48-bit window, which the INT6 pipeline guarantees by
        // construction (|sum| ≤ filter_rows · v_max · Q « 2⁴⁷). The
        // operation count and energy are the per-add figures.
        let mut acc_arena = self.checkout_arena();
        let lane_count = pixel_ids.len() * conv.out_c;
        acc_arena.lanes.clear();
        acc_arena.lanes.resize(lane_count, 0);
        let out_per_group = conv.out_c_per_group();
        let mut acc_ops: u64 = 0;
        for (geom, (arena, _)) in geoms.iter().zip(&outcomes) {
            let base = geom.group * out_per_group + geom.col_offset;
            for (slot, per_col) in arena.partials.chunks_exact(geom.cols).enumerate() {
                let lanes = &mut acc_arena.lanes[slot * conv.out_c + base..][..geom.cols];
                for (lane, &v) in lanes.iter_mut().zip(per_col) {
                    *lane += v;
                }
            }
            acc_ops += arena.partials.len() as u64;
        }
        let mut stats = LayerStats {
            tiles: 0,
            cells_programmed: 0,
            program_energy: Energy::ZERO,
            program_time: Time::ZERO,
            accumulator_ops: acc_ops,
            accumulator_energy: Accumulator::energy_for(ACCUMULATOR_BITS, acc_ops),
        };
        for (_, program) in &outcomes {
            stats.absorb(program);
        }
        let limit = Accumulator::saturation_limit(ACCUMULATOR_BITS);
        let mut values = vec![0i64; lane_count];
        for (v, &lane) in values.iter_mut().zip(&acc_arena.lanes) {
            *v = lane.clamp(-limit - 1, limit);
        }
        self.return_arenas(outcomes.into_iter().map(|(arena, _)| arena));
        self.return_arenas([acc_arena]);
        (values, stats)
    }

    /// One **uncached** dynamic MVM: `rows` (signed weight codes, one row
    /// per output) times `drive`, folded through the same weight-stationary
    /// tile geometry a conv layer uses — except every tile is programmed,
    /// used once, and discarded. This is the `QKᵀ`/`AV` path of attention,
    /// whose "weights" are the KV cache and change on every token, so the
    /// weight-stationary tile cache (and its hit/miss counters) is never
    /// touched. `stage` seeds the per-tile device noise deterministically,
    /// in an index range disjoint from every static layer's.
    ///
    /// # Panics
    ///
    /// Panics on empty or ragged `rows`, a `drive` length mismatch, drive
    /// values outside the activation range, or weight codes outside the
    /// signed code range (caught during tile programming).
    #[must_use]
    pub fn dynamic_mv(&self, stage: usize, rows: &[Vec<i8>], drive: &[i64]) -> Vec<i64> {
        assert!(
            !rows.is_empty() && !drive.is_empty(),
            "dynamic MVM needs at least one row and one drive value"
        );
        for (index, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), drive.len(), "row {index} length mismatch");
        }
        assert!(
            drive.iter().map(|v| v.abs()).max().unwrap_or(0) <= self.config.v_max(),
            "drive exceeds the {}-bit range",
            self.config.activation_bits
        );
        let conv = oxbar_dataflow::matmul::matmul_conv("dynamic_mv", drive.len(), rows.len());
        let plan = FoldPlan::plan(
            &conv,
            self.config.array_rows,
            self.config.array_cols,
            self.config.mapping.columns_per_output(),
        );
        let weights = rows.to_vec();
        let tiles = WeightTiles::new(&conv, &weights, &plan);
        let has_negative = drive.iter().any(|&v| v < 0);
        let layer_index = DYNAMIC_STAGE_BASE + stage;
        let engine = match self.engine {
            // Both compiled variants behave identically here: nothing is
            // ever inserted into the cache on the dynamic path.
            MvmEngine::Compiled | MvmEngine::CompiledNoCache => MvmEngine::CompiledNoCache,
            MvmEngine::FieldWalk => MvmEngine::FieldWalk,
        };
        let mut lanes = vec![0i64; rows.len()];
        for (tile_index, geom) in tiles.geometries().enumerate() {
            let seed = tile_seed(self.config.seed, layer_index, tile_index);
            let window = &drive[geom.row_offset..geom.row_offset + geom.rows];
            let positive: Vec<u8> = window.iter().map(|&v| v.max(0) as u8).collect();
            let negative: Option<Vec<u8>> =
                has_negative.then(|| window.iter().map(|&v| (-v).max(0) as u8).collect());
            let tile_drive = TileDrive::new(geom.rows, positive, negative);
            let outcome = run_tile_with(
                &tiles.tile(tile_index),
                &tile_drive,
                &self.config,
                seed,
                engine,
            );
            let base = geom.group * conv.out_c_per_group() + geom.col_offset;
            for (lane, &v) in lanes[base..][..geom.cols]
                .iter_mut()
                .zip(&outcome.partials[0])
            {
                *lane += v;
            }
        }
        let limit = Accumulator::saturation_limit(ACCUMULATOR_BITS);
        for lane in &mut lanes {
            *lane = (*lane).clamp(-limit - 1, limit);
        }
        lanes
    }

    /// The full weight-stationary footprint of a model on this
    /// executor's array geometry, in crossbar cells — what
    /// [`Self::prewarm`] makes resident. Computed from the fold plans
    /// alone (no weights touched), so serving schedulers can budget-check
    /// a prewarm before spending any programming work.
    #[must_use]
    pub fn model_footprint_cells(&self, network: &Network) -> usize {
        let cpo = self.config.mapping.columns_per_output();
        network
            .layers()
            .iter()
            .filter_map(|layer| {
                let conv = match layer {
                    Layer::Conv2d(c) => c.clone(),
                    Layer::Dense(d) => d.as_conv(),
                    _ => return None,
                };
                let plan =
                    FoldPlan::plan(&conv, self.config.array_rows, self.config.array_cols, cpo);
                Some(
                    (0..plan.total_folds())
                        .map(|index| {
                            let geom = oxbar_dataflow::tiles::tile_geometry(&conv, &plan, index);
                            geom.rows * geom.cols * cpo
                        })
                        .sum::<usize>(),
                )
            })
            .sum()
    }

    /// Eagerly programs and compiles a model's full tile set into the
    /// weight-stationary cache — the programming work a cold forward pass
    /// would otherwise pay on its blocking path. Missing tiles compile in
    /// parallel across the config's worker threads
    /// ([`oxbar_core::dse::parallel_map`]; per-tile seeds make this
    /// determinism-safe) and insert in tile order under the same cell
    /// budget as the lazy path, so a prewarmed executor holds exactly the
    /// cache state a forward pass would have built. Returns the number of
    /// tiles compiled (zero when the model is already resident).
    ///
    /// Serving engines call this for the *next* model in the queue while
    /// the current batch executes, which moves PCM programming off the
    /// serving critical path entirely.
    ///
    /// # Panics
    ///
    /// Panics if `filters` does not cover every conv-like layer.
    pub fn prewarm(&self, network: &Network, filters: &[oxbar_nn::reference::FilterBank]) -> usize {
        let mut compiled_total = 0;
        let mut conv_idx = 0;
        for (layer_idx, layer) in network.layers().iter().enumerate() {
            let dense_conv;
            let conv: &Conv2d = match layer {
                Layer::Conv2d(c) => c,
                Layer::Dense(d) => {
                    dense_conv = d.as_conv();
                    &dense_conv
                }
                _ => continue,
            };
            assert!(
                conv_idx < filters.len(),
                "missing filter bank for `{}`",
                conv.name
            );
            let plan = FoldPlan::plan(
                conv,
                self.config.array_rows,
                self.config.array_cols,
                self.config.mapping.columns_per_output(),
            );
            let tiles = WeightTiles::new(conv, &filters[conv_idx].weights, &plan);
            let geoms: Vec<(usize, TileGeometry)> = tiles.geometries().enumerate().collect();
            conv_idx += 1;
            // Snapshot which tiles are missing (or stale) under the lock,
            // compile them in parallel, then insert in tile order with
            // the lazy path's budget rule.
            let missing: Vec<&(usize, TileGeometry)> = {
                let cache = self.cache.lock().expect("tile cache");
                geoms
                    .iter()
                    .filter(|(tile_index, geom)| {
                        // A key mid-compile on another thread is about to
                        // become resident; a skipped prewarm only costs
                        // speed, so leave it to the thread that owns it.
                        !cache.in_flight.contains(&(layer_idx, *tile_index, 0))
                            && cache
                                .tiles
                                .get(&(layer_idx, *tile_index, 0))
                                .is_none_or(|hit| !hit.matches_bank(&tiles, geom))
                    })
                    .collect()
            };
            let compiled = parallel_map(&missing, self.config.threads, |_, (tile_index, _)| {
                let seed = tile_seed(self.config.seed, layer_idx, *tile_index);
                Arc::new(CompiledTile::compile(
                    &tiles.tile(*tile_index),
                    &self.config,
                    seed,
                ))
            });
            let aging = self.aging_active();
            let clock = self.clock.load(Ordering::Relaxed);
            let mut cache = self.cache.lock().expect("tile cache");
            for ((tile_index, _), compiled) in missing.iter().zip(compiled) {
                let key = (layer_idx, *tile_index, 0);
                let cells = compiled.cells();
                cache.misses += 1;
                if let Some(stale) = cache.tiles.remove(&key) {
                    cache.cells -= stale.cells();
                }
                cache.ages.remove(&key);
                if cache.cells + cells <= self.cache_budget {
                    cache.tiles.insert(key, compiled);
                    cache.cells += cells;
                    if aging {
                        cache.ages.insert(
                            key,
                            TileAge {
                                programmed_at: clock,
                                derived_age: 0,
                            },
                        );
                    }
                }
                compiled_total += 1;
            }
        }
        compiled_total
    }

    /// Captures the executor's programmed tile state as a serializable
    /// [`ChipSnapshot`]: the non-volatile weight codes of every resident
    /// tile plus the per-tile seed and configuration that reconstruct its
    /// compiled state deterministically. Tiles are recorded in
    /// `(layer, tile, channel)` order, so equal cache contents always
    /// produce equal snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> ChipSnapshot {
        let cache = self.cache.lock().expect("tile cache");
        let mut keys: Vec<&(usize, usize, usize)> = cache.tiles.keys().collect();
        keys.sort_unstable();
        let tiles = keys
            .into_iter()
            .map(|&(layer, tile, channel)| {
                let compiled = &cache.tiles[&(layer, tile, channel)];
                TileSnapshot {
                    layer,
                    tile,
                    channel,
                    seed: tile_seed(self.config.seed, layer, tile),
                    rows: compiled.value_rows(),
                    values: compiled.values().to_vec(),
                    program: compiled.program(),
                }
            })
            .collect();
        ChipSnapshot {
            config: self.config.clone(),
            cache_budget: self.cache_budget,
            hits: cache.hits,
            misses: cache.misses,
            tiles,
        }
    }

    /// Reconstructs an executor from a [`ChipSnapshot`]: every recorded
    /// tile is recompiled from its codes with its original seed and
    /// wavelength channel, producing a chip whose forward passes are
    /// **byte-identical** to the source chip's (programming variation,
    /// drift, and per-channel phase streams all re-derive from the stored
    /// seeds). The restored cache carries the snapshot's hit/miss
    /// counters; tiles are admitted in snapshot order under the
    /// snapshot's cell budget.
    ///
    /// This is the migration primitive of multi-chip serving: a hot model
    /// moves between chips by snapshotting its executor and restoring it
    /// under the destination chip's budget.
    ///
    /// # Panics
    ///
    /// Panics if a recompiled tile's programming report disagrees with
    /// the snapshot record (a corrupted or cross-version snapshot).
    #[must_use]
    pub fn restore(snapshot: &ChipSnapshot) -> Self {
        Self::restore_at(snapshot, 0)
    }

    /// [`Self::restore`] onto a running cluster: the restored executor's
    /// virtual clock starts at `clock`, and every restored tile's
    /// programming age is stamped there — restoration reprograms the
    /// destination's PCM arrays, so the tiles are fresh at the moment of
    /// recovery, not as old as the source chip's copies were.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::restore`].
    #[must_use]
    pub fn restore_at(snapshot: &ChipSnapshot, clock: u64) -> Self {
        let exec = Self::new(snapshot.config.clone()).with_cache_budget(snapshot.cache_budget);
        exec.set_clock(clock);
        let aging = exec.aging_active();
        {
            let mut cache = exec.cache.lock().expect("tile cache");
            cache.hits = snapshot.hits;
            cache.misses = snapshot.misses;
            for snap in &snapshot.tiles {
                let tile = weight_tile_from_codes(&snap.values, snap.rows);
                let compiled =
                    CompiledTile::compile_channel(&tile, &exec.config, snap.seed, snap.channel);
                assert_eq!(
                    compiled.program(),
                    snap.program,
                    "restored tile ({}, {}, {}) must recompile to its recorded state",
                    snap.layer,
                    snap.tile,
                    snap.channel
                );
                let cells = compiled.cells();
                if cache.cells + cells <= snapshot.cache_budget {
                    let key = (snap.layer, snap.tile, snap.channel);
                    cache.tiles.insert(key, Arc::new(compiled));
                    cache.cells += cells;
                    if aging {
                        cache.ages.insert(
                            key,
                            TileAge {
                                programmed_at: clock,
                                derived_age: 0,
                            },
                        );
                    }
                }
            }
        }
        exec
    }
}

/// One layer produced by [`walk_network`].
#[derive(Debug, Clone, PartialEq)]
pub struct WalkedLayer {
    /// Layer name.
    pub name: String,
    /// Requantization shift applied (0 for pools).
    pub shift: u32,
    /// Output tensor after the shared digital post-processing.
    pub output: Tensor3,
    /// Whether the layer ran through `conv_op` (conv/dense vs pool).
    pub is_mac: bool,
}

/// Walks a sequential network, delegating each conv-like layer's raw MVM
/// to `conv_op(layer_index, conv_index, conv, input) -> raw accumulators`
/// and applying the shared digital semantics around it: residual-`Add`
/// rejection, the dense flatten-reshape rule, pooling, and the
/// activate-then-requantize sequence.
///
/// Both the device pipeline ([`DeviceExecutor::forward`]) and the
/// exact-reference comparison walk in [`crate::fidelity`] run through this
/// one function, so the two sides can never diverge on anything but the
/// MVM itself.
///
/// # Errors
///
/// Returns [`UnsupportedLayer`] for networks with residual `Add` layers.
pub fn walk_network<F>(
    network: &Network,
    input: &Tensor3,
    activation_bits: u8,
    mut conv_op: F,
) -> Result<Vec<WalkedLayer>, UnsupportedLayer>
where
    F: FnMut(usize, usize, &Conv2d, &Tensor3) -> Tensor3,
{
    // Reject residual networks up front: the flattened list does not carry
    // the skip wiring needed to execute them.
    if let Some(add) = network.layers().iter().find_map(|l| match l {
        Layer::Add(a) => Some(a.name.clone()),
        _ => None,
    }) {
        return Err(UnsupportedLayer { layer: add });
    }
    let mut conv_idx = 0;
    let mut walked: Vec<WalkedLayer> = Vec::new();
    for (layer_idx, layer) in network.layers().iter().enumerate() {
        // The previous layer's output is read in place from the walk record
        // (no per-layer tensor clone).
        let current = walked.last().map_or(input, |w| &w.output);
        match layer {
            Layer::Add(_) => unreachable!("Add layers rejected by the pre-scan"),
            Layer::Pool(p) => {
                let output = pool_exact(current, p);
                walked.push(WalkedLayer {
                    name: p.name.clone(),
                    shift: 0,
                    output,
                    is_mac: false,
                });
            }
            Layer::Conv2d(_) | Layer::Dense(_) => {
                let dense_conv;
                let conv: &Conv2d = match layer {
                    Layer::Conv2d(c) => c,
                    Layer::Dense(d) => {
                        dense_conv = d.as_conv();
                        &dense_conv
                    }
                    _ => unreachable!(),
                };
                // A dense layer consumes the flattened previous tensor.
                let reshaped;
                let conv_input: &Tensor3 = if current.shape() != conv.input
                    && current.shape().elements() == conv.input.elements()
                {
                    reshaped = Tensor3::new(conv.input, current.data().to_vec());
                    &reshaped
                } else {
                    current
                };
                let raw = conv_op(layer_idx, conv_idx, conv, conv_input);
                conv_idx += 1;
                let activated = activate(&raw, conv.activation);
                let (requant, shift) = requantize(&activated, activation_bits);
                walked.push(WalkedLayer {
                    name: conv.name.clone(),
                    shift,
                    output: requant,
                    is_mac: true,
                });
            }
        }
    }
    Ok(walked)
}

/// Builds one tile's per-pixel im2col drive (positive/negative passes)
/// into reusable buffers — warm buffers make the gather allocation-free.
fn build_drive_into(
    geom: &TileGeometry,
    conv: &Conv2d,
    input: &Tensor3,
    pixel_ids: &[usize],
    has_negative: bool,
    taps: &mut Vec<(u32, u32, u32)>,
    drive: &mut TileDrive,
) {
    let out = conv.output_shape();
    let in_per_group = conv.in_c_per_group();
    let window_w = conv.k_w * in_per_group;
    let c_base = geom.group * in_per_group;
    let rows = geom.rows;
    // The (ky, kx, channel) decode of each tile row is pixel-independent;
    // hoist it out of the per-pixel gather.
    taps.clear();
    taps.extend((0..rows).map(|r| {
        let widx = geom.row_offset + r;
        let ky = widx / window_w;
        let rem = widx % window_w;
        (
            ky as u32,
            (rem / in_per_group) as u32,
            (c_base + rem % in_per_group) as u32,
        )
    }));
    drive.rows = rows;
    drive.pixels = pixel_ids.len();
    drive.positive.clear();
    // The negative buffer keeps its capacity even on unsigned layers, so
    // an arena bouncing between signed and unsigned layers never churns
    // the allocator.
    drive.negative.clear();
    drive.has_negative = has_negative;
    for &pid in pixel_ids {
        let oy = pid / out.w;
        let ox = pid % out.w;
        for &(ky, kx, c) in taps.iter() {
            let iy = (oy * conv.stride + ky as usize) as isize - conv.padding as isize;
            let ix = (ox * conv.stride + kx as usize) as isize - conv.padding as isize;
            let v = input.at_padded(iy, ix, c as usize);
            drive.positive.push(v.max(0) as u8);
            if has_negative {
                drive.negative.push((-v).max(0) as u8);
            }
        }
    }
}

/// Evenly spaced sample of `max_pixels` output-pixel ids (deterministic).
#[must_use]
pub fn sample_pixels(shape: TensorShape, max_pixels: usize) -> Vec<usize> {
    let total = shape.h * shape.w;
    if total <= max_pixels || max_pixels == 0 {
        return (0..total).collect();
    }
    (0..max_pixels).map(|k| k * total / max_pixels).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_nn::reference::{conv2d_exact, Executor};
    use oxbar_nn::synthetic;
    use oxbar_nn::zoo::lenet5;

    #[test]
    fn single_conv_matches_exact_reference() {
        let conv = Conv2d::new("probe", TensorShape::new(7, 7, 3), 3, 3, 5, 1, 1);
        let input = synthetic::activations(conv.input, 6, 4);
        let bank = synthetic::filter_bank(&conv, 6, 5);
        let exact = conv2d_exact(&input, &bank, &conv);
        let exec = DeviceExecutor::new(SimConfig::ideal(32, 8));
        let out = conv.output_shape();
        let pixels: Vec<usize> = (0..out.h * out.w).collect();
        let (values, stats) = exec.conv_pixels(&conv, &input, &bank, 0, &pixels);
        for (pid, per_oc) in pixels.iter().zip(&values) {
            for (oc, &v) in per_oc.iter().enumerate() {
                assert_eq!(v, exact.data()[pid * out.c + oc], "pixel {pid} oc {oc}");
            }
        }
        assert!(stats.tiles > 0);
        assert!(stats.cells_programmed > 0);
        assert!(stats.program_energy.as_picojoules() > 0.0);
    }

    #[test]
    fn grouped_conv_matches_exact_reference() {
        let conv = Conv2d::new("dw", TensorShape::new(5, 5, 6), 3, 3, 6, 1, 1).with_groups(6);
        let input = synthetic::activations(conv.input, 6, 8);
        let bank = synthetic::filter_bank(&conv, 6, 9);
        let exact = conv2d_exact(&input, &bank, &conv);
        let exec = DeviceExecutor::new(SimConfig::ideal(16, 16));
        let out = conv.output_shape();
        let pixels: Vec<usize> = (0..out.h * out.w).collect();
        let (values, _) = exec.conv_pixels(&conv, &input, &bank, 0, &pixels);
        for (pid, per_oc) in pixels.iter().zip(&values) {
            for (oc, &v) in per_oc.iter().enumerate() {
                assert_eq!(v, exact.data()[pid * out.c + oc], "pixel {pid} oc {oc}");
            }
        }
    }

    #[test]
    fn lenet_forward_matches_reference_bit_for_bit() {
        let net = lenet5();
        let input = synthetic::activations(net.input(), 6, 42);
        let filters = synthetic::filter_banks(&net, 6, 7);
        let (ref_out, traces) = Executor::new(6).forward(&net, &input, &filters).unwrap();
        let exec = DeviceExecutor::new(SimConfig::ideal(128, 128));
        let fwd = exec.forward(&net, &input, &filters).unwrap();
        assert_eq!(fwd.output, ref_out, "device chain must be bit-exact");
        assert_eq!(fwd.layers.len(), traces.len());
        for (layer, trace) in fwd.layers.iter().zip(&traces) {
            assert_eq!(layer.name, trace.name);
            assert_eq!(layer.shift, trace.shift);
            assert_eq!(layer.output.shape(), trace.output);
        }
    }

    #[test]
    fn residual_networks_rejected() {
        let net = oxbar_nn::zoo::resnet50_v1_5();
        let input = synthetic::activations(net.input(), 6, 1);
        let filters = synthetic::filter_banks(&net, 6, 2);
        let exec = DeviceExecutor::new(SimConfig::ideal(128, 128));
        let err = exec.forward(&net, &input, &filters).unwrap_err();
        assert!(err.to_string().contains("add"));
    }

    #[test]
    fn cache_stats_track_weight_stationary_reuse() {
        let net = lenet5();
        let input = synthetic::activations(net.input(), 6, 1);
        let filters = synthetic::filter_banks(&net, 6, 2);
        let exec = DeviceExecutor::new(SimConfig::ideal(128, 128).with_threads(1));
        let fresh = exec.cache_stats();
        assert_eq!(
            (fresh.hits, fresh.misses, fresh.entries, fresh.cells),
            (0, 0, 0, 0)
        );
        assert_eq!(fresh.budget, 4_000_000);
        assert_eq!(fresh.hit_rate(), 0.0);
        exec.forward(&net, &input, &filters).unwrap();
        let first = exec.cache_stats();
        assert_eq!(first.hits, 0, "first pass compiles every tile");
        assert!(first.misses > 0 && first.entries > 0 && first.cells > 0);
        exec.forward(&net, &input, &filters).unwrap();
        let second = exec.cache_stats();
        assert_eq!(second.misses, first.misses, "second pass is all hits");
        assert_eq!(second.hits, first.misses);
        assert!(second.hit_rate() > 0.49 && second.hit_rate() < 0.51);
        exec.clear_cache();
        let cleared = exec.cache_stats();
        assert_eq!((cleared.entries, cleared.cells), (0, 0));
        assert_eq!(cleared.hits, second.hits, "counters survive eviction");
    }

    #[test]
    fn zero_cache_budget_disables_caching_without_changing_results() {
        let net = lenet5();
        let input = synthetic::activations(net.input(), 6, 3);
        let filters = synthetic::filter_banks(&net, 6, 4);
        let cached = DeviceExecutor::new(SimConfig::noisy(64, 64).with_threads(1));
        let cold =
            DeviceExecutor::new(SimConfig::noisy(64, 64).with_threads(1)).with_cache_budget(0);
        let a = cached.forward(&net, &input, &filters).unwrap();
        let b = cold.forward(&net, &input, &filters).unwrap();
        assert_eq!(a, b, "caching must never change results");
        cold.forward(&net, &input, &filters).unwrap();
        let stats = cold.cache_stats();
        assert_eq!(stats.hits, 0, "budget 0 admits nothing");
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 2 * cached.cache_stats().misses);
    }

    /// A small noisy config with aggressive aging: each dispatch tick
    /// ages resident tiles by `tick_seconds` of physical drift.
    fn aging_config(tick_seconds: f64) -> SimConfig {
        let mut cfg = SimConfig::noisy(32, 8).with_threads(1);
        cfg.noise.drift_nu = 0.05; // exaggerated so the 12-bit ADC sees it
        cfg.noise.drift_tick = Time::from_seconds(tick_seconds);
        cfg
    }

    fn probe_conv_forward(exec: &DeviceExecutor) -> Vec<Vec<i64>> {
        let conv = Conv2d::new("probe", TensorShape::new(7, 7, 3), 3, 3, 5, 1, 1);
        let input = synthetic::activations(conv.input, 6, 4);
        let bank = synthetic::filter_bank(&conv, 6, 5);
        let out = conv.output_shape();
        let pixels: Vec<usize> = (0..out.h * out.w).collect();
        exec.conv_pixels(&conv, &input, &bank, 0, &pixels).0
    }

    #[test]
    fn aged_readouts_rederive_the_drift_law() {
        let exec = DeviceExecutor::new(aging_config(1e8));
        let fresh = probe_conv_forward(&exec);
        exec.set_clock(1000);
        let aged = probe_conv_forward(&exec);
        assert_ne!(fresh, aged, "a millennium of drift must move the ADC");
        // The aged readout is exactly a compile at the aged elapsed: an
        // executor configured with that elapsed from the start (and no
        // aging) produces byte-identical outputs.
        let mut static_cfg = aging_config(0.0);
        static_cfg.noise.drift_elapsed = Time::from_seconds(3600.0 + 1000.0 * 1e8);
        let static_exec = DeviceExecutor::new(static_cfg);
        assert_eq!(aged, probe_conv_forward(&static_exec));
    }

    #[test]
    fn recalibration_is_bit_exact_to_a_fresh_program() {
        let exec = DeviceExecutor::new(aging_config(1e8));
        let fresh = probe_conv_forward(&exec);
        exec.set_clock(1000);
        let aged = probe_conv_forward(&exec);
        assert_ne!(fresh, aged);
        let infos = exec.tile_ages();
        assert!(!infos.is_empty());
        assert!(infos.iter().all(|i| i.age_ticks == 1000));
        assert!(infos.iter().all(|i| i.projected_slip > 0.0));
        let mut recalibrated = 0;
        for info in &infos {
            recalibrated += exec.recalibrate_tile(info.layer, info.tile);
        }
        assert_eq!(recalibrated, infos.len());
        // Reprogramming re-derives the same seed streams at the baseline
        // elapsed: readouts return to fresh-program accuracy, bit-exact.
        assert_eq!(probe_conv_forward(&exec), fresh);
        assert!(exec.tile_ages().iter().all(|i| i.age_ticks == 0));
    }

    #[test]
    fn split_recalibration_matches_the_one_shot_path() {
        // mark + eager rederive, mark + lazy read, and recalibrate_tile
        // all converge to the same compiled state and the same counters.
        let eager = DeviceExecutor::new(aging_config(1e8));
        let lazy = DeviceExecutor::new(aging_config(1e8));
        let oneshot = DeviceExecutor::new(aging_config(1e8));
        let fresh = probe_conv_forward(&eager);
        assert_eq!(probe_conv_forward(&lazy), fresh);
        assert_eq!(probe_conv_forward(&oneshot), fresh);
        for exec in [&eager, &lazy, &oneshot] {
            exec.set_clock(1000);
            // Derive the aged state so there is something to reset.
            assert_ne!(probe_conv_forward(exec), fresh);
        }
        let infos = eager.tile_ages();
        assert!(!infos.is_empty());
        for info in &infos {
            assert_eq!(eager.mark_recalibrated(info.layer, info.tile), 1);
            // Marking alone resets the age record, not the derivation.
            assert_eq!(eager.rederive_tile(info.layer, info.tile), 1);
            // Re-deriving again is a no-op: the state is current.
            assert_eq!(eager.rederive_tile(info.layer, info.tile), 0);
            lazy.mark_recalibrated(info.layer, info.tile);
            oneshot.recalibrate_tile(info.layer, info.tile);
        }
        assert_eq!(probe_conv_forward(&eager), fresh);
        assert_eq!(probe_conv_forward(&lazy), fresh);
        assert_eq!(probe_conv_forward(&oneshot), fresh);
        // Every path pays exactly one re-derivation miss per channel
        // state, whether eager or lazy.
        assert_eq!(eager.cache_stats().misses, lazy.cache_stats().misses);
        assert_eq!(eager.cache_stats().misses, oneshot.cache_stats().misses);
    }

    #[test]
    fn aging_is_structurally_inert_when_disabled() {
        let base = DeviceExecutor::new(SimConfig::noisy(32, 8).with_threads(1));
        let clocked = DeviceExecutor::new(SimConfig::noisy(32, 8).with_threads(1));
        let a = probe_conv_forward(&base);
        clocked.set_clock(1_000_000);
        let b = probe_conv_forward(&clocked);
        let c = probe_conv_forward(&clocked);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(base.cache_stats().misses, clocked.cache_stats().misses);
        assert_eq!(clocked.cache_stats().hits, clocked.cache_stats().misses);
        assert!(clocked.tile_ages().is_empty());
        assert_eq!(clocked.drift_budget_ticks(), None);
    }

    #[test]
    fn drift_budget_brackets_the_half_lsb_slip() {
        let exec = DeviceExecutor::new(aging_config(1.0));
        let budget = exec.drift_budget_ticks().expect("bounded budget");
        assert!(budget > 0);
        let half_lsb = 0.5 / f64::from(exec.config().table_max());
        assert!(exec.projected_slip(budget) <= half_lsb * (1.0 + 1e-9));
        assert!(exec.projected_slip(budget.saturating_mul(4)) > half_lsb);
    }

    #[test]
    fn sample_pixels_is_deterministic_and_bounded() {
        let shape = TensorShape::new(10, 10, 4);
        let all = sample_pixels(shape, 0);
        assert_eq!(all.len(), 100);
        let some = sample_pixels(shape, 7);
        assert_eq!(some.len(), 7);
        assert_eq!(some, sample_pixels(shape, 7));
        assert!(some.windows(2).all(|w| w[0] < w[1]));
        assert!(some.iter().all(|&p| p < 100));
    }
}
