//! Multi-mode interference (MMI) waveguide crossing junction.

use crate::{Field, FieldOp};
use oxbar_units::Decibel;
use serde::{Deserialize, Serialize};

/// An MMI waveguide crossing, modeled as a pure insertion loss.
///
/// Every unit cell of the crossbar contains one crossing where the row
/// waveguide passes over the column waveguide; light traversing `c` cells in
/// a row accumulates `c` crossing losses, which is the dominant
/// array-size-dependent loss term in the paper's scaling analysis (§VI.A.2).
///
/// The default loss is **0.018 dB/junction** from Ma et al. (Opt. Express
/// 2013), the paper's reference \[14\]; see DESIGN.md §4 for why the paper's
/// printed "1.8 dB/junction" is treated as a typo.
///
/// # Examples
///
/// ```
/// use oxbar_photonics::crossing::MmiCrossing;
/// use oxbar_photonics::{Field, FieldOp};
///
/// let x = MmiCrossing::default();
/// let out = x.apply(Field::from_amplitude(1.0));
/// assert!((out.power().as_watts() - 10f64.powf(-0.0018)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmiCrossing {
    insertion_loss: Decibel,
    crosstalk_db: f64,
}

impl MmiCrossing {
    /// Default insertion loss per junction (Ma et al. 2013, ref. \[14\]).
    pub const DEFAULT_LOSS_DB: f64 = 0.018;

    /// Creates a crossing with the given insertion loss.
    #[must_use]
    pub fn new(insertion_loss: Decibel) -> Self {
        Self {
            insertion_loss,
            crosstalk_db: -40.0,
        }
    }

    /// Sets the crosstalk level (dB, negative) leaking into the crossed
    /// waveguide. Used only by the noise analysis.
    #[must_use]
    pub fn with_crosstalk(mut self, crosstalk_db: f64) -> Self {
        self.crosstalk_db = crosstalk_db;
        self
    }

    /// Crosstalk power ratio leaking into the crossed waveguide.
    #[must_use]
    pub fn crosstalk_ratio(self) -> f64 {
        10f64.powf(self.crosstalk_db / 10.0)
    }
}

impl Default for MmiCrossing {
    fn default() -> Self {
        Self::new(Decibel::new(Self::DEFAULT_LOSS_DB))
    }
}

impl FieldOp for MmiCrossing {
    fn apply(&self, input: Field) -> Field {
        input.attenuate(self.insertion_loss.attenuation_field())
    }

    fn insertion_loss(&self) -> Decibel {
        self.insertion_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_loss_matches_reference() {
        let x = MmiCrossing::default();
        assert!((x.insertion_loss().value() - 0.018).abs() < 1e-12);
    }

    #[test]
    fn cascade_of_crossings_adds_db() {
        // 127 crossings on a 128-column row: 2.286 dB.
        let x = MmiCrossing::default();
        let mut f = Field::from_amplitude(1.0);
        for _ in 0..127 {
            f = x.apply(f);
        }
        let loss_db = -10.0 * f.power().as_watts().log10();
        assert!((loss_db - 2.286).abs() < 1e-9);
    }

    #[test]
    fn paper_printed_value_configurable() {
        let x = MmiCrossing::new(Decibel::new(1.8));
        let f = x.apply(Field::from_amplitude(1.0));
        assert!((f.power().as_watts() - 10f64.powf(-0.18)).abs() < 1e-12);
    }

    #[test]
    fn crosstalk_default() {
        assert!((MmiCrossing::default().crosstalk_ratio() - 1e-4).abs() < 1e-12);
    }
}
