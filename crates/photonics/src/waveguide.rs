//! Silicon waveguide segment with propagation loss and phase.

use crate::{Field, FieldOp};
use oxbar_units::Decibel;
use serde::{Deserialize, Serialize};

/// A straight (or routed) waveguide segment.
///
/// Applies the distributed propagation loss (3 dB/cm in the paper's 45 nm
/// monolithic process, §III) and the optical phase `2π·n_eff·L/λ`.
///
/// # Examples
///
/// ```
/// use oxbar_photonics::waveguide::Waveguide;
/// use oxbar_photonics::{Field, FieldOp};
///
/// // One centimetre at 3 dB/cm halves the power.
/// let wg = Waveguide::new(10_000.0);
/// let out = wg.apply(Field::from_amplitude(1.0));
/// assert!((out.power().as_watts() - 10f64.powf(-0.3)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waveguide {
    length_um: f64,
    loss_db_per_cm: f64,
    n_eff: f64,
    wavelength_nm: f64,
}

impl Waveguide {
    /// The paper's waveguide loss in the GF 45CLO process (§III).
    pub const DEFAULT_LOSS_DB_PER_CM: f64 = 3.0;
    /// Typical effective index of a silicon strip waveguide at 1310 nm.
    pub const DEFAULT_N_EFF: f64 = 2.4;
    /// O-band operating wavelength used by the 45 nm EPIC references.
    pub const DEFAULT_WAVELENGTH_NM: f64 = 1310.0;

    /// Creates a waveguide of the given length (µm) with default process
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `length_um` is negative.
    #[must_use]
    pub fn new(length_um: f64) -> Self {
        assert!(length_um >= 0.0, "waveguide length must be non-negative");
        Self {
            length_um,
            loss_db_per_cm: Self::DEFAULT_LOSS_DB_PER_CM,
            n_eff: Self::DEFAULT_N_EFF,
            wavelength_nm: Self::DEFAULT_WAVELENGTH_NM,
        }
    }

    /// Overrides the propagation loss in dB/cm.
    #[must_use]
    pub fn with_loss_db_per_cm(mut self, loss: f64) -> Self {
        self.loss_db_per_cm = loss;
        self
    }

    /// Overrides the effective index.
    #[must_use]
    pub fn with_n_eff(mut self, n_eff: f64) -> Self {
        self.n_eff = n_eff;
        self
    }

    /// Overrides the carrier wavelength (nm).
    #[must_use]
    pub fn with_wavelength_nm(mut self, wavelength_nm: f64) -> Self {
        self.wavelength_nm = wavelength_nm;
        self
    }

    /// Physical length in µm.
    #[must_use]
    pub fn length_um(self) -> f64 {
        self.length_um
    }

    /// Propagation phase `2π·n_eff·L/λ` in radians.
    #[must_use]
    pub fn phase(self) -> f64 {
        let length_nm = self.length_um * 1e3;
        2.0 * core::f64::consts::PI * self.n_eff * length_nm / self.wavelength_nm
    }
}

impl FieldOp for Waveguide {
    fn apply(&self, input: Field) -> Field {
        input
            .attenuate(self.insertion_loss().attenuation_field())
            .shift_phase(self.phase())
    }

    fn insertion_loss(&self) -> Decibel {
        Decibel::new(self.loss_db_per_cm * self.length_um * 1e-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_scales_with_length() {
        let wg = Waveguide::new(5_000.0); // 0.5 cm
        assert!((wg.insertion_loss().value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_length_is_identity_loss() {
        let wg = Waveguide::new(0.0);
        assert_eq!(wg.insertion_loss().value(), 0.0);
        let f = wg.apply(Field::from_amplitude(1.0));
        assert!((f.power().as_watts() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn phase_accumulates() {
        // λ/n_eff of physical length is one full 2π cycle.
        let cycle_um = Waveguide::DEFAULT_WAVELENGTH_NM / Waveguide::DEFAULT_N_EFF * 1e-3;
        let wg = Waveguide::new(cycle_um);
        assert!((wg.phase() - 2.0 * core::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length must be non-negative")]
    fn negative_length_panics() {
        let _ = Waveguide::new(-1.0);
    }

    #[test]
    fn builder_overrides() {
        let wg = Waveguide::new(100.0)
            .with_loss_db_per_cm(1.0)
            .with_n_eff(2.0)
            .with_wavelength_nm(1550.0);
        assert!((wg.insertion_loss().value() - 0.01).abs() < 1e-12);
        assert!((wg.phase() - 2.0 * core::f64::consts::PI * 2.0 * 1e5 / 1550.0).abs() < 1e-9);
    }
}
