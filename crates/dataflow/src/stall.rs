//! DRAM-bandwidth stall analysis.
//!
//! The analytic engine assumes memory keeps up with compute; this module
//! checks that assumption: for each layer it compares the DRAM transfer
//! time against the compute time and reports the shortfall.

use crate::spec::NetworkSpec;
use oxbar_memory::dram::DramKind;
use oxbar_units::{DataVolume, Frequency, Time};
use serde::{Deserialize, Serialize};

/// Per-layer bandwidth verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerStall {
    /// Layer name.
    pub name: String,
    /// Compute time for the batch pass.
    pub compute_time: Time,
    /// DRAM transfer time for the layer's traffic at peak bandwidth.
    pub dram_time: Time,
    /// Extra time beyond compute (zero when bandwidth keeps up).
    pub stall: Time,
}

/// Network-level bandwidth report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallReport {
    /// Per-layer verdicts.
    pub layers: Vec<LayerStall>,
    /// Total stall across the network.
    pub total_stall: Time,
    /// Total compute time.
    pub total_compute: Time,
}

impl StallReport {
    /// Slowdown factor from bandwidth stalls (1.0 = none).
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        (self.total_compute.as_seconds() + self.total_stall.as_seconds())
            / self.total_compute.as_seconds()
    }
}

/// Computes the stall report for a spec at a MAC clock and DRAM kind.
///
/// # Examples
///
/// ```
/// use oxbar_dataflow::{stall, DataflowEngine};
/// use oxbar_memory::dram::DramKind;
/// use oxbar_nn::zoo::resnet50_v1_5;
/// use oxbar_units::Frequency;
///
/// let spec = DataflowEngine::paper_default(128, 128, 32).analyze(&resnet50_v1_5());
/// let report = stall::analyze(&spec, Frequency::from_gigahertz(10.0), DramKind::Hbm);
/// // Co-packaged HBM keeps up with the paper's operating point.
/// assert!(report.slowdown() < 1.1);
/// ```
#[must_use]
pub fn analyze(spec: &NetworkSpec, clock: Frequency, dram: DramKind) -> StallReport {
    let bw = dram.peak_bandwidth_bytes_per_s();
    let mut layers = Vec::with_capacity(spec.layers.len());
    let mut total_stall = Time::ZERO;
    let mut total_compute = Time::ZERO;
    for layer in &spec.layers {
        let compute_time = clock.cycles_to_time(layer.compute_cycles);
        let dram_bits = DataVolume::from_bits(layer.traffic.dram_reads + layer.traffic.dram_writes);
        let dram_time = Time::from_seconds(dram_bits.as_bytes() / bw);
        let stall =
            Time::from_seconds((dram_time.as_seconds() - compute_time.as_seconds()).max(0.0));
        total_stall += stall;
        total_compute += compute_time;
        layers.push(LayerStall {
            name: layer.name.clone(),
            compute_time,
            dram_time,
            stall,
        });
    }
    StallReport {
        layers,
        total_stall,
        total_compute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DataflowEngine, ModelOptions};
    use oxbar_memory::system::SramSizing;
    use oxbar_nn::zoo::resnet50_v1_5;
    use oxbar_units::DataVolume;

    #[test]
    fn hbm_keeps_up_at_paper_operating_point() {
        let spec = DataflowEngine::paper_default(128, 128, 32).analyze(&resnet50_v1_5());
        let report = analyze(&spec, Frequency::from_gigahertz(10.0), DramKind::Hbm);
        assert!(report.slowdown() < 1.05, "slowdown {}", report.slowdown());
    }

    #[test]
    fn starved_sram_stalls_even_hbm() {
        let engine = DataflowEngine::new(
            128,
            128,
            64,
            SramSizing::paper_default().with_input(DataVolume::from_kilobytes(64.0)),
            ModelOptions::default(),
        );
        let spec = engine.analyze(&resnet50_v1_5());
        let report = analyze(&spec, Frequency::from_gigahertz(10.0), DramKind::Hbm);
        assert!(report.slowdown() > 1.5, "slowdown {}", report.slowdown());
    }

    #[test]
    fn pcie_dram_is_slower_than_hbm() {
        let spec = DataflowEngine::paper_default(128, 128, 64).analyze(&resnet50_v1_5());
        let hbm = analyze(&spec, Frequency::from_gigahertz(10.0), DramKind::Hbm);
        let pcie = analyze(
            &spec,
            Frequency::from_gigahertz(10.0),
            DramKind::PcieAttached,
        );
        assert!(pcie.total_stall.as_seconds() >= hbm.total_stall.as_seconds());
    }

    #[test]
    fn stall_never_negative() {
        let spec = DataflowEngine::paper_default(64, 64, 8).analyze(&resnet50_v1_5());
        let report = analyze(&spec, Frequency::from_gigahertz(10.0), DramKind::Hbm);
        for layer in &report.layers {
            assert!(layer.stall.as_seconds() >= 0.0);
        }
    }
}
