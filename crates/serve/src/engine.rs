//! The serving engine: a submission queue, the dynamic batcher, and a
//! deterministic parallel scheduler over a cluster of chips.

use crate::batcher::{form_batches, route_rounds, Batch, BatchPolicy};
use crate::cluster::{ChipHealth, ChipId, ChipStats, Cluster, PlacementPolicy};
use crate::registry::{AdmitError, ModelCacheStats, ModelSpec};
use crate::request::{Completion, InferRequest, ModelId, RequestId, SequenceId, TokenCompletion};
use oxbar_core::dse::parallel_map;
use oxbar_nn::reference::Tensor3;
use oxbar_nn::transformer::{KvCache, StepOutcome};
use oxbar_nn::TensorShape;
use oxbar_sim::llm::lm_step;
use oxbar_sim::{DeviceExecutor, ExecError, FaultEvent, FaultPlan, InjectedFault, SimConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How many times one request's execute retries through transient tile
/// faults before the batch escalates to failover.
const MAX_TILE_RETRIES: usize = 3;

/// Hard per-sequence cap on decode steps, so a hostile `Generate` cannot
/// pin the engine in an unbounded token loop.
pub const MAX_SEQUENCE_STEPS: usize = 1024;

/// Tiles one drain plans for recalibration per chip — bounds the total
/// off-path reprogramming a single drain commits to.
const MAX_RECALS_PER_DRAIN: usize = 16;

/// Tiles one recalibration stage reprograms per chip per round, so the
/// stage stays shorter than the round it hides behind.
const MAX_RECAL_TILES_PER_ROUND: usize = 4;

/// Full configuration of a [`ServeEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Device configuration every admitted model's executor derives from
    /// (per-model seeds are mixed in at admission).
    pub device: SimConfig,
    /// How the batcher coalesces the queue.
    pub policy: BatchPolicy,
    /// Global weight-stationary budget, in crossbar cells, shared by all
    /// admitted models (the hardware's finite PCM tile capacity).
    pub cache_budget_cells: usize,
    /// Worker threads for batch dispatch (0 = all cores, 1 = serial).
    /// Results are byte-identical regardless of the worker count.
    pub workers: usize,
    /// Pipelined tile programming: while a batch round executes, a
    /// scheduler stage prewarms the tile cache of the next distinct model
    /// in the queue, so a model switch no longer stalls its first batch
    /// on PCM programming. Outputs and eviction sequences are identical
    /// with it on or off — the stage is skipped whenever prewarming could
    /// not fit the global cell budget.
    pub prewarm: bool,
    /// Drift-aware online recalibration: when the device config ages
    /// resident tiles ([`oxbar_sim::NoiseModel::drift_tick`] and a drift
    /// exponent both non-zero), the scheduler reprograms the oldest
    /// tiles that crossed the accuracy budget back to fresh-program
    /// state, off the critical path, during the same stage slots the
    /// prewarmer uses. Decisions are keyed on the global dispatch
    /// counter at single-threaded drain boundaries — never wall clock —
    /// so outputs, eviction sequences, and stats are byte-identical
    /// across worker counts; with aging disabled the flag is
    /// structurally inert (on or off, nothing changes). On by default.
    pub recalibration: bool,
    /// Per-chip weight-stationary budgets, in cells. Empty (the default)
    /// means a single chip of `cache_budget_cells` — the pre-cluster
    /// configuration, byte-identical to it. With two or more entries the
    /// engine serves a multi-chip [`Cluster`]: models place onto chips at
    /// admission, rounds route across chips, and over-budget chips
    /// migrate models to siblings before evicting.
    pub chip_budgets: Vec<usize>,
    /// How admitted models place onto chips (ignored on a single chip).
    pub placement: PlacementPolicy,
    /// Deterministic fault schedule, keyed on the engine's global batch
    /// dispatch counter: an event with round `r` lands just before the
    /// `r`-th batch dispatched since engine creation. Keying on dispatch
    /// sequence — never wall clock — keeps failover, shedding, and
    /// recovery decisions byte-identical across worker counts. Empty by
    /// default: a no-fault engine is byte-identical to one without this
    /// field.
    pub fault_plan: FaultPlan,
    /// Ticks of schedule slip a failed-over batch is charged when the
    /// deadline shedder decides whether a re-routed request can still
    /// make its deadline: a member is shed iff its deadline precedes the
    /// batch's latest arrival plus this penalty. Applies **only** to
    /// batches re-routed off a failed chip — no-fault scheduling never
    /// sheds. The default of 0 sheds only requests that provably could
    /// not complete (deadline before arrival).
    pub failover_penalty: u64,
}

impl ServeConfig {
    /// A serving configuration with the default batching policy (batches
    /// of up to 16 within an 8-tick window), the simulator's 4M-cell
    /// weight-stationary budget, and serial dispatch.
    #[must_use]
    pub fn new(device: SimConfig) -> Self {
        Self {
            device,
            policy: BatchPolicy::new(16, 8),
            cache_budget_cells: 4_000_000,
            workers: 1,
            prewarm: true,
            recalibration: true,
            chip_budgets: Vec::new(),
            placement: PlacementPolicy::FirstFit,
            fault_plan: FaultPlan::new(),
            failover_penalty: 0,
        }
    }

    /// Overrides the batching policy.
    #[must_use]
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the global weight-stationary cell budget.
    #[must_use]
    pub fn with_cache_budget(mut self, cells: usize) -> Self {
        self.cache_budget_cells = cells;
        self
    }

    /// Overrides the dispatch worker count (0 = all cores, 1 = serial).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables/disables the pipelined prewarm stage (on by default).
    #[must_use]
    pub fn with_prewarm(mut self, prewarm: bool) -> Self {
        self.prewarm = prewarm;
        self
    }

    /// Enables/disables drift-aware online recalibration (on by
    /// default; inert unless the device config ages tiles).
    #[must_use]
    pub fn with_recalibration(mut self, recalibration: bool) -> Self {
        self.recalibration = recalibration;
        self
    }

    /// Serves a multi-chip cluster with the given per-chip cell budgets
    /// (an empty list falls back to one chip of the global budget).
    #[must_use]
    pub fn with_chips(mut self, chip_budgets: Vec<usize>) -> Self {
        self.chip_budgets = chip_budgets;
        self
    }

    /// Overrides the model→chip placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Schedules a deterministic fault plan (empty by default).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Overrides the failover deadline penalty, in ticks.
    #[must_use]
    pub fn with_failover_penalty(mut self, ticks: u64) -> Self {
        self.failover_penalty = ticks;
        self
    }

    /// The effective per-chip budgets: `chip_budgets`, or one chip of
    /// `cache_budget_cells` when empty.
    #[must_use]
    pub fn effective_chip_budgets(&self) -> Vec<usize> {
        if self.chip_budgets.is_empty() {
            vec![self.cache_budget_cells]
        } else {
            self.chip_budgets.clone()
        }
    }
}

/// Aggregate serving statistics since engine creation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Requests completed across all drains.
    pub requests: u64,
    /// Batches dispatched across all drains.
    pub batches: u64,
    /// Whole-model cache evictions forced by the global budget.
    pub evictions: u64,
    /// Pipelined prewarm stages dispatched (one per round that had a
    /// budget-safe next-model target).
    pub prewarms: u64,
    /// Tiles programmed + compiled off the critical path by those stages.
    pub prewarmed_tiles: u64,
    /// Summed cache occupancy across models, in cells.
    pub occupancy_cells: usize,
    /// The global cell budget.
    pub budget_cells: usize,
    /// Per-model tile-cache statistics, in admission order.
    pub models: Vec<ModelCacheStats>,
    /// Cross-chip model migrations (snapshot-based moves an over-budget
    /// chip made instead of evicting; always 0 on a single chip).
    pub migrations: u64,
    /// Per-chip statistics, in chip-index order (one entry on a
    /// single-chip engine).
    pub chips: Vec<ChipStats>,
    /// Fault-driven re-executions: transient tile-fault retries plus
    /// batches re-routed off a failed chip (each re-route counts once).
    pub retries: u64,
    /// Requests shed instead of served — re-routed members whose
    /// deadline could not survive the failover penalty, or members with
    /// no healthy chip left to run on. Shed requests complete with a
    /// structured notice, never silently.
    pub sheds: u64,
    /// Models recovered by snapshot/restore after losing every serving
    /// residency (the PCM-non-volatility path).
    pub recoveries: u64,
    /// Total wall-clock milliseconds spent inside those recoveries
    /// (observational only; nothing branches on it).
    pub recovery_ms: f64,
    /// Autoregressive sequences begun (finished or not).
    pub sequences: u64,
    /// Decode-step tokens emitted across all sequences.
    pub tokens: u64,
    /// Recalibration stages planned (one per chip per drain that had
    /// over-budget tiles to reprogram).
    pub recalibrations: u64,
    /// Tiles reprogrammed back to fresh-program state by those stages.
    pub recalibrated_tiles: u64,
    /// Chips promoted to [`ChipHealth::Degraded`] by the drift health
    /// monitor (one per Healthy→Degraded transition, not per tile).
    pub drift_budget_breaches: u64,
    /// Degraded→Healthy transitions made by the drift heal pass once a
    /// chip's resident tiles were all recalibrated back under budget.
    pub drift_heals: u64,
    /// Prewarm/recalibration stage threads that panicked. A panicked
    /// stage is skipped — its work was advisory — and serving continues.
    pub stage_panics: u64,
}

impl EngineStats {
    /// Tile-level cache hit rate aggregated over every model.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.models.iter().fold((0u64, 0u64), |(h, m), s| {
            (h + s.cache.hits, m + s.cache.misses)
        });
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Mean requests per dispatched batch.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// Why [`ServeEngine::try_submit`] refused a request.
///
/// Submission rejection is *structured*, never a panic: the serving edge
/// hands untrusted client input to the engine, and a misbehaving client
/// must not be able to crash it. Note that an out-of-order arrival tick
/// is deliberately **not** an error — concurrent network connections
/// routinely deliver non-monotonic ticks, so admission orders the queue
/// by arrival instead (see [`ServeEngine::try_submit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The request names a model this engine never admitted.
    UnknownModel(ModelId),
    /// The input tensor's shape does not match the model's input layer.
    ShapeMismatch {
        /// The model the request targeted.
        model: ModelId,
        /// The shape the model's input layer requires.
        expected: TensorShape,
        /// The shape the request carried.
        got: TensorShape,
    },
    /// The input tensor is internally inconsistent: its data length does
    /// not equal its shape's element count (possible only for tensors
    /// deserialized from an untrusted wire payload — in-process
    /// construction validates on [`oxbar_nn::reference::Tensor3::new`]).
    MalformedTensor {
        /// Elements the declared shape requires.
        expected: usize,
        /// Data values actually carried.
        got: usize,
    },
    /// A sequence operation targeted a model that is not an
    /// autoregressive language model ([`ModelSpec::lm`] is `None`).
    NotLanguageModel(ModelId),
    /// The prompt token is outside the model's vocabulary.
    BadToken {
        /// The model the sequence targeted.
        model: ModelId,
        /// The offending token.
        token: u32,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// The requested decode-step count is zero or above
    /// [`MAX_SEQUENCE_STEPS`].
    BadSteps {
        /// The step count the request carried.
        steps: usize,
        /// The per-sequence cap.
        max: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownModel(model) => write!(f, "unknown model {model:?}"),
            Self::ShapeMismatch {
                model,
                expected,
                got,
            } => write!(
                f,
                "input shape must match the model: {model:?} expects {expected}, got {got}"
            ),
            Self::MalformedTensor { expected, got } => write!(
                f,
                "malformed tensor: shape declares {expected} elements, data carries {got}"
            ),
            Self::NotLanguageModel(model) => {
                write!(f, "model {model:?} is not a language model")
            }
            Self::BadToken {
                model,
                token,
                vocab,
            } => write!(
                f,
                "token {token} outside the {vocab}-token vocabulary of {model:?}"
            ),
            Self::BadSteps { steps, max } => {
                write!(f, "sequence steps must be in 1..={max}, got {steps}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Everything one [`ServeEngine::drain_traced`] call observed: the
/// completions, each batch's measured wall time, and the dispatch rounds
/// the scheduler actually ran — the inputs
/// [`crate::loadgen::replay_latencies`] needs to replay the concurrent
/// queueing timeline faithfully.
#[derive(Debug, Clone)]
pub struct DrainTrace {
    /// One completion per request, in dispatch order.
    pub completions: Vec<Completion>,
    /// Measured wall-clock execution time of each batch (ms), indexed by
    /// `batch_seq`.
    pub batch_ms: Vec<f64>,
    /// The dispatch rounds: `rounds[k]` holds the `batch_seq` values that
    /// executed concurrently in round `k` (ascending). Every batch
    /// appears in exactly one round.
    pub rounds: Vec<Vec<usize>>,
    /// Requests shed by the fault handler instead of completed, in
    /// dispatch order. Empty on a no-fault drain. Every queued request
    /// lands in exactly one of `completions` or `sheds` — nothing is
    /// silently lost.
    pub sheds: Vec<ShedNotice>,
}

/// A request the engine shed instead of served: its batch was re-routed
/// off a failed chip and the member either could not meet its deadline
/// under the failover penalty or had no healthy chip left to run on.
///
/// The notice carries everything the serving edge needs to answer the
/// client explicitly — shedding is a structured completion, never a
/// hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedNotice {
    /// The request that was shed.
    pub id: RequestId,
    /// The model it targeted.
    pub model: ModelId,
    /// Its arrival tick.
    pub arrival: u64,
    /// Its advisory deadline, if any.
    pub deadline: Option<u64>,
    /// Human-readable reason for the shed.
    pub detail: String,
}

struct Queued {
    id: RequestId,
    request: InferRequest,
    /// Set when this queue entry is one decode step of an autoregressive
    /// sequence (index into `ServeEngine::sequences`); the entry then
    /// executes as an [`lm_step`] against the sequence's KV cache instead
    /// of a network forward.
    sequence: Option<u64>,
}

/// One live autoregressive generation session. Exactly one decode step
/// per sequence is ever queued or in flight: step `t + 1` enters the
/// queue only when step `t`'s completion is absorbed, so the KV cache an
/// executing step reads is always settled.
struct Sequence {
    model: ModelId,
    cache: KvCache,
    /// Steps completed so far (= the position the next step decodes at).
    pos: usize,
    /// Total decode steps this sequence runs.
    steps: usize,
    /// The token the next step feeds (the prompt, then each emitted
    /// token).
    next_token: u32,
    /// Ticks between successive token arrivals.
    interval: u64,
    /// Arrival tick of the next step to enqueue.
    next_arrival: u64,
    /// Every token emitted so far, in order — the sequence's output
    /// stream.
    tokens: Vec<u32>,
    /// No further steps will run (completed or shed).
    finished: bool,
    /// The fault handler shed a step mid-sequence (terminates the
    /// sequence: later steps would decode against a hole in the cache).
    shed: bool,
}

/// One executed batch member: the completion plus, for a token step, the
/// device outcome the serial completion loop applies to the sequence
/// (KV-cache append, next-token advance, next-step submission).
struct Executed {
    completion: Completion,
    outcome: Option<(u64, StepOutcome)>,
}

/// Where a batch executes, as resolved by the drain-start fault walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FateChip {
    /// Execute on this cluster chip.
    Fixed(usize),
    /// Execute wherever the model currently resides — used after a
    /// snapshot recovery, whose destination chip is picked at run time.
    Primary,
    /// Every member is shed; nothing executes.
    Shed,
}

/// The fault plan's verdict for one batch.
///
/// Fates are computed in global dispatch-sequence order before any round
/// runs, from the fault plan alone — so which chip serves a batch, which
/// members are shed, and where recoveries happen are pure functions of
/// the trace and the plan, identical for every worker count.
#[derive(Debug, Clone)]
/// One drain's planned recalibration work for one chip: the tiles whose
/// programming age the drain boundary already reset, still awaiting
/// their eager reprogram in a stage slot.
struct RecalPlan {
    chip: usize,
    tiles: Vec<(ModelId, usize, usize)>,
}

/// One round's slice of a chip's recalibration plan: `(chip, tiles)`.
type RecalChunk = (usize, Vec<(ModelId, usize, usize)>);

struct BatchFate {
    chip: FateChip,
    /// Queue slots (batch members) shed by the deadline rule, ascending.
    shed: Vec<usize>,
    /// The failed chip this batch was re-routed away from, if any.
    failed_from: Option<usize>,
    /// The batch absorbs one armed transient tile fault: its first
    /// execute fails once and retries in place, byte-identically.
    transient: bool,
    /// Snapshot-recover the model before this batch runs.
    recover: bool,
}

/// A deterministic, multi-model, batched inference engine over the
/// device-level simulator.
///
/// The life of a request: [`ServeEngine::submit`] appends it to the
/// queue; [`ServeEngine::drain`] coalesces the queue into same-model
/// batches ([`form_batches`]), dispatches batch rounds across workers
/// with the order-preserving [`parallel_map`], executes every request on
/// its model's weight-stationary [`oxbar_sim::DeviceExecutor`], and
/// enforces the global cell budget between rounds (LRU whole-model
/// eviction).
///
/// # Determinism
///
/// Outputs are byte-identical across worker counts and batching policies
/// because every stochastic quantity is pinned to a stable key, never to
/// execution order: a model's PCM programming and phase noise derive from
/// its admission seed ([`oxbar_sim::config::tile_seed`] per tile), and a
/// trace's inputs derive from per-request seeds
/// ([`crate::request::request_seed`]). Caching and eviction change only
/// *work*, not results, so a concurrent drain equals a serial replay of
/// the same trace — the property `crates/serve/tests/determinism.rs`
/// pins down.
///
/// # Examples
///
/// ```
/// use oxbar_serve::{catalog, ServeConfig, ServeEngine};
/// use oxbar_sim::SimConfig;
/// use oxbar_nn::synthetic;
///
/// let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)));
/// let model = engine.admit(catalog::lenet5_model()).unwrap();
/// let input = synthetic::activations(engine.input_shape(model), 6, 1);
/// engine.submit_simple(model, input);
/// let done = engine.drain();
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].output.shape().elements(), 10);
/// ```
pub struct ServeEngine {
    config: ServeConfig,
    registry: Cluster,
    queue: Vec<Queued>,
    next_id: u64,
    requests: u64,
    batches: u64,
    prewarms: u64,
    prewarmed_tiles: u64,
    retries: u64,
    sheds: u64,
    /// Next fault-plan round (global dispatch sequence number) the fate
    /// walk has not consumed yet.
    fault_cursor: u64,
    /// Transient tile faults armed on each chip but not yet absorbed by
    /// a batch (events can outpace a chip's traffic within one drain).
    pending_transients: Vec<u64>,
    /// Every sequence ever begun, indexed by [`SequenceId`].
    sequences: Vec<Sequence>,
    /// Decode steps completed across all sequences.
    tokens: u64,
    /// Recalibration stages planned across all drains.
    recalibrations: u64,
    /// Tiles reprogrammed back to baseline by those stages.
    recalibrated_tiles: u64,
    /// Healthy→Degraded promotions by the drift health monitor.
    drift_budget_breaches: u64,
    /// Degraded→Healthy transitions by the drift heal pass.
    drift_heals: u64,
    /// Stage threads (prewarm or recal) that panicked and were skipped.
    stage_panics: u64,
    /// The accuracy budget in dispatch ticks, fixed by the device
    /// config at construction (`None` = aging inactive or unbounded —
    /// either way the drift machinery is structurally inert).
    drift_budget_ticks: Option<u64>,
}

impl ServeEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        let budgets = config.effective_chip_budgets();
        let registry = Cluster::new(config.device.clone(), &budgets, config.placement);
        let drift_budget_ticks = DeviceExecutor::new(config.device.clone()).drift_budget_ticks();
        Self {
            config,
            registry,
            queue: Vec::new(),
            next_id: 0,
            requests: 0,
            batches: 0,
            prewarms: 0,
            prewarmed_tiles: 0,
            retries: 0,
            sheds: 0,
            fault_cursor: 0,
            pending_transients: vec![0; budgets.len()],
            sequences: Vec::new(),
            tokens: 0,
            recalibrations: 0,
            recalibrated_tiles: 0,
            drift_budget_breaches: 0,
            drift_heals: 0,
            stage_panics: 0,
            drift_budget_ticks,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Admits a model into the registry.
    ///
    /// # Errors
    ///
    /// Returns [`AdmitError`] for residual networks or filter banks that
    /// do not cover the network.
    pub fn admit(&mut self, spec: ModelSpec) -> Result<ModelId, AdmitError> {
        self.registry.admit(spec)
    }

    /// Admits a model only if some chip has committed room for its full
    /// weight-stationary footprint — the admission-control variant the
    /// network server uses, so a catalog can never be oversubscribed past
    /// the cluster's cell budgets at admission time.
    ///
    /// # Errors
    ///
    /// Everything [`Self::admit`] returns, plus
    /// [`AdmitError::Capacity`] when no chip can commit the model.
    pub fn admit_strict(&mut self, spec: ModelSpec) -> Result<ModelId, AdmitError> {
        self.registry.admit_strict(spec)
    }

    /// The input tensor shape requests for `id` must carry.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this engine.
    #[must_use]
    pub fn input_shape(&self, id: ModelId) -> oxbar_nn::TensorShape {
        self.registry.input_shape(id)
    }

    /// The model cluster (for reports and catalog introspection). On a
    /// default configuration this is a single-chip cluster, behaviorally
    /// identical to the pre-cluster registry.
    #[must_use]
    pub fn registry(&self) -> &Cluster {
        &self.registry
    }

    /// Enqueues a request, returning its [`RequestId`], or a structured
    /// [`SubmitError`] for a request the engine cannot serve.
    ///
    /// Admission keeps the queue ordered by arrival tick: a request whose
    /// tick precedes already-queued ones is *inserted in order* (after
    /// every queued request with an equal-or-earlier tick, so equal ticks
    /// keep submission order). Concurrent connections routinely deliver
    /// non-monotonic ticks — ordered insertion makes that a non-event
    /// instead of the panic it used to be, and the batcher's
    /// non-decreasing-arrival precondition holds by construction.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`] for a model id this engine never
    /// admitted, [`SubmitError::ShapeMismatch`] when the input tensor's
    /// shape differs from the model's input layer, and
    /// [`SubmitError::MalformedTensor`] when the tensor's data length
    /// contradicts its own declared shape (possible only for tensors that
    /// bypassed [`oxbar_nn::reference::Tensor3::new`], e.g. wire
    /// deserialization).
    pub fn try_submit(&mut self, request: InferRequest) -> Result<RequestId, SubmitError> {
        if request.model.0 >= self.registry.len() {
            return Err(SubmitError::UnknownModel(request.model));
        }
        let expected = self.registry.input_shape(request.model);
        let got = request.input.shape();
        if got != expected {
            return Err(SubmitError::ShapeMismatch {
                model: request.model,
                expected,
                got,
            });
        }
        if request.input.data().len() != expected.elements() {
            return Err(SubmitError::MalformedTensor {
                expected: expected.elements(),
                got: request.input.data().len(),
            });
        }
        Ok(self.enqueue(request, None))
    }

    /// Appends a validated request to the queue in arrival order.
    fn enqueue(&mut self, request: InferRequest, sequence: Option<u64>) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let pos = self
            .queue
            .partition_point(|q| q.request.arrival <= request.arrival);
        self.queue.insert(
            pos,
            Queued {
                id,
                request,
                sequence,
            },
        );
        id
    }

    /// Begins an autoregressive generation sequence: `steps` greedy
    /// decode steps starting from `prompt`, the first arriving at
    /// `arrival` and each subsequent token `interval` ticks after the
    /// previous one completes. Token steps ride the ordinary queue — they
    /// batch with CNN traffic, route across chips, retry through
    /// transient faults, and fail over to replicas like any request — but
    /// step `t + 1` is submitted only when step `t` completes, so one
    /// sequence is a long-lived chain of requests rather than a burst.
    ///
    /// Token steps carry no deadline: a generation session is an open
    /// stream, not a deadline-bound query, so the failover shedder never
    /// drops one unless *no* healthy chip remains.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`] for an unadmitted model,
    /// [`SubmitError::NotLanguageModel`] when the model has no
    /// transformer weights, [`SubmitError::BadSteps`] for a zero or
    /// over-cap step count, and [`SubmitError::BadToken`] for a prompt
    /// outside the vocabulary.
    pub fn begin_sequence(
        &mut self,
        model: ModelId,
        prompt: u32,
        steps: usize,
        arrival: u64,
        interval: u64,
    ) -> Result<SequenceId, SubmitError> {
        if model.0 >= self.registry.len() {
            return Err(SubmitError::UnknownModel(model));
        }
        let spec = self.registry.spec(model);
        let Some(weights) = spec.lm.as_ref() else {
            return Err(SubmitError::NotLanguageModel(model));
        };
        if steps == 0 || steps > MAX_SEQUENCE_STEPS {
            return Err(SubmitError::BadSteps {
                steps,
                max: MAX_SEQUENCE_STEPS,
            });
        }
        let vocab = weights.config.vocab;
        if prompt as usize >= vocab {
            return Err(SubmitError::BadToken {
                model,
                token: prompt,
                vocab,
            });
        }
        let cache = KvCache::new(&weights.config);
        let seq_id = self.sequences.len() as u64;
        self.sequences.push(Sequence {
            model,
            cache,
            pos: 0,
            steps,
            next_token: prompt,
            interval,
            next_arrival: arrival,
            tokens: Vec::new(),
            finished: false,
            shed: false,
        });
        self.enqueue(token_request(model, prompt, arrival), Some(seq_id));
        Ok(SequenceId(seq_id))
    }

    /// The tokens sequence `id` has emitted so far, in decode order.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this engine.
    #[must_use]
    pub fn sequence_tokens(&self, id: SequenceId) -> &[u32] {
        &self.sequences[usize::try_from(id.0).expect("sequence id fits usize")].tokens
    }

    /// Whether sequence `id` has finished (completed every step, or was
    /// terminated by the fault handler — see [`Self::sequence_shed`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this engine.
    #[must_use]
    pub fn sequence_finished(&self, id: SequenceId) -> bool {
        self.sequences[usize::try_from(id.0).expect("sequence id fits usize")].finished
    }

    /// Whether the fault handler shed a step of sequence `id`,
    /// terminating it early.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this engine.
    #[must_use]
    pub fn sequence_shed(&self, id: SequenceId) -> bool {
        self.sequences[usize::try_from(id.0).expect("sequence id fits usize")].shed
    }

    /// Enqueues a request, returning its [`RequestId`].
    ///
    /// Infallible wrapper over [`Self::try_submit`] for in-process
    /// callers that construct requests from their own admitted ids.
    /// Out-of-order arrival ticks are fine — they insert in order.
    ///
    /// # Panics
    ///
    /// Panics if the model id is unknown or the input shape does not
    /// match the model (a caller bug; network edges use
    /// [`Self::try_submit`] and report [`SubmitError`] on the wire).
    pub fn submit(&mut self, request: InferRequest) -> RequestId {
        match self.try_submit(request) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Enqueues a request with no deadline, arriving at the same tick as
    /// the last queued request (tick 0 on an empty queue) — handy when
    /// the caller drives the engine round by round.
    pub fn submit_simple(
        &mut self,
        model: ModelId,
        input: oxbar_nn::reference::Tensor3,
    ) -> RequestId {
        let arrival = self.queue.last().map_or(0, |q| q.request.arrival);
        self.submit(InferRequest {
            model,
            input,
            arrival,
            deadline: None,
        })
    }

    /// Requests currently queued (submitted but not yet drained).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Processes the whole queue: forms batches, dispatches them in
    /// rounds of `workers`, enforces the cache budget between rounds, and
    /// returns one [`Completion`] per request in dispatch order (batch by
    /// batch; ascending [`RequestId`] within a batch).
    ///
    /// Dispatch order is a pure function of the queue and the policy;
    /// outputs are byte-identical for any worker count.
    pub fn drain(&mut self) -> Vec<Completion> {
        self.drain_timed().0
    }

    /// Like [`Self::drain`], additionally returning each batch's measured
    /// wall-clock execution time in milliseconds, indexed by `batch_seq`.
    ///
    /// The timings are observational only — nothing in the engine branches
    /// on them, so outputs stay deterministic. Feed them to
    /// [`crate::loadgen::replay_latencies`] to recover per-request
    /// latencies under a tick schedule.
    ///
    /// A batch's time measures its *execution* — window dedupe, batched
    /// MVMs, readout, accumulation. With the pipelined scheduler on
    /// ([`ServeConfig::prewarm`]), PCM programming for upcoming models
    /// runs on a concurrent prewarm stage and is deliberately not part of
    /// any batch's execution time (that is the point of the pipeline:
    /// programming leaves the serving critical path). Callers that want
    /// the end-to-end figure including off-path programming should time
    /// the whole drain call.
    pub fn drain_timed(&mut self) -> (Vec<Completion>, Vec<f64>) {
        let trace = self.drain_traced();
        (trace.completions, trace.batch_ms)
    }

    /// Like [`Self::drain_timed`], additionally returning the dispatch
    /// rounds the scheduler ran — which batches executed concurrently.
    ///
    /// The rounds are what make a latency replay honest: batches in one
    /// round run *in parallel* (via [`parallel_map`] across the worker
    /// pool), so a serial sum of their wall times overstates the
    /// pipeline's occupancy. Feed `rounds` to
    /// [`crate::loadgen::replay_latencies`].
    ///
    /// A drain runs **to idle**: completing one decode step of a
    /// sequence submits the next, so the scheduler keeps making passes
    /// over the regrown queue until no request — CNN or token — remains.
    /// Passes merge into one trace with continuous `batch_seq` numbering.
    pub fn drain_traced(&mut self) -> DrainTrace {
        let mut trace = self.drain_pass();
        while !self.queue.is_empty() {
            let more = self.drain_pass();
            let offset = trace.batch_ms.len();
            trace
                .completions
                .extend(more.completions.into_iter().map(|mut c| {
                    c.batch_seq += offset;
                    c
                }));
            trace.batch_ms.extend(more.batch_ms);
            trace.rounds.extend(
                more.rounds
                    .into_iter()
                    .map(|round| round.into_iter().map(|seq| seq + offset).collect()),
            );
            trace.sheds.extend(more.sheds);
        }
        trace
    }

    /// One scheduler pass over the current queue (the pre-sequence
    /// `drain_traced` body): batch, route, execute, enforce budgets.
    /// Token-step completions may submit follow-up requests — the
    /// [`Self::drain_traced`] loop picks those up in the next pass.
    fn drain_pass(&mut self) -> DrainTrace {
        let queue = std::mem::take(&mut self.queue);
        let keys: Vec<(ModelId, u64)> = queue
            .iter()
            .map(|q| (q.request.model, q.request.arrival))
            .collect();
        let batches = form_batches(&keys, self.config.policy);
        let workers = effective_workers(self.config.workers);
        let mut completions = Vec::with_capacity(queue.len());
        let mut timings = vec![0.0; batches.len()];
        let mut shed_notices: Vec<ShedNotice> = Vec::new();
        let round_size = workers.max(1);
        let seq_base = self.batches;
        // Drift bookkeeping at the drain boundary (single-threaded):
        // the virtual tile clock advances to the global dispatch
        // counter — a pure function of the trace, identical for every
        // worker count — then chips recalibrated back under the
        // accuracy budget heal, chips whose resident tiles crossed it
        // degrade, and the drain's recalibration plan is fixed. The
        // plan marks its tiles immediately (resetting their programming
        // age), so the compiled state every later readout derives is
        // decided here; the stage work riding the rounds below only
        // moves the reprogramming off the critical path. With aging
        // disabled all four calls are structurally inert.
        self.registry.set_clocks(seq_base);
        self.drift_heal_pass();
        self.drift_monitor_pass();
        let mut recal_plans = self.plan_recalibration();
        // Resolve the fault plan into one fate per batch, in global
        // dispatch-sequence order: which chip serves it, whether it
        // absorbs a transient, which members are shed. Doing this before
        // any round runs makes every fault decision a pure function of
        // the trace and the plan — identical for every worker count.
        let (fates, leftover_transients) = self.plan_fates(&batches, &queue, seq_base);
        // Batches route into rounds chip-aware: each round prefers
        // batches on distinct chips, so concurrent workers drive
        // different arrays. Replicated models spread successive batches
        // across their replicas (the fate's chip); on one chip this is
        // exactly `batches.chunks(round_size)`.
        let rounds = route_rounds(&batches, round_size, |b: &Batch| match fates[b.seq].chip {
            FateChip::Fixed(c) => c,
            FateChip::Primary | FateChip::Shed => self.registry.chip_of(b.model).0,
        });
        let mut pending = vec![true; batches.len()];
        // Pipeline fill: program the first models' tiles before the first
        // round dispatches, so not even batch 0 stalls on programming.
        if self.config.prewarm {
            for target in self.prewarm_targets(&batches, &pending, &[]) {
                self.run_prewarm_stage(target);
            }
        }
        // A chip kill is staged across two single-threaded round
        // boundaries: routing, recovery, and stats see the failure as
        // soon as the first post-kill batch's round arrives (`marks`),
        // but its executors die only once every pre-kill batch has
        // drained (`injections`) — round minimum sequence numbers are
        // strictly increasing, so a pre-kill batch can never trail the
        // injection point.
        let mut mark_cursor = self.fault_cursor;
        let mut inject_cursor = self.fault_cursor;
        for round_indices in &rounds {
            for &i in round_indices {
                pending[i] = false;
            }
            let min_seq = seq_base + *round_indices.first().expect("rounds are non-empty") as u64;
            let max_seq = seq_base + *round_indices.last().expect("rounds are non-empty") as u64;
            self.apply_fault_marks(&mut mark_cursor, max_seq);
            self.apply_fault_injections(&mut inject_cursor, min_seq);
            // Recoveries and transient arming, in dispatch-sequence
            // order at this single-threaded boundary.
            for &i in round_indices {
                let fate = &fates[i];
                if fate.recover
                    && self
                        .registry
                        .serving_residencies(batches[i].model)
                        .is_empty()
                {
                    self.registry.recover(batches[i].model);
                }
                if fate.transient {
                    if let FateChip::Fixed(chip) = fate.chip {
                        if let Some(exec) =
                            self.registry.executor_on(batches[i].model, ChipId(chip))
                        {
                            exec.inject_fault(InjectedFault::TileTransient { layer: 0, tile: 0 });
                        }
                    }
                }
            }
            let round: Vec<&Batch> = round_indices.iter().map(|&i| &batches[i]).collect();
            let targets = if self.config.prewarm {
                self.prewarm_targets(&batches, &pending, &round)
            } else {
                Vec::new()
            };
            // The next slice of planned recalibration work (at most one
            // stage per chip per round). A chip that failed since the
            // plan was fixed has its pending recals dropped structurally
            // here — never dispatched, never retried.
            let recal_chunks = self.take_recal_chunks(&mut recal_plans);
            // The prewarm stages program upcoming models' tiles (at most
            // one stage per chip) while this round executes — concurrent
            // threads when the dispatch pool has more than one worker; on
            // a serial configuration the scheduler interleaves the stages
            // between rounds instead of oversubscribing the core. Either
            // way every stage completes before the round's
            // budget-enforcement point, so the cache state every eviction
            // decision sees is deterministic, and the per-chip budget
            // guard in `prewarm_targets` guarantees a stage can never
            // force an eviction that lazy compilation would not have.
            let concurrent = workers > 1;
            let registry = &self.registry;
            let fates_ref = &fates;
            let (executed, stage_results, recal_panics) = std::thread::scope(|scope| {
                let stages: Vec<_> = if concurrent {
                    targets
                        .iter()
                        .map(|&model| scope.spawn(move || registry.prewarm(model)))
                        .collect()
                } else {
                    Vec::new()
                };
                let recals: Vec<_> = if concurrent {
                    recal_chunks
                        .iter()
                        .map(|&(chip, ref tiles)| {
                            scope.spawn(move || Self::run_recal_chunk(registry, chip, tiles))
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                let executed = parallel_map(&round, workers, |_, batch| {
                    let start = std::time::Instant::now();
                    let done = self.execute_fated(batch, &queue, &fates_ref[batch.seq]);
                    (done, start.elapsed().as_secs_f64() * 1e3)
                });
                // A panicked stage is contained at its join: stage work
                // is advisory (a skipped prewarm or recal only costs
                // latency, never correctness), so the scheduler counts
                // the panic and keeps serving instead of unwinding.
                let stage_results: Vec<Option<usize>> =
                    stages.into_iter().map(|h| h.join().ok()).collect();
                let recal_panics: u64 = recals
                    .into_iter()
                    .map(|h| u64::from(h.join().is_err()))
                    .sum();
                (executed, stage_results, recal_panics)
            });
            self.stage_panics += recal_panics;
            if concurrent {
                for prewarmed in stage_results {
                    match prewarmed {
                        Some(prewarmed) => {
                            self.prewarms += 1;
                            self.prewarmed_tiles += prewarmed as u64;
                        }
                        None => self.stage_panics += 1,
                    }
                }
            } else {
                for target in targets {
                    self.run_prewarm_stage(target);
                }
                for (chip, tiles) in &recal_chunks {
                    Self::run_recal_chunk(&self.registry, *chip, tiles);
                }
            }
            for (batch, (result, ms)) in round.iter().zip(executed) {
                self.registry.touch(batch.model);
                timings[batch.seq] = ms;
                let fate = &fates[batch.seq];
                // Planned fault bookkeeping: a re-route charges one
                // retry to the failed chip; planned sheds complete with
                // a structured notice.
                if fate.transient {
                    if let FateChip::Fixed(chip) = fate.chip {
                        self.retries += 1;
                        self.registry.note_retry(ChipId(chip));
                    }
                }
                if let Some(from) = fate.failed_from {
                    // A re-route only counts as a retry if something
                    // actually re-executes.
                    if !matches!(fate.chip, FateChip::Shed) && fate.shed.len() < batch.members.len()
                    {
                        self.retries += 1;
                        self.registry.note_retry(ChipId(from));
                    }
                }
                if !fate.shed.is_empty() {
                    let chip = fate
                        .failed_from
                        .unwrap_or_else(|| self.registry.chip_of(batch.model).0);
                    let detail = if matches!(fate.chip, FateChip::Shed) {
                        format!("no healthy chip left after chip {chip} failed")
                    } else {
                        format!(
                            "deadline unreachable after chip {chip} failed \
                             (failover penalty {} ticks)",
                            self.config.failover_penalty
                        )
                    };
                    self.shed_members(batch, &queue, &fate.shed, chip, &detail, &mut shed_notices);
                }
                match result {
                    Ok(done) => self.absorb_executions(done, &mut completions),
                    Err(failed_chip) => {
                        // The planned chip refused execution — a kill
                        // landed ahead of the plan (e.g. on a recovery
                        // destination). Re-resolve serially: surviving
                        // replicas, then snapshot recovery, then shed.
                        let (done, extra_ms) = self.execute_with_failover(
                            batch,
                            &queue,
                            fate,
                            failed_chip,
                            &mut shed_notices,
                        );
                        timings[batch.seq] += extra_ms;
                        self.absorb_executions(done, &mut completions);
                    }
                }
            }
            self.registry.enforce_budget();
        }
        // Recal work the rounds did not reach (short drains) flushes
        // here, so every tile the plan marked is reprogrammed within its
        // drain — the eager/lazy split never changes the cache counters.
        self.flush_recal_plans(&recal_plans);
        // Catch up fault state the round walk did not reach (events at
        // the tail of the drain), so stats read between drains agree
        // with the plan.
        if let Some(last) = batches.len().checked_sub(1) {
            let last_seq = seq_base + last as u64;
            self.apply_fault_marks(&mut mark_cursor, last_seq);
            self.apply_fault_injections(&mut inject_cursor, last_seq);
            self.fault_cursor = last_seq + 1;
        }
        self.pending_transients = leftover_transients;
        self.requests += completions.len() as u64;
        self.batches += batches.len() as u64;
        DrainTrace {
            completions,
            batch_ms: timings,
            rounds,
            sheds: shed_notices,
        }
    }

    /// Resolves the fault plan into one [`BatchFate`] per batch, walking
    /// batches in global dispatch-sequence order. Returns the fates and
    /// the per-chip transient faults still armed after the walk.
    ///
    /// The walk is pure: it reads cluster state but mutates nothing, so
    /// the plan every round later executes is fixed before the first
    /// round runs.
    fn plan_fates(
        &self,
        batches: &[Batch],
        queue: &[Queued],
        seq_base: u64,
    ) -> (Vec<BatchFate>, Vec<u64>) {
        let chips = self.registry.chip_count();
        let mut failed: Vec<bool> = (0..chips)
            .map(|c| self.registry.chip_health(ChipId(c)) == ChipHealth::Failed)
            .collect();
        let mut degraded: Vec<bool> = (0..chips)
            .map(|c| self.registry.chip_health(ChipId(c)) == ChipHealth::Degraded)
            .collect();
        let mut armed = self.pending_transients.clone();
        // Per-model residency chips; `None` marks "wherever the snapshot
        // recovery lands" (a non-failed chip by construction).
        let mut homes: Vec<Option<Vec<Option<usize>>>> = vec![None; self.registry.len()];
        let mut cursor = self.fault_cursor;
        let mut fates = Vec::with_capacity(batches.len());
        for (idx, batch) in batches.iter().enumerate() {
            let seq = seq_base + idx as u64;
            for event in self.config.fault_plan.events() {
                if event.round() < cursor || event.round() > seq || event.chip() >= chips {
                    continue;
                }
                match event {
                    FaultEvent::ChipKill { .. } => failed[event.chip()] = true,
                    FaultEvent::Drift { .. } => degraded[event.chip()] = true,
                    FaultEvent::TileTransient { .. } => armed[event.chip()] += 1,
                }
            }
            cursor = seq + 1;
            let home = homes[batch.model.0].get_or_insert_with(|| {
                self.registry
                    .residencies(batch.model)
                    .iter()
                    .map(|c| Some(c.0))
                    .collect()
            });
            // Serving preference: healthy replicas first, then degraded,
            // then failed; slot order within a class. A recovered home
            // (`None`) counts healthy. Requests load-balance across the
            // whole list by dispatch sequence, so replicas share traffic
            // and a failure only re-routes the failed chip's share.
            let rank = |h: &Option<usize>| match *h {
                None => 0,
                Some(c) if failed[c] => 2,
                Some(c) if degraded[c] => 1,
                Some(_) => 0,
            };
            let mut order: Vec<Option<usize>> = Vec::with_capacity(home.len());
            for class in 0..3 {
                order.extend(home.iter().filter(|h| rank(h) == class).copied());
            }
            let nominal = order[seq as usize % order.len()];
            let mut fate = match nominal {
                None => BatchFate {
                    chip: FateChip::Primary,
                    shed: Vec::new(),
                    failed_from: None,
                    transient: false,
                    recover: false,
                },
                Some(chip) if !failed[chip] => BatchFate {
                    chip: FateChip::Fixed(chip),
                    shed: Vec::new(),
                    failed_from: None,
                    transient: false,
                    recover: false,
                },
                Some(chip) => {
                    // Failover: re-route to the best surviving replica.
                    // Members whose deadline cannot absorb the re-route
                    // penalty are shed — the only path that ever sheds.
                    let target = order.iter().copied().find(|o| o.is_none_or(|t| !failed[t]));
                    let max_arrival = batch
                        .members
                        .iter()
                        .map(|&s| queue[s].request.arrival)
                        .max()
                        .unwrap_or(0);
                    let horizon = max_arrival.saturating_add(self.config.failover_penalty);
                    let shed: Vec<usize> = batch
                        .members
                        .iter()
                        .copied()
                        .filter(|&s| queue[s].request.deadline.is_some_and(|d| d < horizon))
                        .collect();
                    match target {
                        Some(t) => BatchFate {
                            chip: t.map_or(FateChip::Primary, FateChip::Fixed),
                            shed,
                            failed_from: Some(chip),
                            transient: false,
                            recover: false,
                        },
                        None if failed.iter().all(|&f| f) => BatchFate {
                            chip: FateChip::Shed,
                            shed: batch.members.clone(),
                            failed_from: Some(chip),
                            transient: false,
                            recover: false,
                        },
                        None => {
                            *home = vec![None];
                            BatchFate {
                                chip: FateChip::Primary,
                                shed,
                                failed_from: Some(chip),
                                transient: false,
                                recover: true,
                            }
                        }
                    }
                }
            };
            if let FateChip::Fixed(chip) = fate.chip {
                if armed[chip] > 0 && fate.shed.len() < batch.members.len() {
                    armed[chip] -= 1;
                    fate.transient = true;
                }
            }
            fates.push(fate);
        }
        (fates, armed)
    }

    /// Applies the health-marking half of kill/degrade events with
    /// rounds in `[*cursor, through]`, advancing the cursor. Routing,
    /// recovery destinations, and stats see the failure from here on.
    fn apply_fault_marks(&mut self, cursor: &mut u64, through: u64) {
        if *cursor > through {
            return;
        }
        let chips = self.registry.chip_count();
        let events: Vec<FaultEvent> = self
            .config
            .fault_plan
            .events()
            .iter()
            .filter(|e| e.round() >= *cursor && e.round() <= through && e.chip() < chips)
            .copied()
            .collect();
        for event in events {
            match event {
                FaultEvent::ChipKill { chip, .. } => self.registry.mark_chip_failed(ChipId(chip)),
                FaultEvent::Drift { chip, .. } => self.registry.degrade_chip(ChipId(chip)),
                FaultEvent::TileTransient { .. } => {}
            }
        }
        *cursor = through + 1;
    }

    /// Applies the executor-killing half of kill events with rounds in
    /// `[*cursor, before]`, advancing the cursor. `before` is the
    /// current round's minimum dispatch sequence: every batch planned
    /// before the kill has already drained, so no in-flight execute can
    /// be corrupted.
    fn apply_fault_injections(&mut self, cursor: &mut u64, before: u64) {
        if *cursor > before {
            return;
        }
        let chips = self.registry.chip_count();
        let events: Vec<FaultEvent> = self
            .config
            .fault_plan
            .events()
            .iter()
            .filter(|e| e.round() >= *cursor && e.round() <= before && e.chip() < chips)
            .copied()
            .collect();
        for event in events {
            if let FaultEvent::ChipKill { chip, .. } = event {
                self.registry.inject_chip_failure(ChipId(chip));
            }
        }
        *cursor = before + 1;
    }

    /// Folds a batch's executions into the completion list, advancing
    /// any sequences whose decode steps just finished. Runs serially at
    /// the round boundary — sequence state never mutates inside the
    /// parallel region.
    fn absorb_executions(&mut self, executed: Vec<Executed>, completions: &mut Vec<Completion>) {
        for e in executed {
            if let Some((seq_id, outcome)) = e.outcome {
                self.advance_sequence(seq_id, &outcome);
            }
            completions.push(e.completion);
        }
    }

    /// Applies one finished decode step: extends the KV cache, records
    /// the emitted token, and — if the sequence still has steps left —
    /// enqueues the next token request (the autoregressive feedback
    /// edge: step `t + 1` enters the queue only now).
    fn advance_sequence(&mut self, seq_id: u64, outcome: &StepOutcome) {
        self.tokens += 1;
        let sequence = &mut self.sequences[usize::try_from(seq_id).expect("sequence id")];
        sequence.cache.apply(outcome);
        sequence.pos += 1;
        sequence.tokens.push(outcome.next_token);
        sequence.next_token = outcome.next_token;
        if sequence.pos < sequence.steps {
            sequence.next_arrival = sequence.next_arrival.saturating_add(sequence.interval);
            let model = sequence.model;
            let token = sequence.next_token;
            let arrival = sequence.next_arrival;
            self.enqueue(token_request(model, token, arrival), Some(seq_id));
        } else {
            sequence.finished = true;
        }
    }

    /// Records shed members: engine + chip counters and one structured
    /// notice per request.
    fn shed_members(
        &mut self,
        batch: &Batch,
        queue: &[Queued],
        slots: &[usize],
        chip: usize,
        detail: &str,
        notices: &mut Vec<ShedNotice>,
    ) {
        for &slot in slots {
            let q = &queue[slot];
            self.sheds += 1;
            self.registry.note_shed(ChipId(chip));
            if let Some(seq_id) = q.sequence {
                // Shedding a decode step ends its whole sequence: no
                // further token is enqueued, and the client is told via
                // the notice (plus the `shed` accessor).
                let sequence = &mut self.sequences[usize::try_from(seq_id).expect("sequence id")];
                sequence.finished = true;
                sequence.shed = true;
            }
            notices.push(ShedNotice {
                id: q.id,
                model: batch.model,
                arrival: q.request.arrival,
                deadline: q.request.deadline,
                detail: detail.to_string(),
            });
        }
    }

    /// Serial fallback when a batch's planned chip refused execution at
    /// run time: walk the surviving replicas, then snapshot-recover,
    /// then shed what remains. Returns the completions and the extra
    /// wall time spent.
    fn execute_with_failover(
        &mut self,
        batch: &Batch,
        queue: &[Queued],
        fate: &BatchFate,
        failed_chip: usize,
        notices: &mut Vec<ShedNotice>,
    ) -> (Vec<Executed>, f64) {
        let start = std::time::Instant::now();
        self.retries += 1;
        self.registry.note_retry(ChipId(failed_chip));
        let mut avoid = vec![failed_chip];
        let mut recovered = false;
        loop {
            let candidate = self
                .registry
                .serving_residencies(batch.model)
                .into_iter()
                .map(|c| c.0)
                .find(|c| !avoid.contains(c));
            let Some(chip) = candidate else {
                if recovered || self.registry.recover(batch.model).is_none() {
                    // Nothing left to run on: shed every surviving member.
                    let remaining: Vec<usize> = batch
                        .members
                        .iter()
                        .copied()
                        .filter(|s| !fate.shed.contains(s))
                        .collect();
                    let detail = format!("no healthy chip left after chip {failed_chip} failed");
                    self.shed_members(batch, queue, &remaining, failed_chip, &detail, notices);
                    return (Vec::new(), start.elapsed().as_secs_f64() * 1e3);
                }
                // A fresh restore is healthy even on a chip whose old
                // executors died, so retry the full serving list.
                recovered = true;
                avoid.clear();
                continue;
            };
            let executor = self
                .registry
                .executor_on(batch.model, ChipId(chip))
                .expect("serving residency has an executor");
            match self.execute_on(batch, queue, executor, &fate.shed) {
                Ok(done) => return (done, start.elapsed().as_secs_f64() * 1e3),
                Err(_) => {
                    avoid.push(chip);
                    self.retries += 1;
                    self.registry.note_retry(ChipId(chip));
                }
            }
        }
    }

    /// Runs one prewarm stage synchronously, updating the stage counters.
    fn run_prewarm_stage(&mut self, target: ModelId) {
        let prewarmed = self.registry.prewarm(target);
        self.prewarms += 1;
        self.prewarmed_tiles += prewarmed as u64;
    }

    /// Whether the device config ages resident tiles with a bounded
    /// accuracy budget — the master gate on the drift machinery. False
    /// keeps every drift pass structurally inert.
    fn drift_aging_active(&self) -> bool {
        self.drift_budget_ticks.is_some()
    }

    /// Whether any resident tile on `chip` is older than the accuracy
    /// budget (its worst-case transmission may have slipped past half an
    /// LSB since programming).
    fn chip_over_budget(&self, chip: usize) -> bool {
        let Some(budget) = self.drift_budget_ticks else {
            return false;
        };
        (0..self.registry.len()).any(|m| {
            self.registry
                .executor_on(ModelId(m), ChipId(chip))
                .and_then(DeviceExecutor::max_tile_age)
                .is_some_and(|age| age > budget)
        })
    }

    /// Heals drift-degraded chips whose resident tiles are all back
    /// under the accuracy budget (recalibrated in an earlier drain).
    /// Runs at the drain boundary *before* the monitor, so a heal and a
    /// re-breach in the same drain resolve to Degraded, and the
    /// Degraded→Healthy transition is visible between drains (the wire
    /// server broadcasts it like any other health change).
    fn drift_heal_pass(&mut self) {
        if !self.drift_aging_active() {
            return;
        }
        for chip in 0..self.registry.chip_count() {
            if self.registry.chip_health(ChipId(chip)) == ChipHealth::Degraded
                && !self.chip_over_budget(chip)
            {
                self.drift_heals += 1;
                self.registry.heal_chip(ChipId(chip));
            }
        }
    }

    /// The drift health monitor: promotes a healthy chip to
    /// [`ChipHealth::Degraded`] when any resident tile's projected error
    /// crossed the accuracy budget, counting one breach per promotion.
    fn drift_monitor_pass(&mut self) {
        if !self.drift_aging_active() {
            return;
        }
        for chip in 0..self.registry.chip_count() {
            if self.registry.chip_health(ChipId(chip)) == ChipHealth::Healthy
                && self.chip_over_budget(chip)
            {
                self.drift_budget_breaches += 1;
                self.registry.degrade_chip(ChipId(chip));
            }
        }
    }

    /// Fixes this drain's recalibration plan: per serving chip, the
    /// oldest over-budget tiles (bounded per drain), oldest first with a
    /// stable `(model, layer, tile)` tiebreak. Every selected tile is
    /// **marked** here — its programming age resets at this
    /// single-threaded boundary, so the state later readouts derive is
    /// decided by the plan alone; the returned plans only carry the
    /// reprogramming work to the stage slots. Chips already failed are
    /// skipped structurally (a recal never targets a dead chip).
    fn plan_recalibration(&mut self) -> Vec<RecalPlan> {
        if !self.config.recalibration || !self.drift_aging_active() {
            return Vec::new();
        }
        let budget = self.drift_budget_ticks.unwrap_or(u64::MAX);
        let mut plans = Vec::new();
        for chip in 0..self.registry.chip_count() {
            if !self.registry.chip_health(ChipId(chip)).serves() {
                continue;
            }
            // (age, model, layer, tile) over-budget candidates; channel
            // states collapse to one entry per tile.
            let mut candidates: Vec<(u64, usize, usize, usize)> = Vec::new();
            for model in 0..self.registry.len() {
                let Some(exec) = self.registry.executor_on(ModelId(model), ChipId(chip)) else {
                    continue;
                };
                for info in exec.tile_ages() {
                    if info.age_ticks > budget
                        && !candidates
                            .iter()
                            .any(|&(_, m, l, t)| m == model && l == info.layer && t == info.tile)
                    {
                        candidates.push((info.age_ticks, model, info.layer, info.tile));
                    }
                }
            }
            if candidates.is_empty() {
                continue;
            }
            candidates.sort_unstable_by(|a, b| {
                b.0.cmp(&a.0)
                    .then_with(|| (a.1, a.2, a.3).cmp(&(b.1, b.2, b.3)))
            });
            candidates.truncate(MAX_RECALS_PER_DRAIN);
            let mut tiles = Vec::with_capacity(candidates.len());
            for &(_, model, layer, tile) in &candidates {
                if let Some(exec) = self.registry.executor_on(ModelId(model), ChipId(chip)) {
                    if exec.mark_recalibrated(layer, tile) > 0 {
                        self.recalibrated_tiles += 1;
                        tiles.push((ModelId(model), layer, tile));
                    }
                }
            }
            if !tiles.is_empty() {
                self.recalibrations += 1;
                plans.push(RecalPlan { chip, tiles });
            }
        }
        plans
    }

    /// Pops the next round's slice of recal work: up to
    /// [`MAX_RECAL_TILES_PER_ROUND`] tiles per chip. Plans whose chip
    /// failed since the drain boundary are dropped structurally — their
    /// remaining tiles are cleared, never dispatched or retried.
    fn take_recal_chunks(&self, plans: &mut [RecalPlan]) -> Vec<RecalChunk> {
        let mut chunks = Vec::new();
        for plan in plans {
            if plan.tiles.is_empty() {
                continue;
            }
            if !self.registry.chip_health(ChipId(plan.chip)).serves() {
                plan.tiles.clear();
                continue;
            }
            let take = plan.tiles.len().min(MAX_RECAL_TILES_PER_ROUND);
            chunks.push((plan.chip, plan.tiles.drain(..take).collect()));
        }
        chunks
    }

    /// Reprograms one chunk of recalibration work: the eager
    /// re-derivation of tiles the drain's plan already marked. Safe to
    /// run concurrently with the round — re-derivation is single-flight
    /// against the execution path, and the resulting state is
    /// bit-identical whether this stage or a lazy read gets there first.
    fn run_recal_chunk(registry: &Cluster, chip: usize, tiles: &[(ModelId, usize, usize)]) {
        for &(model, layer, tile) in tiles {
            if let Some(exec) = registry.executor_on(model, ChipId(chip)) {
                exec.rederive_tile(layer, tile);
            }
        }
    }

    /// Serially reprograms any planned recal work the rounds did not
    /// reach, so a plan always completes within its drain (dead chips
    /// excepted — their work is dropped).
    fn flush_recal_plans(&self, plans: &[RecalPlan]) {
        for plan in plans {
            if plan.tiles.is_empty() || !self.registry.chip_health(ChipId(plan.chip)).serves() {
                continue;
            }
            Self::run_recal_chunk(&self.registry, plan.chip, &plan.tiles);
        }
    }

    /// Picks the prewarm-stage targets to run alongside the current
    /// round: at most one model per chip, chosen as the first pending
    /// (not-yet-dispatched) model in queue order that is not executing in
    /// the round, is not fully resident, and whose missing tiles are
    /// guaranteed to fit its *chip's* cell budget even after every round
    /// model on that chip finishes compiling its own tiles. The first
    /// eligible candidate per chip decides — if it does not fit, the chip
    /// gets no stage this round. The guard is conservative on purpose: a
    /// skipped prewarm only costs speed, while an over-eager one could
    /// evict (or migrate) and change the engine's eviction sequence. On a
    /// single chip this reproduces the pre-cluster single-target stage
    /// exactly.
    fn prewarm_targets(
        &self,
        batches: &[Batch],
        pending: &[bool],
        round: &[&Batch],
    ) -> Vec<ModelId> {
        let chips = self.registry.chip_count();
        let in_round = |m: ModelId| round.iter().any(|b| b.model == m);
        // Worst-case per-chip occupancy once this round's own lazy
        // compiles land.
        let mut projected: Vec<usize> = (0..chips)
            .map(|c| self.registry.chip_occupancy(ChipId(c)))
            .collect();
        let mut counted: Vec<ModelId> = Vec::new();
        for batch in round {
            if !counted.contains(&batch.model) {
                counted.push(batch.model);
                projected[self.registry.chip_of(batch.model).0] += self
                    .registry
                    .footprint_cells(batch.model)
                    .saturating_sub(self.registry.resident_cells(batch.model));
            }
        }
        let mut decided = vec![false; chips];
        let mut targets = Vec::new();
        for (idx, batch) in batches.iter().enumerate() {
            if decided.iter().all(|&d| d) {
                break;
            }
            let model = batch.model;
            if !pending[idx] || in_round(model) {
                continue;
            }
            let chip = self.registry.chip_of(model).0;
            if decided[chip] || self.registry.chip_health(ChipId(chip)) == ChipHealth::Failed {
                continue;
            }
            let missing = self
                .registry
                .footprint_cells(model)
                .saturating_sub(self.registry.resident_cells(model));
            if missing == 0 {
                continue;
            }
            decided[chip] = true;
            if projected[chip] + missing <= self.registry.chip(ChipId(chip)).budget() {
                targets.push(model);
            }
        }
        targets
    }

    /// Executes a batch per its fate. `Err(chip)` reports a chip that
    /// refused execution at run time (handled by the serial failover
    /// fallback at the round boundary — never inside the parallel
    /// region, so recovery stays deterministic).
    fn execute_fated(
        &self,
        batch: &Batch,
        queue: &[Queued],
        fate: &BatchFate,
    ) -> Result<Vec<Executed>, usize> {
        if matches!(fate.chip, FateChip::Shed) || fate.shed.len() >= batch.members.len() {
            return Ok(Vec::new());
        }
        let (chip, executor) = match fate.chip {
            FateChip::Fixed(c) => match self.registry.executor_on(batch.model, ChipId(c)) {
                Some(exec) => (c, exec),
                // The residency moved (migration) since planning; the
                // primary executor is output-identical.
                None => (
                    self.registry.chip_of(batch.model).0,
                    self.registry.executor(batch.model),
                ),
            },
            FateChip::Primary | FateChip::Shed => (
                self.registry.chip_of(batch.model).0,
                self.registry.executor(batch.model),
            ),
        };
        self.execute_on(batch, queue, executor, &fate.shed)
            .map_err(|_| chip)
    }

    /// Runs every non-shed member of a batch on one executor, retrying
    /// through transient tile faults (bounded at [`MAX_TILE_RETRIES`] per
    /// member — a one-shot transient needs exactly one). Members carrying
    /// a sequence id run one decode step via [`lm_step`] instead of a
    /// CNN forward; reading `self.sequences` here is safe because a
    /// sequence has at most one step in flight per pass.
    fn execute_on(
        &self,
        batch: &Batch,
        queue: &[Queued],
        executor: &DeviceExecutor,
        shed: &[usize],
    ) -> Result<Vec<Executed>, ExecError> {
        let spec = self.registry.spec(batch.model);
        let survivors: Vec<usize> = batch
            .members
            .iter()
            .copied()
            .filter(|s| !shed.contains(s))
            .collect();
        let mut out = Vec::with_capacity(survivors.len());
        for &slot in &survivors {
            let q = &queue[slot];
            if let Some(seq_id) = q.sequence {
                let sequence = &self.sequences[usize::try_from(seq_id).expect("sequence id")];
                let weights = spec.lm.as_ref().expect("sequence targets a language model");
                let mut attempts = 0usize;
                let step = loop {
                    match lm_step(
                        executor,
                        &spec.network,
                        &spec.filters,
                        weights,
                        &sequence.cache,
                        sequence.next_token,
                        sequence.pos,
                    ) {
                        Ok(step) => break step,
                        Err(ExecError::TileFault { .. }) if attempts < MAX_TILE_RETRIES => {
                            attempts += 1;
                        }
                        Err(e) => return Err(e),
                    }
                };
                let completion = Completion {
                    id: q.id,
                    model: batch.model,
                    arrival: q.request.arrival,
                    deadline: q.request.deadline,
                    output: Tensor3::new(TensorShape::flat(step.logits.len()), step.logits.clone()),
                    batch_seq: batch.seq,
                    batch_size: survivors.len(),
                    sequence: Some(TokenCompletion {
                        sequence: SequenceId(seq_id),
                        step: sequence.pos,
                        token: step.next_token,
                        done: sequence.pos + 1 >= sequence.steps,
                    }),
                };
                out.push(Executed {
                    completion,
                    outcome: Some((seq_id, step)),
                });
                continue;
            }
            let mut attempts = 0usize;
            let forward = loop {
                match executor.try_forward(&spec.network, &q.request.input, &spec.filters) {
                    Ok(forward) => break forward,
                    Err(ExecError::TileFault { .. }) if attempts < MAX_TILE_RETRIES => {
                        attempts += 1;
                    }
                    Err(e) => return Err(e),
                }
            };
            out.push(Executed {
                completion: Completion {
                    id: q.id,
                    model: batch.model,
                    arrival: q.request.arrival,
                    deadline: q.request.deadline,
                    output: forward.output,
                    batch_seq: batch.seq,
                    batch_size: survivors.len(),
                    sequence: None,
                },
                outcome: None,
            });
        }
        Ok(out)
    }

    /// Aggregate statistics since engine creation.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.requests,
            batches: self.batches,
            evictions: self.registry.evictions(),
            prewarms: self.prewarms,
            prewarmed_tiles: self.prewarmed_tiles,
            occupancy_cells: self.registry.occupancy(),
            budget_cells: self.registry.budget(),
            models: self.registry.cache_stats(),
            migrations: self.registry.migrations(),
            chips: self.registry.chip_stats(),
            retries: self.retries,
            sheds: self.sheds,
            recoveries: self.registry.recoveries(),
            recovery_ms: self.registry.recovery_ms(),
            sequences: self.sequences.len() as u64,
            tokens: self.tokens,
            recalibrations: self.recalibrations,
            recalibrated_tiles: self.recalibrated_tiles,
            drift_budget_breaches: self.drift_budget_breaches,
            drift_heals: self.drift_heals,
            stage_panics: self.stage_panics,
        }
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("models", &self.registry.len())
            .field("queued", &self.queue.len())
            .field("requests", &self.requests)
            .field("batches", &self.batches)
            .finish()
    }
}

/// Builds the queued request for one decode step of a sequence. The
/// input tensor carries only the step's token — the engine keys the real
/// state (the KV cache) off the sequence id — and the deadline is `None`:
/// token steps are never deadline-shed, only all-chips-failed can shed
/// them.
fn token_request(model: ModelId, token: u32, arrival: u64) -> InferRequest {
    InferRequest {
        model,
        input: Tensor3::new(TensorShape::flat(1), vec![i64::from(token)]),
        arrival,
        deadline: None,
    }
}

/// Resolves a worker count (0 = all cores).
fn effective_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use oxbar_nn::synthetic;

    #[test]
    fn drain_completes_every_request_once() {
        let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)));
        let lenet = engine.admit(catalog::lenet5_model()).unwrap();
        let mobile = engine.admit(catalog::mobilenet_sample()).unwrap();
        for i in 0..6u64 {
            let model = if i % 2 == 0 { lenet } else { mobile };
            let input = synthetic::activations(engine.input_shape(model), 6, i);
            engine.submit(InferRequest {
                model,
                input,
                arrival: i,
                deadline: Some(i + 100),
            });
        }
        assert_eq!(engine.queued(), 6);
        let done = engine.drain();
        assert_eq!(engine.queued(), 0);
        let mut ids: Vec<u64> = done.iter().map(|c| c.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
        let stats = engine.stats();
        assert_eq!(stats.requests, 6);
        assert!(stats.batches <= 4, "same-model requests coalesce");
        assert!(stats.mean_batch_size() > 1.0);
    }

    #[test]
    fn second_drain_is_weight_stationary() {
        let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)));
        let lenet = engine.admit(catalog::lenet5_model()).unwrap();
        let input = synthetic::activations(engine.input_shape(lenet), 6, 0);
        engine.submit_simple(lenet, input.clone());
        engine.drain();
        let cold_misses = engine.stats().models[0].cache.misses;
        engine.submit_simple(lenet, input);
        engine.drain();
        let stats = engine.stats();
        assert_eq!(stats.models[0].cache.misses, cold_misses, "no recompiles");
        assert!(stats.hit_rate() > 0.0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    #[should_panic(expected = "input shape must match")]
    fn wrong_shape_is_rejected_at_submit() {
        let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)));
        let lenet = engine.admit(catalog::lenet5_model()).unwrap();
        let wrong = synthetic::activations(oxbar_nn::TensorShape::new(4, 4, 1), 6, 0);
        engine.submit_simple(lenet, wrong);
    }

    #[test]
    fn try_submit_returns_structured_errors() {
        let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)));
        let lenet = engine.admit(catalog::lenet5_model()).unwrap();
        let shape = engine.input_shape(lenet);
        let unknown = engine.try_submit(InferRequest {
            model: ModelId(7),
            input: synthetic::activations(shape, 6, 0),
            arrival: 0,
            deadline: None,
        });
        assert_eq!(unknown, Err(SubmitError::UnknownModel(ModelId(7))));
        let wrong_shape = oxbar_nn::TensorShape::new(4, 4, 1);
        let mismatch = engine.try_submit(InferRequest {
            model: lenet,
            input: synthetic::activations(wrong_shape, 6, 0),
            arrival: 0,
            deadline: None,
        });
        assert_eq!(
            mismatch,
            Err(SubmitError::ShapeMismatch {
                model: lenet,
                expected: shape,
                got: wrong_shape,
            })
        );
        assert_eq!(engine.queued(), 0, "rejected requests never queue");
    }

    #[test]
    fn out_of_order_submissions_insert_in_arrival_order() {
        let mut engine = ServeEngine::new(
            ServeConfig::new(SimConfig::ideal(64, 64)).with_policy(BatchPolicy::SINGLE),
        );
        let lenet = engine.admit(catalog::lenet5_model()).unwrap();
        // A misbehaving (or merely concurrent) client stream: ticks
        // arrive 5, 2, 9, 2 — non-monotonic and with a duplicate.
        for (i, arrival) in [5u64, 2, 9, 2].into_iter().enumerate() {
            let input = synthetic::activations(engine.input_shape(lenet), 6, i as u64);
            engine
                .try_submit(InferRequest {
                    model: lenet,
                    input,
                    arrival,
                    deadline: None,
                })
                .expect("out-of-order ticks are not an error");
        }
        let done = engine.drain();
        let order: Vec<(u64, u64)> = done.iter().map(|c| (c.arrival, c.id.0)).collect();
        // Queue drains in arrival order; the two tick-2 requests keep
        // their submission order (id 1 before id 3).
        assert_eq!(order, vec![(2, 1), (2, 3), (5, 0), (9, 2)]);
    }

    #[test]
    fn sequence_decodes_match_the_oracle_and_finish() {
        use oxbar_nn::transformer::{generate, OracleEngine};
        let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)));
        let spec = catalog::llm_tiny();
        let weights = spec.lm.clone().expect("llm_tiny is a language model");
        let llm = engine.admit(spec).unwrap();
        let seq = engine.begin_sequence(llm, 3, 8, 0, 1).unwrap();
        let done = engine.drain();
        assert!(engine.sequence_finished(seq));
        assert!(!engine.sequence_shed(seq));

        let mut oracle = OracleEngine::new(&weights);
        let want: Vec<u32> = generate(&weights, &mut oracle, 3, 8)
            .expect("oracle is infallible")
            .into_iter()
            .map(|s| s.next_token)
            .collect();
        assert_eq!(
            engine.sequence_tokens(seq),
            &want[..],
            "ideal device == oracle"
        );

        // Every step surfaced as a Completion on the sequence, in step
        // order, with `done` exactly on the last.
        let steps: Vec<(usize, u32, bool)> = done
            .iter()
            .filter_map(|c| c.sequence.as_ref())
            .filter(|t| t.sequence == seq)
            .map(|t| (t.step, t.token, t.done))
            .collect();
        assert_eq!(steps.len(), 8);
        for (i, (step, token, last)) in steps.iter().enumerate() {
            assert_eq!(*step, i, "steps complete in order");
            assert_eq!(*token, want[i]);
            assert_eq!(*last, i == 7, "done marks exactly the final step");
        }
        let stats = engine.stats();
        assert_eq!(stats.sequences, 1);
        assert_eq!(stats.tokens, 8);
    }

    #[test]
    fn mixed_cnn_and_llm_drain_is_worker_invariant() {
        let run = |workers: usize| {
            let mut engine =
                ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)).with_workers(workers));
            let lenet = engine.admit(catalog::lenet5_model()).unwrap();
            let llm = engine.admit(catalog::llm_tiny()).unwrap();
            let a = engine.begin_sequence(llm, 1, 6, 0, 1).unwrap();
            let b = engine.begin_sequence(llm, 9, 6, 0, 1).unwrap();
            for i in 0..4u64 {
                let input = synthetic::activations(engine.input_shape(lenet), 6, i);
                engine.submit(InferRequest {
                    model: lenet,
                    input,
                    arrival: i,
                    deadline: Some(i + 100),
                });
            }
            let done = engine.drain();
            let tokens = (
                engine.sequence_tokens(a).to_vec(),
                engine.sequence_tokens(b).to_vec(),
            );
            (done, tokens)
        };
        let (done1, tokens1) = run(1);
        let (done4, tokens4) = run(4);
        assert_eq!(tokens1, tokens4, "token streams are worker-invariant");
        assert_eq!(done1, done4, "mixed traffic is byte-identical");
        assert_eq!(
            done1.len(),
            4 + 12,
            "4 CNN requests + 2 sequences x 6 steps"
        );
    }

    #[test]
    fn begin_sequence_rejects_structured() {
        let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)));
        let lenet = engine.admit(catalog::lenet5_model()).unwrap();
        let llm = engine.admit(catalog::llm_tiny()).unwrap();
        assert_eq!(
            engine.begin_sequence(ModelId(9), 0, 4, 0, 1),
            Err(SubmitError::UnknownModel(ModelId(9)))
        );
        assert_eq!(
            engine.begin_sequence(lenet, 0, 4, 0, 1),
            Err(SubmitError::NotLanguageModel(lenet))
        );
        assert_eq!(
            engine.begin_sequence(llm, 0, 0, 0, 1),
            Err(SubmitError::BadSteps {
                steps: 0,
                max: MAX_SEQUENCE_STEPS
            })
        );
        assert_eq!(
            engine.begin_sequence(llm, 77, 4, 0, 1),
            Err(SubmitError::BadToken {
                model: llm,
                token: 77,
                vocab: 32
            })
        );
        assert_eq!(engine.queued(), 0, "rejected sequences never queue");
    }
}
