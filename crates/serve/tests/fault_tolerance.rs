//! Fault-injection properties of the serving engine.
//!
//! The contract under test: a [`FaultPlan`] keyed on the global batch
//! dispatch counter makes every fault decision — failover target, retry
//! count, shed set, recovery — a pure function of the trace and the
//! plan, so it is invariant under the dispatch worker count; and because
//! replicas share each model's admission seed (and recovery restores
//! programmed state bit-exactly from the PCM snapshot), every request
//! that survives answers byte-identically to a cluster that never
//! faulted. Nothing is ever silently lost: every submitted request ends
//! as exactly one completion or one structured shed notice.

use oxbar_nn::synthetic::{self, small_network};
use oxbar_serve::request::request_seed;
use oxbar_serve::{
    catalog, BatchPolicy, ChipHealth, FaultPlan, InferRequest, ModelId, ModelSpec, PlacementPolicy,
    RequestId, ServeConfig, ServeEngine, ShedNotice,
};
use oxbar_sim::SimConfig;
use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::BTreeMap;

/// Two random small sequential networks as the resident models.
fn random_specs(seed: u64) -> [ModelSpec; 2] {
    [
        catalog::spec_from_network(small_network(seed), seed ^ 0x11),
        catalog::spec_from_network(small_network(seed ^ 0x7F3), seed ^ 0x22),
    ]
}

/// Everything a faulted run must keep invariant under the worker count.
struct FaultedRun {
    /// Request id → output values, survivors only.
    outputs: BTreeMap<RequestId, Vec<i64>>,
    /// Structured shed notices, sorted by request id.
    sheds: Vec<ShedNotice>,
    stats: oxbar_serve::EngineStats,
}

/// Runs an `n`-request trace (mixed across `specs`, arrivals `i / 2`,
/// deadlines chosen by `deadline_of`) through an engine built from
/// `config`, one drain.
fn faulted_trace(
    config: ServeConfig,
    specs: &[ModelSpec],
    seed: u64,
    n: u64,
    deadline_of: impl Fn(u64, u64) -> Option<u64>,
) -> FaultedRun {
    let mut engine = ServeEngine::new(config);
    let ids: Vec<ModelId> = specs
        .iter()
        .map(|s| engine.admit(s.clone()).expect("small models admit"))
        .collect();
    for i in 0..n {
        let which = (request_seed(seed, i) % specs.len() as u64) as usize;
        let arrival = i / 2;
        engine.submit(InferRequest {
            model: ids[which],
            input: synthetic::activations(
                specs[which].network.input(),
                6,
                request_seed(seed ^ 0xBEEF, i),
            ),
            arrival,
            deadline: deadline_of(i, arrival),
        });
    }
    let trace = engine.drain_traced();
    let outputs = trace
        .completions
        .iter()
        .map(|c| (c.id, c.output.data().to_vec()))
        .collect();
    let mut sheds = trace.sheds;
    sheds.sort_by_key(|s| s.id);
    FaultedRun {
        outputs,
        sheds,
        stats: engine.stats(),
    }
}

/// Body of the worker-count invariance property, kept outside the
/// `proptest!` macro (the shim's token-munching expansion can't swallow
/// a body this long).
fn check_worker_count_invariance(seed: u64) -> Result<(), TestCaseError> {
    let specs = random_specs(seed);
    let device = SimConfig::ideal(32, 16).with_seed(seed).with_threads(1);
    let n = 10u64;
    let plan = FaultPlan::new()
        .kill_chip(seed % 6, (seed % 3) as usize)
        .tile_transient((seed / 7) % 8, ((seed / 3) % 3) as usize)
        .drift((seed / 11) % 8, ((seed / 5) % 3) as usize);
    let base = ServeConfig::new(device)
        .with_policy(BatchPolicy::new(1 + (seed % 3) as usize, seed % 5))
        .with_chips(vec![200_000; 3])
        .with_placement(PlacementPolicy::Replicated(2))
        .with_failover_penalty(seed % 8)
        .with_faults(plan);
    // Tight deadlines on a third of the trace so the deadline-shed rule
    // gets exercised when the kill lands mid-trace.
    let deadline_of = |i: u64, arrival: u64| {
        if request_seed(seed ^ 0xD1E, i).is_multiple_of(3) {
            Some(arrival + 1)
        } else {
            None
        }
    };
    let serial = faulted_trace(base.clone().with_workers(1), &specs, seed, n, deadline_of);
    let wide = faulted_trace(base.clone().with_workers(3), &specs, seed, n, deadline_of);

    // Conservation: every request completes or sheds, never both, never
    // neither.
    for run in [&serial, &wide] {
        prop_assert_eq!(run.outputs.len() + run.sheds.len(), n as usize);
        prop_assert!(run.sheds.iter().all(|s| !run.outputs.contains_key(&s.id)));
        prop_assert_eq!(run.stats.sheds, run.sheds.len() as u64);
    }

    // Worker-count invariance of everything a client can observe.
    prop_assert_eq!(&serial.outputs, &wide.outputs);
    let shed_ids = |run: &FaultedRun| run.sheds.iter().map(|s| s.id).collect::<Vec<_>>();
    prop_assert_eq!(shed_ids(&serial), shed_ids(&wide));
    prop_assert_eq!(serial.stats.retries, wide.stats.retries);
    prop_assert_eq!(serial.stats.recoveries, wide.stats.recoveries);

    // Survivors answer byte-identically to a cluster that never faulted:
    // replicas and snapshot recovery share the admission seed, so
    // failover is invisible in outputs.
    let oracle = faulted_trace(
        base.with_faults(FaultPlan::new()).with_workers(1),
        &specs,
        seed,
        n,
        deadline_of,
    );
    prop_assert!(oracle.sheds.is_empty(), "no faults → nothing sheds");
    for (id, output) in &serial.outputs {
        prop_assert_eq!(Some(output), oracle.outputs.get(id));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // A fixed fault plan on a replicated 3-chip cluster: worker count
    // changes nothing observable (outputs, shed set, retry/shed/recovery
    // counters), no request is lost, and every survivor answers exactly
    // what the never-faulted oracle answers.
    #[test]
    fn faulted_serving_is_worker_count_invariant_and_loses_nothing(seed in 0u64..10_000) {
        check_worker_count_invariance(seed)?;
    }
}

#[test]
fn replicated_cluster_survives_a_mid_trace_chip_kill_without_recovery() {
    // One model replicated on both chips; chip 1 dies mid-trace. Requests
    // whose turn fell on chip 1 fail over to its replica — no snapshot
    // recovery, no sheds, zero lost — and answer exactly what the
    // no-fault cluster answers.
    let specs = random_specs(42);
    let device = SimConfig::ideal(32, 16).with_seed(42).with_threads(1);
    let base = ServeConfig::new(device)
        .with_policy(BatchPolicy::new(1, 0)) // one request per batch: seq == submit order
        .with_chips(vec![200_000, 200_000])
        .with_placement(PlacementPolicy::Replicated(2));
    let run = faulted_trace(
        base.clone().with_faults(FaultPlan::new().kill_chip(4, 1)),
        &specs,
        42,
        8,
        |_, _| None,
    );
    assert_eq!(run.outputs.len(), 8, "zero lost");
    assert!(run.sheds.is_empty(), "replica absorbs the kill");
    assert_eq!(run.stats.recoveries, 0, "failover, not recovery");
    // Post-kill, every odd dispatch seq (whose turn was chip 1) retried
    // onto chip 0: seqs 5 and 7.
    assert_eq!(run.stats.retries, 2);
    assert_eq!(
        run.stats.chips[1].retries, 2,
        "retries charge the failed chip"
    );
    assert_eq!(run.stats.chips[1].health, ChipHealth::Failed);
    assert_eq!(run.stats.chips[0].health, ChipHealth::Healthy);

    let oracle = faulted_trace(base, &specs, 42, 8, |_, _| None);
    assert_eq!(
        run.outputs, oracle.outputs,
        "failover is invisible in outputs"
    );
}

#[test]
fn unreplicated_model_recovers_from_its_snapshot_after_a_chip_kill() {
    // Single-residency placement: when the home chip dies there is no
    // replica, so the engine restores the model's programmed state from
    // its PCM snapshot onto the surviving chip. Zero lost, one recovery,
    // outputs unchanged.
    let device = SimConfig::ideal(128, 128).with_threads(1);
    let base = ServeConfig::new(device)
        .with_policy(BatchPolicy::new(1, 0))
        .with_chips(vec![100_000, 100_000])
        .with_placement(PlacementPolicy::FirstFit);
    let serve = |plan: FaultPlan| {
        let mut engine = ServeEngine::new(base.clone().with_faults(plan));
        let a = engine.admit(catalog::lenet5_model()).unwrap();
        let shape = engine.input_shape(a);
        for i in 0..6u64 {
            engine.submit(InferRequest {
                model: a,
                input: synthetic::activations(shape, 6, i),
                arrival: i,
                deadline: None,
            });
        }
        let trace = engine.drain_traced();
        (trace, engine.stats())
    };

    let (trace, stats) = serve(FaultPlan::new().kill_chip(3, 0));
    assert_eq!(trace.completions.len(), 6, "zero lost");
    assert!(trace.sheds.is_empty());
    assert_eq!(stats.recoveries, 1, "snapshot restore onto the survivor");
    assert!(stats.recovery_ms >= 0.0);
    assert_eq!(stats.chips[0].health, ChipHealth::Failed);
    assert_eq!(stats.models[0].chip, 1, "model now lives on the survivor");
    // The pre-kill cache state came along with the snapshot: replaying a
    // warm request after recovery must not reprogram tiles.
    assert!(stats.models[0].cache.hits > 0);

    let (oracle, _) = serve(FaultPlan::new());
    let outputs = |t: &oxbar_serve::DrainTrace| {
        let mut v: Vec<_> = t
            .completions
            .iter()
            .map(|c| (c.id, c.output.data().to_vec()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(outputs(&trace), outputs(&oracle), "recovery is bit-exact");
}

#[test]
fn failover_sheds_only_requests_whose_deadline_became_unreachable() {
    // Unreplicated model, home chip killed at dispatch seq 3, failover
    // penalty 100 ticks. Requests already served keep their answers; of
    // the failed-over tail, only the one whose deadline is inside the
    // penalty window sheds — with a structured notice naming the cause —
    // and the rest recover and complete.
    let specs = random_specs(7);
    let device = SimConfig::ideal(32, 16).with_seed(7).with_threads(1);
    let spec = &specs[..1];
    let base = ServeConfig::new(device)
        .with_policy(BatchPolicy::new(1, 0))
        .with_chips(vec![200_000, 200_000])
        .with_placement(PlacementPolicy::FirstFit)
        .with_failover_penalty(100);
    let deadline_of = |i: u64, arrival: u64| {
        if i == 3 {
            Some(arrival + 1) // unreachable once the 100-tick penalty lands
        } else {
            Some(arrival + 10_000)
        }
    };
    let run = faulted_trace(
        base.clone().with_faults(FaultPlan::new().kill_chip(3, 0)),
        spec,
        7,
        6,
        deadline_of,
    );
    assert_eq!(run.sheds.len(), 1, "exactly the doomed request sheds");
    assert_eq!(run.sheds[0].id, RequestId(3));
    assert!(
        run.sheds[0].detail.contains("deadline unreachable"),
        "notice names the cause: {}",
        run.sheds[0].detail
    );
    assert_eq!(run.outputs.len(), 5);
    assert_eq!(run.stats.sheds, 1);
    assert_eq!(run.stats.chips[0].sheds, 1, "shed charges the failed chip");
    assert_eq!(run.stats.recoveries, 1);

    // Tight deadlines without a fault shed nothing: shedding is strictly
    // a failover decision, never an admission-time one.
    let calm = faulted_trace(base, spec, 7, 6, deadline_of);
    assert!(calm.sheds.is_empty());
    assert_eq!(calm.outputs.len(), 6);
}

#[test]
fn transient_tile_faults_retry_in_place_without_changing_answers() {
    // A one-shot tile fault draws a bounded in-place retry: same chip,
    // same output, retries counter up by one.
    let specs = random_specs(11);
    let device = SimConfig::ideal(32, 16).with_seed(11).with_threads(1);
    let base = ServeConfig::new(device)
        .with_policy(BatchPolicy::new(1, 0))
        .with_chips(vec![200_000]);
    let faulted = faulted_trace(
        base.clone()
            .with_faults(FaultPlan::new().tile_transient(1, 0)),
        &specs,
        11,
        4,
        |_, _| None,
    );
    let calm = faulted_trace(base, &specs, 11, 4, |_, _| None);
    assert_eq!(
        faulted.outputs, calm.outputs,
        "retry is invisible in outputs"
    );
    assert!(faulted.sheds.is_empty());
    assert_eq!(faulted.stats.retries, 1);
    assert_eq!(faulted.stats.chips[0].retries, 1);
    assert_eq!(calm.stats.retries, 0);
}

#[test]
fn losing_every_chip_sheds_the_remaining_trace_structurally() {
    // Kill the only chip mid-trace: everything not yet served must come
    // back as a structured shed notice — no panic, no hang, no silent
    // loss — and the engine stays usable for stats.
    let specs = random_specs(3);
    let device = SimConfig::ideal(32, 16).with_seed(3).with_threads(1);
    let run = faulted_trace(
        ServeConfig::new(device)
            .with_policy(BatchPolicy::new(1, 0))
            .with_chips(vec![200_000])
            .with_faults(FaultPlan::new().kill_chip(2, 0)),
        &specs,
        3,
        6,
        |_, _| None,
    );
    assert_eq!(run.outputs.len(), 2, "pre-kill requests completed");
    assert_eq!(run.sheds.len(), 4, "post-kill requests shed");
    assert!(run
        .sheds
        .iter()
        .all(|s| s.detail.contains("no healthy chip")));
    assert_eq!(run.stats.sheds, 4);
    assert_eq!(run.stats.recoveries, 0, "nowhere to recover to");
    assert_eq!(run.stats.chips[0].health, ChipHealth::Failed);
}

#[test]
fn drift_degrades_routing_preference_without_changing_answers() {
    // Drift marks a chip Degraded: replicas route around it (healthy
    // first), but if it must serve, results are unchanged — drift models
    // analog noise the calibration margin absorbs, not corruption.
    let specs = random_specs(5);
    let device = SimConfig::ideal(32, 16).with_seed(5).with_threads(1);
    let base = ServeConfig::new(device)
        .with_policy(BatchPolicy::new(1, 0))
        .with_chips(vec![200_000, 200_000])
        .with_placement(PlacementPolicy::Replicated(2));
    let drifted = faulted_trace(
        base.clone().with_faults(FaultPlan::new().drift(0, 0)),
        &specs,
        5,
        8,
        |_, _| None,
    );
    let calm = faulted_trace(base, &specs, 5, 8, |_, _| None);
    assert_eq!(drifted.outputs, calm.outputs);
    assert!(drifted.sheds.is_empty());
    assert_eq!(drifted.stats.retries, 0, "degraded is not failed");
    assert_eq!(drifted.stats.chips[0].health, ChipHealth::Degraded);
    assert_eq!(drifted.stats.chips[1].health, ChipHealth::Healthy);
}
