//! Power quantity (watts), including optical-power dBm conversions.

use crate::{Energy, Time};

quantity! {
    /// A power, stored in watts.
    ///
    /// Optical powers can be expressed in dBm via [`Power::from_dbm`] and
    /// [`Power::as_dbm`].
    ///
    /// # Examples
    ///
    /// ```
    /// use oxbar_units::Power;
    ///
    /// let laser = Power::from_dbm(10.0);
    /// assert!((laser.as_milliwatts() - 10.0).abs() < 1e-9);
    /// ```
    Power, from_watts, as_watts, "W"
}

impl Power {
    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::from_watts(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    #[must_use]
    pub fn from_microwatts(uw: f64) -> Self {
        Self::from_watts(uw * 1e-6)
    }

    /// Creates a power from nanowatts.
    #[must_use]
    pub fn from_nanowatts(nw: f64) -> Self {
        Self::from_watts(nw * 1e-9)
    }

    /// Creates an optical power from dBm (decibels relative to 1 mW).
    #[must_use]
    pub fn from_dbm(dbm: f64) -> Self {
        Self::from_milliwatts(10f64.powf(dbm / 10.0))
    }

    /// Returns the power in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.as_watts() * 1e3
    }

    /// Returns the power in microwatts.
    #[must_use]
    pub fn as_microwatts(self) -> f64 {
        self.as_watts() * 1e6
    }

    /// Returns the power in dBm.
    ///
    /// Returns negative infinity for zero power.
    #[must_use]
    pub fn as_dbm(self) -> f64 {
        10.0 * self.as_milliwatts().log10()
    }
}

/// `Power × Time = Energy`.
impl core::ops::Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, rhs: Time) -> Energy {
        Energy::from_joules(self.as_watts() * rhs.as_seconds())
    }
}

/// `Time × Power = Energy`.
impl core::ops::Mul<Power> for Time {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_round_trip() {
        let p = Power::from_dbm(-25.0);
        assert!((p.as_microwatts() - 3.16227766).abs() < 1e-6);
        assert!((p.as_dbm() + 25.0).abs() < 1e-12);
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!((Power::from_dbm(0.0).as_milliwatts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_times_time_is_energy() {
        // The paper's ODAC driver: 168 fJ at a 10 GHz sample rate is 1.68 mW.
        let e = Power::from_milliwatts(1.68) * Time::from_picoseconds(100.0);
        assert!((e.as_femtojoules() - 168.0).abs() < 1e-9);
    }

    #[test]
    fn zero_power_is_negative_infinite_dbm() {
        assert_eq!(Power::ZERO.as_dbm(), f64::NEG_INFINITY);
    }

    #[test]
    fn max_min() {
        let a = Power::from_watts(1.0);
        let b = Power::from_watts(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
