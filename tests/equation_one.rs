//! End-to-end validation of the paper's Eq. (1): exact signed integer MACs
//! must survive the full physical stack — signed→unipolar weight mapping,
//! PCM level quantization, ODAC input encoding, coherent field propagation
//! (with and without losses), balanced detection, and ADC quantization.

use oxbar::electronics::UnsignedQuantizer;
use oxbar::nn::mapping::{MappedWeights, WeightMapping};
use oxbar::pcm::{LevelTable, PcmCell};
use oxbar::photonics::crossbar::{CrossbarConfig, CrossbarSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const Q: i8 = 31; // INT6 symmetric weight limit
const V_MAX: u8 = 63; // INT6 unsigned activation limit

fn random_signed_case(n: usize, cols: usize, seed: u64) -> (Vec<Vec<i8>>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = (0..n)
        .map(|_| (0..cols).map(|_| rng.random_range(-Q..=Q)).collect())
        .collect();
    let inputs = (0..n).map(|_| rng.random_range(0..=V_MAX)).collect();
    (weights, inputs)
}

fn exact_signed_mac(weights: &[Vec<i8>], inputs: &[u8]) -> Vec<i64> {
    let cols = weights[0].len();
    (0..cols)
        .map(|j| {
            weights
                .iter()
                .zip(inputs)
                .map(|(row, &v)| i64::from(row[j]) * i64::from(v))
                .sum()
        })
        .collect()
}

/// Runs the mapped weights through the ideal photonic crossbar and recovers
/// integer MACs from the detected amplitudes.
fn photonic_mac(
    mapped: &MappedWeights,
    inputs: &[u8],
    sim: &CrossbarSimulator,
    unipolar_full_scale: f64,
) -> Vec<i64> {
    let n = inputs.len();
    // ODAC: inputs normalized to [0, 1] amplitudes.
    let v: Vec<f64> = inputs
        .iter()
        .map(|&x| f64::from(x) / f64::from(V_MAX))
        .collect();
    let w = mapped.transmissions();
    // The normalized column outputs equal Σ v·w / N.
    let ys = sim.run_normalized(&v, &w);
    ys.iter()
        .map(|y| {
            // Undo the two normalizations: ×N×V_MAX×full_scale.
            (y * n as f64 * f64::from(V_MAX) * unipolar_full_scale).round() as i64
        })
        .collect()
}

#[test]
fn offset_mapping_exact_through_ideal_crossbar() {
    for (n, cols, seed) in [(8, 4, 1u64), (16, 8, 2), (32, 8, 3), (64, 16, 4)] {
        let (weights, inputs) = random_signed_case(n, cols, seed);
        let mapped = MappedWeights::map(&weights, WeightMapping::Offset, Q);
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, mapped.physical_cols()));
        let raw = photonic_mac(&mapped, &inputs, &sim, 2.0 * f64::from(Q));
        let recovered = mapped.recover(&raw, &inputs);
        assert_eq!(
            recovered,
            exact_signed_mac(&weights, &inputs),
            "n={n} cols={cols} seed={seed}"
        );
    }
}

#[test]
fn differential_mapping_exact_through_ideal_crossbar() {
    for (n, cols, seed) in [(8, 4, 11u64), (32, 8, 12)] {
        let (weights, inputs) = random_signed_case(n, cols, seed);
        let mapped = MappedWeights::map(&weights, WeightMapping::Differential, Q);
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, mapped.physical_cols()));
        let raw = photonic_mac(&mapped, &inputs, &sim, f64::from(Q));
        let recovered = mapped.recover(&raw, &inputs);
        assert_eq!(
            recovered,
            exact_signed_mac(&weights, &inputs),
            "n={n} cols={cols} seed={seed}"
        );
    }
}

#[test]
fn lossy_compensated_crossbar_stays_within_one_lsb() {
    let n = 32;
    let cols = 8;
    let (weights, inputs) = random_signed_case(n, cols, 21);
    let mapped = MappedWeights::map(&weights, WeightMapping::Offset, Q);
    let sim = CrossbarSimulator::new(
        CrossbarConfig::new(n, mapped.physical_cols())
            .with_losses(true)
            .with_path_loss_compensation(true),
    );
    let raw = photonic_mac(&mapped, &inputs, &sim, 2.0 * f64::from(Q));
    let recovered = mapped.recover(&raw, &inputs);
    let exact = exact_signed_mac(&weights, &inputs);
    for (got, want) in recovered.iter().zip(&exact) {
        // One integer unit of the raw unipolar sum is the tolerance; the
        // compensation restores proportionality up to w≤1 clipping rounding.
        assert!(
            (got - want).abs() <= 2,
            "got {got}, want {want} (diff {})",
            got - want
        );
    }
}

#[test]
fn pcm_level_quantization_bounds_weight_error() {
    // Mapping signed codes through the 64-level PCM table loses at most
    // half an LSB per weight, so column sums err at most N·Σv/2 LSB-units.
    let n = 16;
    let cols = 4;
    let (weights, inputs) = random_signed_case(n, cols, 31);
    let mapped = MappedWeights::map(&weights, WeightMapping::Offset, Q);
    let table = LevelTable::int6(PcmCell::pristine());
    // Quantize the unipolar transmissions through the PCM table.
    let quantized: Vec<Vec<f64>> = mapped
        .transmissions()
        .iter()
        .map(|row| {
            row.iter()
                .map(|&w| {
                    let code = table.quantize_weight(w);
                    table.dequantize_code(code)
                })
                .collect()
        })
        .collect();
    let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, mapped.physical_cols()));
    let v: Vec<f64> = inputs
        .iter()
        .map(|&x| f64::from(x) / f64::from(V_MAX))
        .collect();
    let exact_ys = sim.run_normalized(&v, &mapped.transmissions());
    let quant_ys = sim.run_normalized(&v, &quantized);
    for (a, b) in exact_ys.iter().zip(&quant_ys) {
        // Error per cell ≤ 1/(2·63) in [0,1]; averaged over N it stays tiny.
        assert!((a - b).abs() <= 1.0 / (2.0 * 63.0) + 1e-12);
    }
}

#[test]
fn adc_quantization_preserves_int6_results() {
    // Digitizing the column output with a 12-bit ADC (6 data bits +
    // log2(64) headroom for the analog sum) keeps the recovered integer
    // MAC exact.
    let n = 64;
    let cols = 8;
    let (weights, inputs) = random_signed_case(n, cols, 41);
    let mapped = MappedWeights::map(&weights, WeightMapping::Offset, Q);
    let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, mapped.physical_cols()));
    let v: Vec<f64> = inputs
        .iter()
        .map(|&x| f64::from(x) / f64::from(V_MAX))
        .collect();
    let ys = sim.run_normalized(&v, &mapped.transmissions());
    // Full scale of the normalized output is 1.0 (all v = w = 1).
    let adc = UnsignedQuantizer::new(12, 1.0).unwrap();
    let digitized: Vec<i64> = ys
        .iter()
        .map(|&y| {
            let code = adc.quantize(y);
            (adc.dequantize(code) * n as f64 * f64::from(V_MAX) * 2.0 * f64::from(Q)).round() as i64
        })
        .collect();
    let recovered = mapped.recover(&digitized, &inputs);
    let exact = exact_signed_mac(&weights, &inputs);
    for (got, want) in recovered.iter().zip(&exact) {
        // 12-bit quantization of the analog sum leaves ≤ ~1 integer ULP...
        let tol = (n as f64 * 63.0 * 62.0 / 4096.0 / 2.0).ceil() as i64 + 1;
        assert!(
            (got - want).abs() <= tol,
            "got {got}, want {want}, tol {tol}"
        );
    }
}

#[test]
fn equation_one_prefactor_matches_paper() {
    // E_c[j] = E_laser/(N·√M)·Σ v·w — check the prefactor explicitly.
    let n = 16;
    let m = 9;
    let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
    let inputs = vec![1.0; n];
    let weights = vec![vec![1.0; m]; n];
    let outputs = sim.run(&inputs, &weights);
    for out in outputs {
        let expected = n as f64 / (n as f64 * (m as f64).sqrt());
        assert!((out.amplitude() - expected).abs() < 1e-12);
    }
}
