//! System-level model of the **coherent optical PCM crossbar AI
//! accelerator** — the primary contribution of Sturm & Moazeni (DATE 2023).
//!
//! This crate assembles the substrates (photonics, PCM, electronics,
//! memory, dataflow) into the paper's two-step simulation framework (§V):
//!
//! 1. [`oxbar_dataflow`] produces *runtime specs* — compute cycles,
//!    programming events, SRAM/DRAM accesses — for a network on a chip
//!    parameter set;
//! 2. [`power::PowerModel`], [`area::AreaModel`] and [`perf::PerfModel`]
//!    turn them into IPS, IPS/W, watts and mm², with full per-component
//!    breakdowns ([`report::ChipReport`]).
//!
//! [`optimizer`] implements the §VI.B optimization flow (batch → SRAM →
//! array size), [`dse`] the exhaustive design-space sweeps behind Figs. 6
//! and 7, [`compare`] the A100 comparison table of §VII, and [`landscape`]
//! the Fig. 1 accelerator landscape.
//!
//! # Examples
//!
//! ```
//! use oxbar_core::chip::Chip;
//! use oxbar_core::config::ChipConfig;
//! use oxbar_nn::zoo::resnet50_v1_5;
//!
//! let chip = Chip::new(ChipConfig::paper_optimal());
//! let report = chip.evaluate(&resnet50_v1_5());
//! assert!(report.ips > 20_000.0);
//! assert!(report.area.total().as_square_millimeters() < 200.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod chip;
pub mod compare;
pub mod config;
pub mod dse;
pub mod fidelity;
pub mod landscape;
pub mod optimizer;
pub mod perf;
pub mod power;
pub mod report;
pub mod sensitivity;
pub mod tech;

pub use chip::Chip;
pub use config::{ChipConfig, CoreCount};
pub use report::ChipReport;
pub use tech::TechnologyParams;

#[cfg(test)]
mod proptests;
