//! Amorphous-phase drift of stored weights.

use crate::cell::PcmCell;
use oxbar_units::Time;
use serde::{Deserialize, Serialize};

/// Structural-relaxation drift of the amorphous phase.
///
/// Amorphous GST relaxes over time, increasing its optical absorption. We
/// use the standard power-law in time applied to the amorphous share of the
/// patch's loss:
///
/// ```text
/// loss_a(t) = loss_a(t₀) · (t / t₀)^ν
/// ```
///
/// with drift exponent `ν ≈ 0.005–0.02` for optical readout (much weaker
/// than the electrical-resistance drift exponent). Crystalline material does
/// not drift. The model answers the system-level question: *how long can
/// weights sit before they slip by half an LSB?*
///
/// # Examples
///
/// ```
/// use oxbar_pcm::drift::DriftModel;
/// use oxbar_pcm::PcmCell;
/// use oxbar_units::Time;
///
/// let drift = DriftModel::new(0.01);
/// let mut cell = PcmCell::pristine();
/// cell.set_crystalline_fraction(0.5);
/// let before = cell.transmission();
/// let after = drift.transmission_after(cell, Time::from_seconds(3600.0));
/// assert!(after <= before);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    nu: f64,
    reference: Time,
}

impl DriftModel {
    /// Typical optical drift exponent.
    pub const DEFAULT_NU: f64 = 0.01;

    /// Creates a drift model with exponent `nu`, referenced to 1 s after
    /// programming.
    ///
    /// # Panics
    ///
    /// Panics if `nu` is negative.
    #[must_use]
    pub fn new(nu: f64) -> Self {
        assert!(nu >= 0.0, "drift exponent must be non-negative");
        Self {
            nu,
            reference: Time::from_seconds(1.0),
        }
    }

    /// Drift exponent ν.
    #[must_use]
    pub fn nu(self) -> f64 {
        self.nu
    }

    /// The power-law drift factor `(t / t₀)^ν` after `elapsed`, or `None`
    /// when no drift applies (`elapsed` at or before the reference, or
    /// `ν = 0`). Cell-independent, so array readouts compute it once and
    /// apply it per cell via [`Self::transmission_with_factor`].
    #[must_use]
    pub fn drift_factor(self, elapsed: Time) -> Option<f64> {
        if elapsed.as_seconds() <= self.reference.as_seconds() || self.nu == 0.0 {
            return None;
        }
        let ratio = elapsed.as_seconds() / self.reference.as_seconds();
        Some(ratio.powf(self.nu))
    }

    /// The cell's field transmission under a precomputed
    /// [`Self::drift_factor`].
    #[must_use]
    pub fn transmission_with_factor(self, cell: PcmCell, drift_factor: f64) -> f64 {
        // Drift multiplies the amorphous (background) loss contribution.
        let amorphous_share = 1.0 - cell.crystalline_fraction();
        let base_loss_db = cell.insertion_loss().value();
        let drifted_db = base_loss_db + amorphous_share * base_loss_db * (drift_factor - 1.0);
        oxbar_units::Decibel::new(drifted_db).attenuation_field()
    }

    /// The cell's field transmission after sitting for `elapsed` since
    /// programming.
    ///
    /// Times earlier than the 1 s reference return the undrifted value.
    #[must_use]
    pub fn transmission_after(self, cell: PcmCell, elapsed: Time) -> f64 {
        match self.drift_factor(elapsed) {
            None => cell.transmission(),
            Some(factor) => self.transmission_with_factor(cell, factor),
        }
    }

    /// Time until the stored weight slips by `lsb_fraction` of full scale
    /// (bisection on the drift law). Returns `None` if it never does within
    /// ten years.
    #[must_use]
    pub fn retention(self, cell: PcmCell, lsb_fraction: f64) -> Option<Time> {
        let target = cell.transmission() - lsb_fraction;
        if target <= 0.0 || self.nu == 0.0 {
            return None;
        }
        let ten_years = 10.0 * 365.25 * 86400.0;
        if self.transmission_after(cell, Time::from_seconds(ten_years)) > target {
            return None;
        }
        let (mut lo, mut hi) = (1.0f64, ten_years);
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.transmission_after(cell, Time::from_seconds(mid)) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Time::from_seconds(hi))
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        Self::new(Self::DEFAULT_NU)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_programmed() -> PcmCell {
        let mut cell = PcmCell::pristine();
        cell.set_crystalline_fraction(0.5);
        cell
    }

    #[test]
    fn drift_is_monotone_in_time() {
        let drift = DriftModel::default();
        let cell = half_programmed();
        let t1 = drift.transmission_after(cell, Time::from_seconds(10.0));
        let t2 = drift.transmission_after(cell, Time::from_seconds(1e4));
        let t3 = drift.transmission_after(cell, Time::from_seconds(1e7));
        assert!(t1 > t2 && t2 > t3);
    }

    #[test]
    fn zero_nu_never_drifts() {
        let drift = DriftModel::new(0.0);
        let cell = half_programmed();
        let t = drift.transmission_after(cell, Time::from_seconds(1e9));
        assert_eq!(t, cell.transmission());
    }

    #[test]
    fn before_reference_undrifted() {
        let drift = DriftModel::default();
        let cell = half_programmed();
        assert_eq!(
            drift.transmission_after(cell, Time::from_seconds(0.5)),
            cell.transmission()
        );
    }

    #[test]
    fn retention_exceeds_practical_reprogram_interval() {
        // With 64 levels, an LSB is 1/63 of full scale; retention at the
        // default drift should comfortably exceed one hour (weights are
        // reprogrammed every few µs in this architecture anyway).
        let drift = DriftModel::default();
        let cell = half_programmed();
        // `None` (never drifts an LSB within 10 years) is also fine.
        if let Some(t) = drift.retention(cell, 1.0 / 63.0) {
            assert!(t.as_seconds() > 3600.0);
        }
    }

    #[test]
    fn retention_bisection_brackets_target() {
        let drift = DriftModel::new(0.05); // exaggerated drift
        let cell = half_programmed();
        let lsb = 1.0 / 63.0;
        if let Some(t) = drift.retention(cell, lsb) {
            let before = drift.transmission_after(cell, t * 0.5);
            let after = drift.transmission_after(cell, t * 2.0);
            let target = cell.transmission() - lsb;
            assert!(before > target);
            assert!(after < target);
        }
    }

    #[test]
    fn fully_crystalline_does_not_drift() {
        let drift = DriftModel::default();
        let mut cell = PcmCell::pristine();
        cell.set_crystalline_fraction(1.0);
        let t = drift.transmission_after(cell, Time::from_seconds(1e8));
        assert!((t - cell.transmission()).abs() < 1e-12);
    }
}
