//! Continuous-wave laser source model.

use crate::Field;
use oxbar_units::{Power, Ratio};
use serde::{Deserialize, Serialize};

/// An off-chip CW laser with finite wall-plug efficiency.
///
/// The paper assumes a 15% wall-plug efficiency (§III); the electrical power
/// drawn is the emitted optical power divided by that efficiency. A single
/// laser is shared between the two cores of the dual-core design (§IV).
///
/// # Examples
///
/// ```
/// use oxbar_photonics::laser::Laser;
/// use oxbar_units::{Power, Ratio};
///
/// let laser = Laser::new(Power::from_milliwatts(150.0), Ratio::from_percent(15.0));
/// assert!((laser.electrical_power().as_watts() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Laser {
    optical_power: Power,
    wall_plug_efficiency: Ratio,
    wavelength_nm: f64,
    rin_db_per_hz: f64,
}

impl Laser {
    /// The paper's assumed wall-plug efficiency.
    pub const DEFAULT_WALL_PLUG: f64 = 0.15;
    /// Typical relative intensity noise for a DFB source.
    pub const DEFAULT_RIN_DB_PER_HZ: f64 = -150.0;

    /// Creates a laser emitting `optical_power` with the given wall-plug
    /// efficiency.
    ///
    /// # Panics
    ///
    /// Panics if the efficiency is zero.
    #[must_use]
    pub fn new(optical_power: Power, wall_plug_efficiency: Ratio) -> Self {
        assert!(
            wall_plug_efficiency.as_fraction() > 0.0,
            "wall-plug efficiency must be positive"
        );
        Self {
            optical_power,
            wall_plug_efficiency,
            wavelength_nm: crate::waveguide::Waveguide::DEFAULT_WAVELENGTH_NM,
            rin_db_per_hz: Self::DEFAULT_RIN_DB_PER_HZ,
        }
    }

    /// Creates a laser with the paper's default 15% wall-plug efficiency.
    #[must_use]
    pub fn with_default_efficiency(optical_power: Power) -> Self {
        Self::new(optical_power, Ratio::from_fraction(Self::DEFAULT_WALL_PLUG))
    }

    /// Overrides the operating wavelength (nm).
    #[must_use]
    pub fn with_wavelength_nm(mut self, wavelength_nm: f64) -> Self {
        self.wavelength_nm = wavelength_nm;
        self
    }

    /// Overrides the relative intensity noise (dB/Hz).
    #[must_use]
    pub fn with_rin(mut self, rin_db_per_hz: f64) -> Self {
        self.rin_db_per_hz = rin_db_per_hz;
        self
    }

    /// Emitted optical power.
    #[must_use]
    pub fn optical_power(self) -> Power {
        self.optical_power
    }

    /// Electrical power drawn from the supply.
    #[must_use]
    pub fn electrical_power(self) -> Power {
        Power::from_watts(self.optical_power.as_watts() / self.wall_plug_efficiency.as_fraction())
    }

    /// Wall-plug efficiency.
    #[must_use]
    pub fn wall_plug_efficiency(self) -> Ratio {
        self.wall_plug_efficiency
    }

    /// Operating wavelength in nm.
    #[must_use]
    pub fn wavelength_nm(self) -> f64 {
        self.wavelength_nm
    }

    /// Relative intensity noise in dB/Hz.
    #[must_use]
    pub fn rin_db_per_hz(self) -> f64 {
        self.rin_db_per_hz
    }

    /// The emitted field at phase 0 (the global phase reference).
    #[must_use]
    pub fn field(self) -> Field {
        Field::from_power(self.optical_power, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electrical_power_scales_with_efficiency() {
        let l = Laser::new(Power::from_milliwatts(30.0), Ratio::from_percent(15.0));
        assert!((l.electrical_power().as_milliwatts() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn field_carries_optical_power() {
        let l = Laser::with_default_efficiency(Power::from_milliwatts(10.0));
        assert!((l.field().power().as_milliwatts() - 10.0).abs() < 1e-12);
        assert_eq!(l.field().phase(), 0.0);
    }

    #[test]
    #[should_panic(expected = "wall-plug efficiency must be positive")]
    fn zero_efficiency_panics() {
        let _ = Laser::new(Power::from_milliwatts(1.0), Ratio::ZERO);
    }

    #[test]
    fn builder_overrides() {
        let l = Laser::with_default_efficiency(Power::from_milliwatts(1.0))
            .with_wavelength_nm(1550.0)
            .with_rin(-155.0);
        assert_eq!(l.wavelength_nm(), 1550.0);
        assert_eq!(l.rin_db_per_hz(), -155.0);
    }
}
