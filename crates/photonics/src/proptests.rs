//! Property-based tests for the photonic substrate.

use crate::coupler::DirectionalCoupler;
use crate::coupling::CouplingPlan;
use crate::crossbar::{CrossbarConfig, CrossbarSimulator};
use crate::Field;
use proptest::collection::vec;
use proptest::prelude::*;

fn unit_interval() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coupler_is_unitary(kappa in unit_interval(), amp_a in 0.0..2.0f64,
                          amp_b in 0.0..2.0f64,
                          phase_b in -std::f64::consts::PI..std::f64::consts::PI) {
        let dc = DirectionalCoupler::new(kappa).unwrap();
        let a = Field::from_amplitude(amp_a);
        let b = Field::from_amplitude(amp_b).shift_phase(phase_b);
        let (t, c) = dc.couple(a, b);
        let p_in = a.power().as_watts() + b.power().as_watts();
        let p_out = t.power().as_watts() + c.power().as_watts();
        prop_assert!((p_in - p_out).abs() < 1e-12 * p_in.max(1.0));
    }

    #[test]
    fn coupling_plan_equalizes_any_size(n in 1usize..64, m in 1usize..64) {
        let plan = CouplingPlan::equalizing(n, m);
        let taps = plan.row_tap_amplitudes();
        let weights = plan.column_sum_weights();
        let tap_expected = 1.0 / (m as f64).sqrt();
        let w_expected = 1.0 / (n as f64).sqrt();
        for t in taps {
            prop_assert!((t - tap_expected).abs() < 1e-10);
        }
        for w in weights {
            prop_assert!((w - w_expected).abs() < 1e-10);
        }
    }

    #[test]
    fn crossbar_matches_equation_one(
        n in 1usize..12,
        m in 1usize..12,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inputs: Vec<f64> = (0..n).map(|_| rng.random()).collect();
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.random()).collect())
            .collect();
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
        let outputs = sim.run(&inputs, &weights);
        for j in 0..m {
            let expected: f64 = (0..n).map(|i| inputs[i] * weights[i][j]).sum::<f64>()
                / (n as f64 * (m as f64).sqrt());
            prop_assert!((outputs[j].amplitude() - expected.abs()).abs() < 1e-10);
        }
    }

    #[test]
    fn crossbar_output_monotone_in_weight(
        n in 2usize..8,
        base in 0.0..0.5f64,
        delta in 0.01..0.5f64,
    ) {
        let inputs = vec![1.0; n];
        let low = vec![vec![base; 1]; n];
        let high = vec![vec![base + delta; 1]; n];
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, 1));
        let lo = sim.run(&inputs, &low)[0].amplitude();
        let hi = sim.run(&inputs, &high)[0].amplitude();
        prop_assert!(hi > lo);
    }

    #[test]
    fn lossy_output_never_exceeds_ideal(
        n in 1usize..8,
        m in 1usize..8,
        vals in vec(0.0..=1.0f64, 64),
    ) {
        let inputs: Vec<f64> = (0..n).map(|i| vals[i % vals.len()]).collect();
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..m).map(|j| vals[(i * m + j) % vals.len()]).collect())
            .collect();
        let ideal = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
        let lossy = CrossbarSimulator::new(
            CrossbarConfig::new(n, m).with_losses(true),
        );
        let a = ideal.run(&inputs, &weights);
        let b = lossy.run(&inputs, &weights);
        for j in 0..m {
            prop_assert!(b[j].amplitude() <= a[j].amplitude() + 1e-12);
        }
    }

    #[test]
    fn field_attenuation_composes(db1 in 0.0..20.0f64, db2 in 0.0..20.0f64) {
        use oxbar_units::Decibel;
        let f = Field::from_amplitude(1.0);
        let once = f
            .attenuate(Decibel::new(db1).attenuation_field())
            .attenuate(Decibel::new(db2).attenuation_field());
        let combined = f.attenuate(Decibel::new(db1 + db2).attenuation_field());
        prop_assert!((once.amplitude() - combined.amplitude()).abs() < 1e-12);
    }

    #[test]
    fn compiled_transfer_matrix_matches_field_walk(
        n in 1usize..24,
        m in 1usize..24,
        seed in 0u64..10_000,
        knobs in 0u64..8,
        phase_sigma in 0.0..0.3f64,
        trim_step in 0.001..0.05f64,
    ) {
        use crate::transfer::CompiledCrossbar;
        use rand::{Rng, SeedableRng};

        // Decode the non-ideality combination from `knobs` so every mix of
        // losses / compensation / trimming appears across the cases.
        let losses = knobs & 1 != 0;
        let compensate = knobs & 2 != 0;
        let trimmed = knobs & 4 != 0;
        let config = CrossbarConfig::new(n, m)
            .with_losses(losses)
            .with_path_loss_compensation(compensate)
            .with_phase_error_sigma(phase_sigma)
            .with_phase_error_seed(seed)
            .with_trim_resolution(if trimmed { trim_step } else { 0.0 });
        let sim = CrossbarSimulator::new(config);

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        let inputs: Vec<f64> = (0..n).map(|_| rng.random()).collect();
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.random()).collect())
            .collect();

        let compiled = CompiledCrossbar::new(&sim, &weights);
        let walk = sim.run(&inputs, &weights);
        let fast = compiled.mvm(&inputs);
        for j in 0..m {
            let a = walk[j].envelope();
            let b = fast[j].envelope();
            prop_assert!(
                (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12,
                "col {}: walk {} vs compiled {} (losses={} comp={} sigma={} trim={})",
                j, a, b, losses, compensate, phase_sigma, trimmed
            );
        }
        let walk_norm = sim.run_normalized(&inputs, &weights);
        let mut fast_norm = vec![0.0; m];
        compiled.run_normalized_into(&inputs, &mut fast_norm);
        for j in 0..m {
            prop_assert!(
                (walk_norm[j] - fast_norm[j]).abs() < 1e-12,
                "normalized col {}: {} vs {}", j, walk_norm[j], fast_norm[j]
            );
        }
    }
}
