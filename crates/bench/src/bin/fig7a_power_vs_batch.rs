//! Regenerates Fig. 7a (chip power and DRAM energy vs batch size).
fn main() {
    oxbar_bench::figures::fig7::run_7a();
}
