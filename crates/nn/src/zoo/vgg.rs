//! VGG-16 — the plain deep-stack workload (≈15.5 GMACs).

use crate::layer::{Conv2d, Dense, Layer, Pool, PoolKind};
use crate::shape::TensorShape;
use crate::Network;

/// VGG-16 at 224×224×3 (configuration D).
///
/// # Examples
///
/// ```
/// let net = oxbar_nn::zoo::vgg16();
/// assert_eq!(net.audit_shapes(), None);
/// ```
#[must_use]
pub fn vgg16() -> Network {
    let mut net = Network::new("vgg16", TensorShape::new(224, 224, 3));
    let mut shape = TensorShape::new(224, 224, 3);
    let blocks: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for (block_idx, &(convs, out_c)) in blocks.iter().enumerate() {
        for conv_idx in 0..convs {
            let conv = Conv2d::new(
                format!("conv{}_{}", block_idx + 1, conv_idx + 1),
                shape,
                3,
                3,
                out_c,
                1,
                1,
            );
            shape = conv.output_shape();
            net.push(Layer::Conv2d(conv));
        }
        let pool = Pool::new(
            format!("pool{}", block_idx + 1),
            shape,
            PoolKind::Max,
            2,
            2,
            0,
        );
        shape = pool.output_shape();
        net.push(Layer::Pool(pool));
    }
    net.push(Layer::Dense(Dense::new("fc6", 7 * 7 * 512, 4096)));
    net.push(Layer::Dense(Dense::new("fc7", 4096, 4096)));
    net.push(Layer::Dense(Dense::new("fc8", 4096, 1000)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_census() {
        let net = vgg16();
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_)))
            .count();
        assert_eq!(convs, 13);
        // ~138 M parameters, dominated by fc6.
        let params = net.total_params();
        assert!((138_000_000..139_000_000).contains(&params), "got {params}");
    }

    #[test]
    fn vgg16_macs() {
        let gmacs = vgg16().total_macs() as f64 / 1e9;
        assert!((15.0..16.0).contains(&gmacs), "got {gmacs}");
    }
}
