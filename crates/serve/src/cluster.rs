//! Multi-chip model placement and routing: a [`Cluster`] of per-chip
//! registries under one serving engine.
//!
//! One photonic crossbar chip holds a finite pool of PCM tiles; a fleet
//! deployment shards its model catalog across several chips. The cluster
//! layer owns that sharding:
//!
//! - **placement** — at admission, a model is pinned to one chip by a
//!   deterministic [`PlacementPolicy`] over *committed* footprints (the
//!   cells each chip's placed models would occupy fully resident), so the
//!   same admission sequence always produces the same layout;
//! - **budgets** — each [`ChipRegistry`] enforces its own cell budget
//!   with the same LRU whole-model eviction the single-chip registry
//!   used;
//! - **migration** — before evicting, an over-budget chip offers its LRU
//!   victim to any sibling chip with room; the model moves via
//!   [`oxbar_sim::DeviceExecutor::snapshot`] / `restore`, which rebuilds
//!   its programmed tile state bit-exactly, so migration changes *where*
//!   a model serves from, never *what* it answers.
//!
//! A 1-chip cluster is byte-identical to the pre-cluster
//! [`crate::registry::ModelRegistry`] — same outputs, same eviction
//! sequence — which is how the single-chip serving suites stay green
//! unchanged (`tests/cluster_equivalence.rs` pins it).

use crate::registry::{AdmitError, ModelCacheStats, ModelSpec};
use crate::request::ModelId;
use oxbar_nn::{Layer, TensorShape};
use oxbar_sim::{DeviceExecutor, InjectedFault, SimConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Handle to one chip of a [`Cluster`], in chip-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChipId(pub usize);

/// Operational health of one chip, tracked by the serving scheduler.
///
/// `Healthy ⇄ Degraded` (drift marking and post-recalibration healing)
/// and `{Healthy, Degraded} → Failed` (chip kill; terminal within a run).
/// `Failed` chips never serve; `Degraded` chips serve but the scheduler
/// prefers healthy replicas when routing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChipHealth {
    /// Serving normally.
    #[default]
    Healthy,
    /// Drift-degraded: still serving (results unchanged), deprioritized
    /// by replica routing.
    Degraded,
    /// Control plane down: the chip cannot execute. Its non-volatile
    /// programmed state remains snapshot-readable for recovery.
    Failed,
}

impl ChipHealth {
    /// Stable lowercase name, for reports and wire frames.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded => "degraded",
            Self::Failed => "failed",
        }
    }

    /// Whether a chip in this state can execute batches at all.
    #[must_use]
    pub fn serves(&self) -> bool {
        !matches!(self, Self::Failed)
    }
}

impl fmt::Display for ChipHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a [`Cluster`] picks the chip a newly admitted model lives on.
///
/// Both policies are pure functions of the committed footprints at
/// admission time, so placement is deterministic for a given admission
/// sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// The lowest-indexed chip whose committed footprint leaves room for
    /// the model (ties to admission order, like a bin-packing first fit).
    #[default]
    FirstFit,
    /// The chip with the smallest committed footprint among those with
    /// room (lowest index on ties) — spreads load for cross-chip
    /// parallelism.
    LeastLoaded,
    /// Keep each model resident on `k` distinct chips (least-committed
    /// first, lowest index on ties), so requests load-balance across
    /// replicas and a chip failure fails over without recovery. Every
    /// replica executor shares the model's admission seed, so replicas
    /// answer byte-identically and failover is invisible in outputs.
    /// `Replicated(1)` behaves like [`PlacementPolicy::LeastLoaded`].
    Replicated(usize),
}

/// Per-chip bookkeeping of a [`Cluster`]: the chip's cell budget, the
/// footprint committed to it by placement, and its eviction/migration
/// counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipRegistry {
    budget: usize,
    /// Summed full footprints of the models placed on this chip (what
    /// placement has promised, independent of current residency).
    committed_cells: usize,
    evictions: u64,
    migrations_in: u64,
    migrations_out: u64,
    /// Scheduler-visible health (see [`ChipHealth`]).
    health: ChipHealth,
    /// Batches re-executed on (or off) this chip after a fault.
    retries: u64,
    /// Requests shed because this chip failed and no replica could meet
    /// their deadline.
    sheds: u64,
}

impl ChipRegistry {
    fn new(budget: usize) -> Self {
        Self {
            budget,
            committed_cells: 0,
            evictions: 0,
            migrations_in: 0,
            migrations_out: 0,
            health: ChipHealth::Healthy,
            retries: 0,
            sheds: 0,
        }
    }

    /// The chip's weight-stationary cell budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Summed full footprints of the models placed here.
    #[must_use]
    pub fn committed_cells(&self) -> usize {
        self.committed_cells
    }

    /// Whole-model evictions this chip's budget has forced.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Models migrated onto this chip.
    #[must_use]
    pub fn migrations_in(&self) -> u64 {
        self.migrations_in
    }

    /// Models migrated off this chip.
    #[must_use]
    pub fn migrations_out(&self) -> u64 {
        self.migrations_out
    }

    /// The chip's scheduler-visible health.
    #[must_use]
    pub fn health(&self) -> ChipHealth {
        self.health
    }

    /// Batches retried because of faults on this chip.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Requests shed while failing over away from this chip.
    #[must_use]
    pub fn sheds(&self) -> u64 {
        self.sheds
    }
}

/// Serializable per-chip serving statistics, for engine reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipStats {
    /// Chip index.
    pub chip: usize,
    /// The chip's cell budget.
    pub budget_cells: usize,
    /// Summed cache occupancy of the chip's models, in cells.
    pub occupancy_cells: usize,
    /// Models currently placed on the chip.
    pub models: usize,
    /// Whole-model evictions the chip's budget has forced.
    pub evictions: u64,
    /// Models migrated onto the chip.
    pub migrations_in: u64,
    /// Models migrated off the chip.
    pub migrations_out: u64,
    /// Tile-cache hits summed over the chip's models.
    pub hits: u64,
    /// Tile-cache misses summed over the chip's models.
    pub misses: u64,
    /// The chip's scheduler-visible health.
    pub health: ChipHealth,
    /// Batches retried because of faults on this chip.
    pub retries: u64,
    /// Requests shed while failing over away from this chip.
    pub sheds: u64,
}

impl ChipStats {
    /// `hits / (hits + misses)`, or 0 for an idle chip.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One chip's copy of a model: where it lives and the executor that
/// serves it there. Replicated models hold several residencies; slot 0
/// is the *primary* (what [`Cluster::chip_of`] / [`Cluster::executor`]
/// report, preserving the single-residency API).
struct Residency {
    /// The chip this copy lives on (may change via migration).
    chip: usize,
    executor: DeviceExecutor,
}

struct ModelEntry {
    spec: ModelSpec,
    /// Monotone use stamp for LRU eviction (0 = never used).
    last_use: u64,
    /// Full weight-stationary footprint in crossbar cells (per replica).
    footprint_cells: usize,
    /// Every chip copy of the model, primary first. All residencies
    /// share one admission-seeded config, so they answer byte-identically.
    residencies: Vec<Residency>,
}

impl ModelEntry {
    /// The primary residency (slot 0 — always present).
    fn primary(&self) -> &Residency {
        &self.residencies[0]
    }
}

/// Admitted models sharded across a fleet of chips, each chip a
/// [`ChipRegistry`] with its own weight-stationary cell budget.
///
/// Admission pins each model to one chip (see [`PlacementPolicy`]) and
/// seeds its executor from `(base seed, admission index)` — the *global*
/// admission index, not a per-chip one, so a model's device noise is
/// independent of the cluster layout and a 1-chip cluster reproduces the
/// single-registry engine byte for byte.
pub struct Cluster {
    base: SimConfig,
    placement: PlacementPolicy,
    chips: Vec<ChipRegistry>,
    entries: Vec<ModelEntry>,
    clock: u64,
    evictions: u64,
    migrations: u64,
    recoveries: u64,
    /// Wall-clock milliseconds spent in snapshot/restore recoveries
    /// (observational only — never feeds back into scheduling).
    recovery_ms: f64,
}

impl Cluster {
    /// Creates a cluster with one [`ChipRegistry`] per entry of
    /// `chip_budgets`. Each admitted model's device config is `base` with
    /// a model-specific seed.
    ///
    /// # Panics
    ///
    /// Panics if `chip_budgets` is empty.
    #[must_use]
    pub fn new(base: SimConfig, chip_budgets: &[usize], placement: PlacementPolicy) -> Self {
        assert!(!chip_budgets.is_empty(), "a cluster has at least one chip");
        Self {
            base,
            placement,
            chips: chip_budgets.iter().map(|&b| ChipRegistry::new(b)).collect(),
            entries: Vec::new(),
            clock: 0,
            evictions: 0,
            migrations: 0,
            recoveries: 0,
            recovery_ms: 0.0,
        }
    }

    /// A single-chip cluster — the configuration that reproduces the
    /// pre-cluster [`crate::registry::ModelRegistry`] exactly.
    #[must_use]
    pub fn single(base: SimConfig, budget: usize) -> Self {
        Self::new(base, &[budget], PlacementPolicy::FirstFit)
    }

    /// Validates a spec (residual layers, filter coverage) without
    /// placing it.
    fn validate(spec: &ModelSpec) -> Result<(), AdmitError> {
        if let Some(add) = spec.network.layers().iter().find_map(|l| match l {
            Layer::Add(a) => Some(a.name.clone()),
            _ => None,
        }) {
            return Err(AdmitError::Residual(add));
        }
        let expected = spec.network.conv_like_layers().count();
        if spec.filters.len() != expected {
            return Err(AdmitError::FilterCount {
                expected,
                got: spec.filters.len(),
            });
        }
        Ok(())
    }

    /// How many chip copies the placement policy keeps per model.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        match self.placement {
            PlacementPolicy::Replicated(k) => k.max(1),
            _ => 1,
        }
    }

    /// The chips the placement policy picks for a `footprint`-cell
    /// model, primary first, or `None` when committed footprints leave
    /// room for fewer copies than the policy demands.
    fn place(&self, footprint: usize) -> Option<Vec<usize>> {
        let fits = |c: &&(usize, &ChipRegistry)| c.1.committed_cells + footprint <= c.1.budget;
        let indexed: Vec<(usize, &ChipRegistry)> = self.chips.iter().enumerate().collect();
        match self.placement {
            PlacementPolicy::FirstFit => indexed.iter().find(fits).map(|(i, _)| vec![*i]),
            PlacementPolicy::LeastLoaded => indexed
                .iter()
                .filter(fits)
                .min_by_key(|(i, c)| (c.committed_cells, *i))
                .map(|(i, _)| vec![*i]),
            PlacementPolicy::Replicated(_) => {
                let mut order: Vec<usize> = indexed.iter().filter(fits).map(|(i, _)| *i).collect();
                order.sort_by_key(|&i| (self.chips[i].committed_cells, i));
                order.truncate(self.replica_count());
                (order.len() == self.replica_count()).then_some(order)
            }
        }
    }

    /// Permissive fallback when strict placement has no room: the
    /// least-committed chips (lowest index on ties), as many distinct
    /// ones as the policy wants and the cluster has.
    fn fallback_placement(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.chips.len()).collect();
        order.sort_by_key(|&i| (self.chips[i].committed_cells, i));
        order.truncate(self.replica_count().min(self.chips.len()));
        order
    }

    /// Admits a model, assigning it the next [`ModelId`], a chip, and a
    /// dedicated executor seeded from `(base seed, admission index)`.
    ///
    /// Placement is permissive: when no chip's committed footprint leaves
    /// room, the model still lands on the least-committed chip (lowest
    /// index on ties) and the chip's LRU eviction absorbs the pressure —
    /// matching the single-registry behavior where over-budget admission
    /// thrashes rather than fails. Use [`Self::admit_strict`] to refuse
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns [`AdmitError`] if the network is residual or the filter
    /// banks do not cover its conv-like layers.
    pub fn admit(&mut self, spec: ModelSpec) -> Result<ModelId, AdmitError> {
        Self::validate(&spec)?;
        let footprint = self.footprint_of(&spec);
        let chips = self
            .place(footprint)
            .unwrap_or_else(|| self.fallback_placement());
        Ok(self.admit_on(spec, footprint, &chips))
    }

    /// [`Self::admit`] that refuses models no chip has committed room
    /// for, with an [`AdmitError::Capacity`] naming the offending
    /// footprint and the candidate chip budgets.
    ///
    /// # Errors
    ///
    /// Returns [`AdmitError`] for residual networks, uncovered filter
    /// banks, or a footprint no chip can commit to.
    pub fn admit_strict(&mut self, spec: ModelSpec) -> Result<ModelId, AdmitError> {
        Self::validate(&spec)?;
        let footprint = self.footprint_of(&spec);
        match self.place(footprint) {
            Some(chips) => Ok(self.admit_on(spec, footprint, &chips)),
            None => Err(AdmitError::Capacity {
                footprint_cells: footprint,
                replicas: self.replica_count(),
                chip_budgets: self.chips.iter().map(ChipRegistry::budget).collect(),
                committed_cells: self
                    .chips
                    .iter()
                    .map(ChipRegistry::committed_cells)
                    .collect(),
            }),
        }
    }

    /// A model's full footprint on the base array geometry (placement is
    /// geometry-driven; every chip shares the base array size).
    fn footprint_of(&self, spec: &ModelSpec) -> usize {
        DeviceExecutor::new(self.base.clone()).model_footprint_cells(&spec.network)
    }

    fn admit_on(&mut self, spec: ModelSpec, footprint_cells: usize, chips: &[usize]) -> ModelId {
        let index = self.entries.len();
        // One seeded config shared by every replica: a model's device
        // noise is a function of its admission index alone, so replicas
        // answer byte-identically and failover never changes outputs.
        let config = self
            .base
            .clone()
            .with_seed(crate::request::request_seed(self.base.seed, index as u64));
        let residencies = chips
            .iter()
            .map(|&chip| {
                self.chips[chip].committed_cells += footprint_cells;
                Residency {
                    chip,
                    executor: DeviceExecutor::new(config.clone())
                        .with_cache_budget(self.chips[chip].budget),
                }
            })
            .collect();
        self.entries.push(ModelEntry {
            spec,
            last_use: 0,
            footprint_cells,
            residencies,
        });
        ModelId(index)
    }

    /// Number of admitted models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no model has been admitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of chips.
    #[must_use]
    pub fn chip_count(&self) -> usize {
        self.chips.len()
    }

    /// The chip registry behind `chip`.
    ///
    /// # Panics
    ///
    /// Panics if the chip index is out of range.
    #[must_use]
    pub fn chip(&self, chip: ChipId) -> &ChipRegistry {
        &self.chips[chip.0]
    }

    /// The chip `id`'s *primary* residency is currently placed on.
    #[must_use]
    pub fn chip_of(&self, id: ModelId) -> ChipId {
        ChipId(self.entries[id.0].primary().chip)
    }

    /// Every chip `id` is resident on, primary first.
    #[must_use]
    pub fn residencies(&self, id: ModelId) -> Vec<ChipId> {
        self.entries[id.0]
            .residencies
            .iter()
            .map(|r| ChipId(r.chip))
            .collect()
    }

    /// The chips that can *serve* `id` right now: non-failed residencies,
    /// healthy before degraded, slot order within each class. Empty when
    /// every residency's chip is down (the recovery trigger).
    #[must_use]
    pub fn serving_residencies(&self, id: ModelId) -> Vec<ChipId> {
        let entry = &self.entries[id.0];
        let mut healthy = Vec::new();
        let mut degraded = Vec::new();
        for r in &entry.residencies {
            match self.chips[r.chip].health {
                ChipHealth::Healthy => healthy.push(ChipId(r.chip)),
                ChipHealth::Degraded => degraded.push(ChipId(r.chip)),
                ChipHealth::Failed => {}
            }
        }
        healthy.extend(degraded);
        healthy
    }

    /// The admitted spec behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this cluster.
    #[must_use]
    pub fn spec(&self, id: ModelId) -> &ModelSpec {
        &self.entries[id.0].spec
    }

    /// The model's input tensor shape (what its requests must carry).
    #[must_use]
    pub fn input_shape(&self, id: ModelId) -> TensorShape {
        self.spec(id).network.input()
    }

    /// The model's primary weight-stationary executor.
    #[must_use]
    pub fn executor(&self, id: ModelId) -> &DeviceExecutor {
        &self.entries[id.0].primary().executor
    }

    /// The model's executor on a specific chip, or `None` when `id` has
    /// no residency there.
    #[must_use]
    pub fn executor_on(&self, id: ModelId, chip: ChipId) -> Option<&DeviceExecutor> {
        self.entries[id.0]
            .residencies
            .iter()
            .find(|r| r.chip == chip.0)
            .map(|r| &r.executor)
    }

    /// Marks `id` as the most recently used model (LRU bookkeeping).
    pub fn touch(&mut self, id: ModelId) {
        self.clock += 1;
        self.entries[id.0].last_use = self.clock;
    }

    /// The model's full weight-stationary footprint in crossbar cells.
    #[must_use]
    pub fn footprint_cells(&self, id: ModelId) -> usize {
        self.entries[id.0].footprint_cells
    }

    /// The crossbar cells of `id`'s primary residency currently in its
    /// tile cache.
    #[must_use]
    pub fn resident_cells(&self, id: ModelId) -> usize {
        self.entries[id.0].primary().executor.cache_stats().cells
    }

    /// Eagerly programs + compiles the primary residency's missing tiles
    /// ([`DeviceExecutor::prewarm`]), returning how many were compiled.
    /// Never evicts: callers budget-check against the model's *chip*
    /// first, so prewarming cannot change any chip's eviction sequence.
    pub fn prewarm(&self, id: ModelId) -> usize {
        let entry = &self.entries[id.0];
        let executor = &entry.primary().executor;
        let compiled = executor.prewarm(&entry.spec.network, &entry.spec.filters);
        if compiled > 0 {
            // One discarded zero-input forward warms the executor's
            // arena pool and pages the freshly compiled gain matrices
            // in, so the model's first real batch runs at steady-state
            // speed. Executions are pure functions of their inputs —
            // a discarded one cannot change any later result.
            let shape = entry.spec.network.input();
            let zeros = oxbar_nn::reference::Tensor3::new(shape, vec![0; shape.elements()]);
            let _ = executor.forward(&entry.spec.network, &zeros, &entry.spec.filters);
        }
        compiled
    }

    /// Enforces every chip's cell budget, returning how many models were
    /// evicted. The pass repeatedly takes the lowest-indexed over-budget
    /// chip, selects its least-recently-used resident model (ties to the
    /// lowest admission index), and first offers it to a sibling chip
    /// with occupancy room — **migration**, via a bit-exact executor
    /// snapshot — falling back to eviction (tile cache cleared) when no
    /// sibling can take it. A model migrates at most once per pass: a hot
    /// potato that lands on another over-budget chip is evicted there
    /// rather than bounced again, so the pass terminates with *every*
    /// chip within budget. On a 1-chip cluster there is never a migration
    /// target, so the eviction sequence is exactly the single-registry
    /// one. Failed chips are skipped entirely: they serve nothing, and
    /// their non-volatile state is left intact for recovery.
    pub fn enforce_budget(&mut self) -> usize {
        let mut evicted = 0;
        let mut moved: HashSet<(usize, usize)> = HashSet::new();
        while let Some(chip) = (0..self.chips.len()).find(|&c| {
            self.chips[c].health != ChipHealth::Failed
                && self.chip_occupancy(ChipId(c)) > self.chips[c].budget
        }) {
            let (victim, slot) = self
                .entries
                .iter()
                .enumerate()
                .flat_map(|(idx, e)| {
                    e.residencies
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.chip == chip && r.executor.cache_stats().cells > 0)
                        .map(move |(slot, _)| (idx, slot, e.last_use))
                })
                .min_by_key(|&(idx, slot, last_use)| (last_use, idx, slot))
                .map(|(idx, slot, _)| (idx, slot))
                .expect("occupancy > 0 implies a resident model");
            match self.migration_target(victim, slot, chip) {
                Some(dest) if !moved.contains(&(victim, slot)) => {
                    self.migrate_residency(victim, slot, dest);
                    moved.insert((victim, slot));
                }
                _ => {
                    self.entries[victim].residencies[slot]
                        .executor
                        .clear_cache();
                    self.chips[chip].evictions += 1;
                    evicted += 1;
                }
            }
        }
        self.evictions += evicted as u64;
        evicted
    }

    /// The chip a victim residency could migrate to: a sibling whose
    /// current occupancy leaves room for the victim's resident cells.
    /// Commitment headroom is deliberately *not* required — a chip only
    /// over-occupies after a permissive overflow admission, in which case
    /// no sibling has committed room either, and demanding it would turn
    /// every hot-spot into an eviction. Occupancy room suffices: moving
    /// the resident state cannot push the destination over budget *now*,
    /// and if the destination's own models later return, its enforcement
    /// pass resolves the pressure the same way. Failed chips and chips
    /// already hosting another replica of the same model are never
    /// targets. Deterministic: the least-occupied eligible sibling,
    /// lowest index on ties.
    fn migration_target(&self, victim: usize, slot: usize, from: usize) -> Option<usize> {
        let entry = &self.entries[victim];
        let resident = entry.residencies[slot].executor.cache_stats().cells;
        let sibling_chips: Vec<usize> = entry.residencies.iter().map(|r| r.chip).collect();
        (0..self.chips.len())
            .filter(|&c| c != from && !sibling_chips.contains(&c))
            .filter(|&c| self.chips[c].health != ChipHealth::Failed)
            .map(|c| (self.chip_occupancy(ChipId(c)), c))
            .filter(|&(occ, c)| occ + resident <= self.chips[c].budget)
            .min()
            .map(|(_, c)| c)
    }

    /// Moves a model's primary residency to another chip. Kept as the
    /// single-residency migration entry point (tests exercise it to
    /// stage hot spots deliberately).
    #[cfg(test)]
    pub(crate) fn migrate(&mut self, victim: usize, dest: usize) {
        self.migrate_residency(victim, 0, dest);
    }

    /// Moves one residency to another chip by snapshot/restore of its
    /// programmed tile state — bit-exact, so outputs never change.
    fn migrate_residency(&mut self, victim: usize, slot: usize, dest: usize) {
        let from = self.entries[victim].residencies[slot].chip;
        let mut snap = self.entries[victim].residencies[slot].executor.snapshot();
        snap.cache_budget = self.chips[dest].budget;
        self.entries[victim].residencies[slot].executor =
            DeviceExecutor::restore_at(&snap, self.clock);
        self.entries[victim].residencies[slot].chip = dest;
        let footprint = self.entries[victim].footprint_cells;
        self.chips[from].committed_cells -= footprint;
        self.chips[dest].committed_cells += footprint;
        self.chips[from].migrations_out += 1;
        self.chips[dest].migrations_in += 1;
        self.migrations += 1;
    }

    /// Total model evictions since the cluster was created.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total cross-chip model migrations since the cluster was created.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total snapshot/restore recoveries since the cluster was created.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Wall-clock milliseconds spent in snapshot/restore recoveries
    /// (observational; never feeds back into scheduling decisions).
    #[must_use]
    pub fn recovery_ms(&self) -> f64 {
        self.recovery_ms
    }

    /// The scheduler-visible health of `chip`.
    ///
    /// # Panics
    ///
    /// Panics if the chip index is out of range.
    #[must_use]
    pub fn chip_health(&self, chip: ChipId) -> ChipHealth {
        self.chips[chip.0].health
    }

    /// Kills `chip`: marks it [`ChipHealth::Failed`] and injects a
    /// control-plane kill into every residency executor on it, so any
    /// in-flight execute surfaces [`oxbar_sim::ExecError::ChipFailed`]
    /// instead of producing output. The chip's programmed state stays
    /// snapshot-readable (PCM non-volatility), which is what
    /// [`Self::recover`] relies on.
    ///
    /// # Panics
    ///
    /// Panics if the chip index is out of range.
    pub fn kill_chip(&mut self, chip: ChipId) {
        self.mark_chip_failed(chip);
        self.inject_chip_failure(chip);
    }

    /// The health-marking half of [`Self::kill_chip`]: routing and
    /// recovery stop considering the chip, but already-dispatched
    /// executes on it still complete. The scheduler uses the split to
    /// fail a chip *between* dispatch rounds without corrupting the
    /// round in flight.
    ///
    /// # Panics
    ///
    /// Panics if the chip index is out of range.
    pub fn mark_chip_failed(&mut self, chip: ChipId) {
        self.chips[chip.0].health = ChipHealth::Failed;
    }

    /// The executor-injection half of [`Self::kill_chip`]: every
    /// residency executor on the chip starts refusing execution with
    /// [`oxbar_sim::ExecError::ChipFailed`].
    ///
    /// # Panics
    ///
    /// Panics if the chip index is out of range.
    pub fn inject_chip_failure(&self, chip: ChipId) {
        assert!(chip.0 < self.chips.len(), "chip {chip:?} out of range");
        for entry in &self.entries {
            for r in entry.residencies.iter().filter(|r| r.chip == chip.0) {
                r.executor.inject_fault(InjectedFault::Kill);
            }
        }
    }

    /// Marks `chip` drift-degraded: it keeps serving (byte-identically),
    /// but replica routing prefers healthy chips. A failed chip stays
    /// failed.
    ///
    /// # Panics
    ///
    /// Panics if the chip index is out of range.
    pub fn degrade_chip(&mut self, chip: ChipId) {
        if self.chips[chip.0].health != ChipHealth::Failed {
            self.chips[chip.0].health = ChipHealth::Degraded;
        }
        for entry in &self.entries {
            for r in entry.residencies.iter().filter(|r| r.chip == chip.0) {
                r.executor.inject_fault(InjectedFault::Drift);
            }
        }
    }

    /// Heals a drift-degraded chip back to [`ChipHealth::Healthy`] and
    /// clears the drift mark on every residency executor — the scheduler
    /// calls this after recalibration brings all of the chip's resident
    /// tiles back under the accuracy budget. A failed chip stays failed.
    ///
    /// # Panics
    ///
    /// Panics if the chip index is out of range.
    pub fn heal_chip(&mut self, chip: ChipId) {
        if self.chips[chip.0].health != ChipHealth::Degraded {
            return;
        }
        self.chips[chip.0].health = ChipHealth::Healthy;
        for entry in &self.entries {
            for r in entry.residencies.iter().filter(|r| r.chip == chip.0) {
                r.executor.clear_drift();
            }
        }
    }

    /// Advances every residency executor's virtual clock to `tick` (the
    /// global dispatch counter). Called at single-threaded drain
    /// boundaries so tile aging is a deterministic function of the
    /// workload, independent of worker count and wall clock. The cluster
    /// remembers the tick so a mid-drain recovery can stamp its restored
    /// (freshly reprogrammed) tiles at the current time.
    pub fn set_clocks(&mut self, tick: u64) {
        self.clock = self.clock.max(tick);
        for entry in &self.entries {
            for r in &entry.residencies {
                r.executor.set_clock(tick);
            }
        }
    }

    /// Records one fault-driven batch retry against `chip`.
    pub fn note_retry(&mut self, chip: ChipId) {
        self.chips[chip.0].retries += 1;
    }

    /// Records one shed request against `chip` (the chip whose failure
    /// forced the shed).
    pub fn note_shed(&mut self, chip: ChipId) {
        self.chips[chip.0].sheds += 1;
    }

    /// Recovers a model with **no serving residency** onto the
    /// least-occupied non-failed chip (lowest index on ties) by
    /// snapshot/restore of its richest residency — readable even on a
    /// killed chip, because PCM state is non-volatile. All old
    /// residencies are dropped; the model continues as a single healthy
    /// copy whose outputs are byte-identical to before the failure.
    /// Returns the destination, or `None` when every chip is failed.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this cluster.
    pub fn recover(&mut self, id: ModelId) -> Option<ChipId> {
        let dest = (0..self.chips.len())
            .filter(|&c| self.chips[c].health != ChipHealth::Failed)
            .map(|c| (self.chip_occupancy(ChipId(c)), c))
            .min()
            .map(|(_, c)| c)?;
        let started = std::time::Instant::now();
        let entry = &self.entries[id.0];
        // Snapshot the residency with the most compiled state so the
        // recovered chip starts as warm as possible; ties to slot order.
        let source = entry
            .residencies
            .iter()
            .enumerate()
            .max_by_key(|(slot, r)| (r.executor.cache_stats().cells, usize::MAX - slot))
            .map(|(_, r)| r)
            .expect("every entry has at least one residency");
        let mut snap = source.executor.snapshot();
        snap.cache_budget = self.chips[dest].budget;
        let restored = DeviceExecutor::restore_at(&snap, self.clock);
        let footprint = self.entries[id.0].footprint_cells;
        for r in &self.entries[id.0].residencies {
            self.chips[r.chip].committed_cells -= footprint;
        }
        self.chips[dest].committed_cells += footprint;
        self.entries[id.0].residencies = vec![Residency {
            chip: dest,
            executor: restored,
        }];
        self.recoveries += 1;
        self.recovery_ms += started.elapsed().as_secs_f64() * 1e3;
        Some(ChipId(dest))
    }

    /// The summed weight-stationary cell budget across chips.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.chips.iter().map(|c| c.budget).sum()
    }

    /// Summed cache occupancy across all residencies, in cells.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries
            .iter()
            .flat_map(|e| &e.residencies)
            .map(|r| r.executor.cache_stats().cells)
            .sum()
    }

    /// Summed cache occupancy of one chip's models, in cells.
    ///
    /// # Panics
    ///
    /// Panics if the chip index is out of range.
    #[must_use]
    pub fn chip_occupancy(&self, chip: ChipId) -> usize {
        assert!(chip.0 < self.chips.len(), "chip {chip:?} out of range");
        self.entries
            .iter()
            .flat_map(|e| &e.residencies)
            .filter(|r| r.chip == chip.0)
            .map(|r| r.executor.cache_stats().cells)
            .sum()
    }

    /// Per-model cache statistics (primary residency), in admission
    /// order.
    #[must_use]
    pub fn cache_stats(&self) -> Vec<ModelCacheStats> {
        self.entries
            .iter()
            .map(|e| ModelCacheStats {
                name: e.spec.name.clone(),
                chip: e.primary().chip,
                cache: e.primary().executor.cache_stats(),
            })
            .collect()
    }

    /// Per-chip serving statistics, in chip-index order.
    #[must_use]
    pub fn chip_stats(&self) -> Vec<ChipStats> {
        self.chips
            .iter()
            .enumerate()
            .map(|(c, chip)| {
                let (mut hits, mut misses, mut models, mut occupancy) = (0, 0, 0, 0);
                for r in self
                    .entries
                    .iter()
                    .flat_map(|e| &e.residencies)
                    .filter(|r| r.chip == c)
                {
                    let stats = r.executor.cache_stats();
                    hits += stats.hits;
                    misses += stats.misses;
                    occupancy += stats.cells;
                    models += 1;
                }
                ChipStats {
                    chip: c,
                    budget_cells: chip.budget,
                    occupancy_cells: occupancy,
                    models,
                    evictions: chip.evictions,
                    migrations_in: chip.migrations_in,
                    migrations_out: chip.migrations_out,
                    hits,
                    misses,
                    health: chip.health,
                    retries: chip.retries,
                    sheds: chip.sheds,
                }
            })
            .collect()
    }
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("chips", &self.chips.len())
            .field("models", &self.entries.len())
            .field("budget", &self.budget())
            .field("occupancy", &self.occupancy())
            .field("evictions", &self.evictions)
            .field("migrations", &self.migrations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_nn::synthetic;
    use oxbar_nn::zoo::lenet5;

    fn lenet_spec(seed: u64) -> ModelSpec {
        let network = lenet5();
        let filters = synthetic::filter_banks(&network, 6, seed);
        ModelSpec {
            name: format!("lenet5_{seed}"),
            network,
            filters,
            lm: None,
        }
    }

    fn make_resident(cluster: &mut Cluster, id: ModelId) {
        let spec = cluster.spec(id);
        let input = synthetic::activations(spec.network.input(), 6, 9);
        let (network, filters) = (spec.network.clone(), spec.filters.clone());
        cluster
            .executor(id)
            .forward(&network, &input, &filters)
            .unwrap();
        cluster.touch(id);
    }

    #[test]
    fn first_fit_packs_then_spills() {
        // One LeNet-5 on 128×128 is ~61k cells: chip 0 (100k) takes one,
        // the second spills to chip 1.
        let mut cluster = Cluster::new(
            SimConfig::ideal(128, 128),
            &[100_000, 100_000],
            PlacementPolicy::FirstFit,
        );
        let a = cluster.admit(lenet_spec(1)).unwrap();
        let b = cluster.admit(lenet_spec(2)).unwrap();
        assert_eq!(cluster.chip_of(a), ChipId(0));
        assert_eq!(cluster.chip_of(b), ChipId(1));
    }

    #[test]
    fn least_loaded_spreads_models() {
        let mut cluster = Cluster::new(
            SimConfig::ideal(128, 128),
            &[1_000_000, 1_000_000],
            PlacementPolicy::LeastLoaded,
        );
        let a = cluster.admit(lenet_spec(1)).unwrap();
        let b = cluster.admit(lenet_spec(2)).unwrap();
        assert_eq!(cluster.chip_of(a), ChipId(0));
        assert_eq!(cluster.chip_of(b), ChipId(1), "second model balances");
    }

    #[test]
    fn strict_admission_reports_capacity() {
        let mut cluster = Cluster::new(
            SimConfig::ideal(128, 128),
            &[10_000, 20_000],
            PlacementPolicy::FirstFit,
        );
        let err = cluster.admit_strict(lenet_spec(1)).unwrap_err();
        match &err {
            AdmitError::Capacity {
                footprint_cells,
                replicas,
                chip_budgets,
                committed_cells,
            } => {
                assert!(*footprint_cells > 20_000);
                assert_eq!(*replicas, 1);
                assert_eq!(chip_budgets, &[10_000, 20_000]);
                assert_eq!(committed_cells, &[0, 0]);
            }
            other => panic!("expected Capacity, got {other:?}"),
        }
        let shown = err.to_string();
        assert!(
            shown.contains("cells"),
            "Display names the footprint: {shown}"
        );
        // Permissive admission still lands it somewhere.
        assert!(cluster.admit(lenet_spec(1)).is_ok());
        assert_eq!(cluster.len(), 1);
    }

    #[test]
    fn over_budget_chip_migrates_to_a_sibling_bit_exactly() {
        // Chip 0 can hold one resident LeNet, chip 1 is empty and roomy.
        // Forcing both models onto chip 0 and enforcing must MIGRATE the
        // LRU model to chip 1 (not evict it), preserving its outputs.
        let mut cluster = Cluster::new(
            SimConfig::noisy(128, 128).with_threads(1),
            &[100_000, 200_000],
            PlacementPolicy::FirstFit,
        );
        let a = cluster.admit(lenet_spec(1)).unwrap();
        let b = cluster.admit(lenet_spec(2)).unwrap();
        // FirstFit put b on chip 1; drag it back to chip 0 to create the
        // hot spot deliberately.
        cluster.migrate(b.0, 0);
        assert_eq!(cluster.chip_of(b), ChipId(0));
        let spec_a = cluster.spec(a);
        let input = synthetic::activations(spec_a.network.input(), 6, 4);
        let (net_a, filt_a) = (spec_a.network.clone(), spec_a.filters.clone());
        let before = cluster
            .executor(a)
            .forward(&net_a, &input, &filt_a)
            .unwrap();
        make_resident(&mut cluster, a);
        make_resident(&mut cluster, b);
        // `make_resident` re-ran `a`'s forward; `a` is LRU after `b`.
        cluster.touch(b);
        let evicted = cluster.enforce_budget();
        assert_eq!(evicted, 0, "a sibling had room: migration, not eviction");
        assert_eq!(cluster.migrations(), 2, "setup drag + enforcement");
        assert_eq!(cluster.chip_of(a), ChipId(1), "LRU model moved");
        assert!(cluster.chip_occupancy(ChipId(0)) <= 100_000);
        assert!(
            cluster.resident_cells(a) > 0,
            "migration keeps state resident"
        );
        let after = cluster
            .executor(a)
            .forward(&net_a, &input, &filt_a)
            .unwrap();
        assert_eq!(after, before, "migration must not change outputs");
        let stats = cluster.chip_stats();
        assert_eq!(stats[0].migrations_in, 1, "the setup drag onto chip 0");
        assert_eq!(stats[1].migrations_in, 1, "the enforcement move of `a`");
        assert_eq!(stats[0].evictions, 0);
    }

    #[test]
    fn replicated_placement_spreads_copies_across_distinct_chips() {
        let mut cluster = Cluster::new(
            SimConfig::ideal(128, 128),
            &[100_000, 100_000, 100_000],
            PlacementPolicy::Replicated(2),
        );
        let a = cluster.admit_strict(lenet_spec(1)).unwrap();
        let homes = cluster.residencies(a);
        assert_eq!(homes, vec![ChipId(0), ChipId(1)], "two distinct chips");
        assert_eq!(cluster.chip_of(a), ChipId(0), "slot 0 is primary");
        // Both replicas share the admission seed → identical outputs.
        let spec = cluster.spec(a);
        let input = synthetic::activations(spec.network.input(), 6, 5);
        let (net, filt) = (spec.network.clone(), spec.filters.clone());
        let primary = cluster
            .executor_on(a, ChipId(0))
            .unwrap()
            .forward(&net, &input, &filt)
            .unwrap();
        let replica = cluster
            .executor_on(a, ChipId(1))
            .unwrap()
            .forward(&net, &input, &filt)
            .unwrap();
        assert_eq!(replica, primary, "replicas answer byte-identically");
    }

    #[test]
    fn strict_replicated_admission_demands_k_chips_with_room() {
        // Only one chip can hold a LeNet copy: Replicated(2) must refuse.
        let mut cluster = Cluster::new(
            SimConfig::ideal(128, 128),
            &[100_000, 10_000],
            PlacementPolicy::Replicated(2),
        );
        let err = cluster.admit_strict(lenet_spec(1)).unwrap_err();
        match &err {
            AdmitError::Capacity { replicas, .. } => assert_eq!(*replicas, 2),
            other => panic!("expected Capacity, got {other:?}"),
        }
        // Permissive admission clamps to the chips available.
        let a = cluster.admit(lenet_spec(1)).unwrap();
        assert_eq!(cluster.residencies(a).len(), 2);
    }

    #[test]
    fn killed_chip_fails_over_to_the_surviving_replica() {
        let mut cluster = Cluster::new(
            SimConfig::noisy(128, 128).with_threads(1),
            &[100_000, 100_000],
            PlacementPolicy::Replicated(2),
        );
        let a = cluster.admit_strict(lenet_spec(1)).unwrap();
        let spec = cluster.spec(a);
        let input = synthetic::activations(spec.network.input(), 6, 7);
        let (net, filt) = (spec.network.clone(), spec.filters.clone());
        let before = cluster
            .executor_on(a, ChipId(0))
            .unwrap()
            .forward(&net, &input, &filt)
            .unwrap();

        cluster.kill_chip(ChipId(0));
        assert_eq!(cluster.chip_health(ChipId(0)), ChipHealth::Failed);
        assert!(cluster.executor_on(a, ChipId(0)).unwrap().is_failed());
        assert_eq!(
            cluster.serving_residencies(a),
            vec![ChipId(1)],
            "routing skips the dead chip"
        );
        let after = cluster
            .executor_on(a, ChipId(1))
            .unwrap()
            .forward(&net, &input, &filt)
            .unwrap();
        assert_eq!(after, before, "failover is invisible in outputs");
    }

    #[test]
    fn unreplicated_model_recovers_by_snapshot_restore() {
        let mut cluster = Cluster::new(
            SimConfig::noisy(128, 128).with_threads(1),
            &[100_000, 100_000],
            PlacementPolicy::FirstFit,
        );
        let a = cluster.admit(lenet_spec(1)).unwrap();
        make_resident(&mut cluster, a);
        let spec = cluster.spec(a);
        let input = synthetic::activations(spec.network.input(), 6, 8);
        let (net, filt) = (spec.network.clone(), spec.filters.clone());
        let before = cluster.executor(a).forward(&net, &input, &filt).unwrap();

        cluster.kill_chip(ChipId(0));
        assert!(cluster.serving_residencies(a).is_empty());
        let dest = cluster.recover(a).expect("a healthy chip remains");
        assert_eq!(dest, ChipId(1));
        assert_eq!(cluster.chip_of(a), ChipId(1));
        assert_eq!(cluster.recoveries(), 1);
        assert!(
            cluster.resident_cells(a) > 0,
            "recovery restores the warm tile state"
        );
        let after = cluster.executor(a).forward(&net, &input, &filt).unwrap();
        assert_eq!(after, before, "recovery is byte-exact");
        // Committed bookkeeping followed the model off the dead chip.
        assert_eq!(cluster.chip(ChipId(0)).committed_cells(), 0);
        assert_eq!(
            cluster.chip(ChipId(1)).committed_cells(),
            cluster.footprint_cells(a)
        );
    }

    #[test]
    fn degraded_chips_serve_but_rank_behind_healthy_replicas() {
        let mut cluster = Cluster::new(
            SimConfig::ideal(128, 128),
            &[100_000, 100_000],
            PlacementPolicy::Replicated(2),
        );
        let a = cluster.admit_strict(lenet_spec(1)).unwrap();
        cluster.degrade_chip(ChipId(0));
        assert_eq!(cluster.chip_health(ChipId(0)), ChipHealth::Degraded);
        assert_eq!(
            cluster.serving_residencies(a),
            vec![ChipId(1), ChipId(0)],
            "healthy replica ranks first; degraded still serves"
        );
        let stats = cluster.chip_stats();
        assert_eq!(stats[0].health, ChipHealth::Degraded);
        assert_eq!(stats[1].health, ChipHealth::Healthy);
    }

    #[test]
    fn single_chip_cluster_evicts_like_the_registry() {
        let mut cluster = Cluster::single(SimConfig::ideal(128, 128), 100_000);
        let a = cluster.admit(lenet_spec(1)).unwrap();
        let b = cluster.admit(lenet_spec(2)).unwrap();
        make_resident(&mut cluster, a);
        make_resident(&mut cluster, b);
        assert!(cluster.occupancy() > cluster.budget());
        let evicted = cluster.enforce_budget();
        assert_eq!(
            evicted, 1,
            "no sibling: eviction, exactly like the registry"
        );
        assert_eq!(cluster.migrations(), 0);
        let stats = cluster.cache_stats();
        assert_eq!(stats[a.0].cache.cells, 0, "model A was least recently used");
        assert!(stats[b.0].cache.cells > 0, "model B survives");
        assert_eq!(stats[a.0].chip, 0);
    }
}
