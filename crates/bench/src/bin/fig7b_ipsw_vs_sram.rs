//! Regenerates Fig. 7b (IPS/W vs input SRAM size per batch size).
fn main() {
    oxbar_bench::figures::fig7::run_7b();
}
