//! Per-layer anatomy of ResNet-50 v1.5 on the crossbar: fold plans, compute
//! cycles, programming events, and memory traffic — the paper's "runtime
//! specs" (§V, step 1).
//!
//! ```sh
//! cargo run --release --example resnet50_inference
//! ```

use oxbar::dataflow::cycle::{CorePolicy, CycleSimulator};
use oxbar::nn::zoo::resnet50_v1_5;
use oxbar::prelude::*;

fn main() {
    let network = resnet50_v1_5();
    let engine = DataflowEngine::paper_default(128, 128, 32);
    let spec = engine.analyze(&network);

    println!(
        "{:<16} {:>5} {:>5} {:>6} {:>12} {:>8} {:>9}",
        "layer", "rf", "cf", "folds", "cycles", "util%", "dram[Mb]"
    );
    for layer in &spec.layers {
        println!(
            "{:<16} {:>5} {:>5} {:>6} {:>12} {:>8.1} {:>9.2}",
            layer.name,
            layer.plan.row_folds,
            layer.plan.col_folds,
            layer.plan.total_folds(),
            layer.compute_cycles,
            layer.utilization * 100.0,
            (layer.traffic.dram_reads + layer.traffic.dram_writes) / 1e6,
        );
    }

    println!("\nnetwork totals (batch {}):", spec.batch);
    println!("  compute cycles     : {}", spec.total_compute_cycles);
    println!("  programming events : {}", spec.total_program_events);
    println!(
        "  PCM cells written  : {} ({:.1} M)",
        spec.total_cells_programmed,
        spec.total_cells_programmed as f64 / 1e6
    );
    println!(
        "  DRAM traffic       : {:.1} Mb/batch ({:.2} Mb/inference)",
        spec.traffic.dram_total().as_megabits(),
        spec.traffic_per_inference().dram_total().as_megabits()
    );
    println!(
        "  avg utilization    : {:.1}%",
        spec.average_utilization() * 100.0
    );

    // Replay the fold stream: how well does the dual core hide programming?
    let sim = CycleSimulator::new(1000);
    for policy in [CorePolicy::SingleCore, CorePolicy::DualCore] {
        let report = sim.run(&spec, policy);
        println!(
            "  {:?}: {} cycles total, {} stalled ({:.2}% overhead)",
            policy,
            report.total_cycles,
            report.stall_cycles,
            report.stall_cycles as f64 / report.total_cycles as f64 * 100.0
        );
    }
}
