//! Whole-array programming: scheduling, delta-programming, time and energy.

use crate::cell::PcmCell;
use crate::drift::DriftModel;
use crate::levels::LevelTable;
use crate::pulse::ProgramPulse;
use crate::variation::DeviceVariation;
use oxbar_units::{Energy, Time};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How many cells the programming drivers can write simultaneously.
///
/// The system model's headline assumption (DESIGN.md §4) is
/// [`Parallelism::FullArray`]: the whole array reprograms in one ~100 ns
/// step, i.e. ~1000 MAC cycles at 10 GHz — the number that makes the paper's
/// batch-32 knee come out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// All cells programmed concurrently (one pulse time per array).
    FullArray,
    /// One row at a time (N pulse times).
    PerRow,
    /// One cell at a time (N·M pulse times) — the pessimistic bound.
    PerCell,
}

/// Aggregate results of one array programming pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramReport {
    /// Cells whose state actually changed (after delta filtering).
    pub cells_programmed: usize,
    /// Cells skipped because they already held the target level.
    pub cells_skipped: usize,
    /// Wall-clock programming time for the pass.
    pub time: Time,
    /// Total programming energy for the pass.
    pub energy: Energy,
}

/// An N×M array of PCM cells with batch programming.
///
/// # Examples
///
/// ```
/// use oxbar_pcm::array::{Parallelism, PcmArray};
///
/// let mut array = PcmArray::pristine(2, 3);
/// let w = vec![vec![0.9, 0.5, 0.0], vec![0.25, 0.75, 0.6]];
/// let report = array.program(&w, Parallelism::FullArray);
/// assert_eq!(report.cells_programmed, 6);
/// // Reprogramming the same weights is free under delta programming.
/// let again = array.program(&w, Parallelism::FullArray);
/// assert_eq!(again.cells_programmed, 0);
/// ```
#[derive(Debug, Clone)]
pub struct PcmArray {
    rows: usize,
    cols: usize,
    cells: Vec<PcmCell>,
    table: LevelTable,
    delta_programming: bool,
}

impl PcmArray {
    /// Creates a pristine (all-amorphous) array with the INT6 level table.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn pristine(rows: usize, cols: usize) -> Self {
        Self::with_device(rows, cols, PcmCell::pristine(), 6)
    }

    /// Creates an array of copies of a custom `device` with a `bits`-level
    /// table built for it.
    ///
    /// The device-level inference pipeline uses this both for realistic
    /// cells and for idealized ones (0 dB amorphous loss, very deep
    /// crystalline extinction) whose level table is exact to machine
    /// precision.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `bits` is outside `1..=8`.
    #[must_use]
    pub fn with_device(rows: usize, cols: usize, device: PcmCell, bits: u8) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self {
            rows,
            cols,
            cells: vec![device; rows * cols],
            table: LevelTable::new(bits, device),
            delta_programming: true,
        }
    }

    /// Enables/disables delta programming (skip cells already at target).
    #[must_use]
    pub fn with_delta_programming(mut self, on: bool) -> Self {
        self.delta_programming = on;
        self
    }

    /// Rows (N).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (M).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The level table in use.
    #[must_use]
    pub fn level_table(&self) -> &LevelTable {
        &self.table
    }

    /// Immutable view of a cell.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> &PcmCell {
        &self.cells[row * self.cols + col]
    }

    /// The stored field-transmission matrix.
    ///
    /// Noise-free programming leaves every cell on one of the level
    /// table's ≤ 2^bits fractions, so the per-cell `10^(−dB/20)` is
    /// memoized per distinct fraction (all cells share the same device
    /// parameters by construction) — large arrays read out in O(cells)
    /// table lookups instead of O(cells) transcendentals.
    #[must_use]
    pub fn transmissions(&self) -> Vec<Vec<f64>> {
        let mut memo = FractionMemo::default();
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| {
                        let cell = self.cell(i, j);
                        *memo
                            .entry(cell.crystalline_fraction().to_bits())
                            .or_insert_with(|| cell.transmission())
                    })
                    .collect()
            })
            .collect()
    }

    /// Programs the array to the weight matrix `weights[i][j] ∈ [0, 1]`
    /// (fractions of full scale, quantized through the INT6 table).
    ///
    /// Returns the pass's time and energy given the driver `parallelism`.
    /// Time charges one pulse duration per *parallel group that contains at
    /// least one changed cell*; energy charges one pulse per changed cell.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not match the array dimensions or contains
    /// values outside `[0, 1]`.
    pub fn program(&mut self, weights: &[Vec<f64>], parallelism: Parallelism) -> ProgramReport {
        self.program_impl(weights, parallelism, &mut |target| target)
    }

    /// Programs the array directly from integer level codes
    /// (`codes[i][j] ≤ max_code`) — the value-identical fast path for
    /// callers that already hold quantized weights, skipping the per-cell
    /// float quantization round trip (`quantize_weight(code / max) ==
    /// code` exactly).
    ///
    /// # Panics
    ///
    /// Panics if `codes` does not match the array dimensions or a code
    /// exceeds the level table.
    pub fn program_codes(&mut self, codes: &[Vec<u8>], parallelism: Parallelism) -> ProgramReport {
        self.program_codes_impl(codes, parallelism, &mut |target| target)
    }

    /// [`PcmArray::program_codes`] with stochastic [`DeviceVariation`],
    /// consuming `rng` in row-major written-cell order exactly like
    /// [`PcmArray::program_with_variation`].
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`PcmArray::program_codes`].
    pub fn program_codes_with_variation<R: Rng + ?Sized>(
        &mut self,
        codes: &[Vec<u8>],
        parallelism: Parallelism,
        variation: &DeviceVariation,
        rng: &mut R,
    ) -> ProgramReport {
        self.program_codes_impl(codes, parallelism, &mut |target| {
            variation.apply_program(target, 0.0, rng)
        })
    }

    /// One-shot noise-free program-and-readout: the `(transmissions,
    /// report)` a pristine array of `device` cells would produce after
    /// [`PcmArray::program_codes`] followed by [`PcmArray::transmissions`],
    /// computed per *code* instead of per cell (the whole chain
    /// `code → fraction → 10^(−dB/20)` collapses into one ≤ 2^bits-entry
    /// table), without materializing per-cell state.
    ///
    /// Value-identical to the two-step path; the device-level inference
    /// pipeline uses it for every tile whose noise model disables
    /// programming variation and drift.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is not `rows × cols`, a code exceeds the table,
    /// or `bits` is invalid for [`LevelTable::new`].
    #[must_use]
    pub fn noise_free_readout(
        rows: usize,
        cols: usize,
        device: PcmCell,
        bits: u8,
        codes: &[Vec<u8>],
        parallelism: Parallelism,
    ) -> (Vec<Vec<f64>>, ProgramReport) {
        assert_eq!(codes.len(), rows, "expected {rows} code rows");
        assert_eq!(
            device.crystalline_fraction(),
            0.0,
            "noise-free readout assumes a pristine (amorphous) device"
        );
        let table = LevelTable::new(bits, device);
        // Per-code readout: written cells land exactly on the code's
        // fraction; cells whose target equals the pristine fraction are
        // skipped by delta programming and stay on the pristine device.
        let pristine_transmission = device.transmission();
        let per_code: Vec<(f64, bool)> = (0..table.levels() as u16)
            .map(|code| {
                let fraction = table.fraction_for_code(code);
                let skipped = fraction.abs() < 1e-12;
                let transmission = if skipped {
                    pristine_transmission
                } else {
                    let mut cell = device;
                    cell.set_crystalline_fraction(fraction);
                    cell.transmission()
                };
                (transmission, skipped)
            })
            .collect();
        let mut programmed = 0usize;
        let mut skipped = 0usize;
        let mut rows_touched = vec![false; rows];
        let transmissions = codes
            .iter()
            .enumerate()
            .map(|(i, row)| {
                assert_eq!(row.len(), cols, "code row {i} must have {cols} cols");
                row.iter()
                    .map(|&code| {
                        let (transmission, skip) = per_code[usize::from(code)];
                        if skip {
                            skipped += 1;
                        } else {
                            programmed += 1;
                            rows_touched[i] = true;
                        }
                        transmission
                    })
                    .collect()
            })
            .collect();
        (
            transmissions,
            Self::report(parallelism, programmed, skipped, &rows_touched),
        )
    }

    /// One-shot *noisy* program-and-readout: the `(transmissions,
    /// report)` a pristine array of `device` cells would produce after
    /// [`Self::program_codes_with_variation`] (or plain
    /// [`Self::program_codes`] without `variation`) followed by
    /// [`Self::drifted_transmissions`] (or [`Self::transmissions`]
    /// without `drift`), computed in one row-major pass without
    /// materializing any per-cell array state.
    ///
    /// Value-identical to the multi-step path: the RNG is consumed in the
    /// same written-cell order, the delta-programming skip rule is
    /// unchanged, and every per-cell float op runs in the same order on
    /// the same inputs. What it removes is the `rows × cols` cell
    /// allocation and the extra passes — the dominant non-stochastic cost
    /// of programming a tile on the serving path.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is not `rows × cols`, a code exceeds the table,
    /// or `bits` is invalid for [`LevelTable::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn noisy_readout<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        device: PcmCell,
        bits: u8,
        codes: &[Vec<u8>],
        parallelism: Parallelism,
        variation: Option<(&DeviceVariation, &mut R)>,
        drift: Option<(&DriftModel, Time)>,
    ) -> (Vec<Vec<f64>>, ProgramReport) {
        assert_eq!(codes.len(), rows, "expected {rows} code rows");
        let table = LevelTable::new(bits, device);
        let max_code = table.max_code();
        let pristine_fraction = device.crystalline_fraction();
        // The cell-independent drift factor is hoisted out of the loop;
        // `None` (no drift, or drift inside the reference window) reads
        // the undrifted transmission exactly like `transmissions()`.
        let drift_factor =
            drift.and_then(|(model, elapsed)| model.drift_factor(elapsed).map(|f| (*model, f)));
        let mut variation = variation;
        let mut programmed = 0usize;
        let mut skipped = 0usize;
        let mut rows_touched = vec![false; rows];
        let transmissions = codes
            .iter()
            .enumerate()
            .map(|(i, row)| {
                assert_eq!(row.len(), cols, "code row {i} must have {cols} cols");
                row.iter()
                    .map(|&code| {
                        assert!(
                            u16::from(code) <= max_code,
                            "code {code} exceeds the {max_code}-level table"
                        );
                        let target = table.fraction_for_code(u16::from(code));
                        let mut cell = device;
                        if (pristine_fraction - target).abs() < 1e-12 {
                            skipped += 1;
                        } else {
                            let achieved = match &mut variation {
                                Some((v, rng)) => v.apply_program(target, 0.0, *rng),
                                None => target,
                            };
                            cell.set_crystalline_fraction(achieved);
                            programmed += 1;
                            rows_touched[i] = true;
                        }
                        match drift_factor {
                            Some((model, factor)) => model.transmission_with_factor(cell, factor),
                            None => cell.transmission(),
                        }
                    })
                    .collect()
            })
            .collect();
        (
            transmissions,
            Self::report(parallelism, programmed, skipped, &rows_touched),
        )
    }

    fn program_codes_impl(
        &mut self,
        codes: &[Vec<u8>],
        parallelism: Parallelism,
        achieved: &mut dyn FnMut(f64) -> f64,
    ) -> ProgramReport {
        assert_eq!(codes.len(), self.rows, "expected {} code rows", self.rows);
        let max_code = self.table.max_code();
        let mut programmed = 0usize;
        let mut skipped = 0usize;
        let mut rows_touched = vec![false; self.rows];
        for (i, row) in codes.iter().enumerate() {
            assert_eq!(
                row.len(),
                self.cols,
                "code row {i} must have {} cols",
                self.cols
            );
            for (j, &code) in row.iter().enumerate() {
                assert!(
                    u16::from(code) <= max_code,
                    "code {code} exceeds the {max_code}-level table"
                );
                let target_fraction = self.table.fraction_for_code(u16::from(code));
                let cell = &mut self.cells[i * self.cols + j];
                let unchanged = (cell.crystalline_fraction() - target_fraction).abs() < 1e-12;
                if self.delta_programming && unchanged {
                    skipped += 1;
                } else {
                    cell.set_crystalline_fraction(achieved(target_fraction));
                    programmed += 1;
                    rows_touched[i] = true;
                }
            }
        }
        Self::report(parallelism, programmed, skipped, &rows_touched)
    }

    /// Programs the array like [`PcmArray::program`], but each pulse lands
    /// with stochastic [`DeviceVariation`] drawn from `rng` — the achieved
    /// crystalline fraction deviates from the level-table target.
    ///
    /// The RNG is consumed in row-major cell order for every *written* cell
    /// (skipped cells draw nothing), so a fixed seed gives a reproducible
    /// array state.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`PcmArray::program`].
    pub fn program_with_variation<R: Rng + ?Sized>(
        &mut self,
        weights: &[Vec<f64>],
        parallelism: Parallelism,
        variation: &DeviceVariation,
        rng: &mut R,
    ) -> ProgramReport {
        self.program_impl(weights, parallelism, &mut |target| {
            variation.apply_program(target, 0.0, rng)
        })
    }

    fn program_impl(
        &mut self,
        weights: &[Vec<f64>],
        parallelism: Parallelism,
        achieved: &mut dyn FnMut(f64) -> f64,
    ) -> ProgramReport {
        assert_eq!(
            weights.len(),
            self.rows,
            "expected {} weight rows",
            self.rows
        );
        let mut programmed = 0usize;
        let mut skipped = 0usize;
        let mut rows_touched = vec![false; self.rows];
        for (i, row) in weights.iter().enumerate() {
            assert_eq!(
                row.len(),
                self.cols,
                "weight row {i} must have {} cols",
                self.cols
            );
            for (j, &w) in row.iter().enumerate() {
                let code = self.table.quantize_weight(w);
                let target_fraction = self.table.fraction_for_code(code);
                let cell = &mut self.cells[i * self.cols + j];
                let unchanged = (cell.crystalline_fraction() - target_fraction).abs() < 1e-12;
                if self.delta_programming && unchanged {
                    skipped += 1;
                } else {
                    cell.set_crystalline_fraction(achieved(target_fraction));
                    programmed += 1;
                    rows_touched[i] = true;
                }
            }
        }
        Self::report(parallelism, programmed, skipped, &rows_touched)
    }

    /// Builds the pass report from the programming counters.
    fn report(
        parallelism: Parallelism,
        programmed: usize,
        skipped: usize,
        rows_touched: &[bool],
    ) -> ProgramReport {
        let pulse = ProgramPulse::paper_default();
        let groups: u64 = match parallelism {
            Parallelism::FullArray => u64::from(programmed > 0),
            Parallelism::PerRow => rows_touched.iter().filter(|&&t| t).count() as u64,
            Parallelism::PerCell => programmed as u64,
        };
        ProgramReport {
            cells_programmed: programmed,
            cells_skipped: skipped,
            time: pulse.duration() * groups as f64,
            energy: pulse.energy() * programmed as f64,
        }
    }

    /// The field-transmission matrix after the stored weights have sat for
    /// `elapsed` under the given [`DriftModel`] (amorphous-phase
    /// relaxation). The cell-independent power-law factor is computed
    /// once for the whole array.
    #[must_use]
    pub fn drifted_transmissions(&self, drift: &DriftModel, elapsed: Time) -> Vec<Vec<f64>> {
        let factor = drift.drift_factor(elapsed);
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| match factor {
                        None => self.cell(i, j).transmission(),
                        Some(f) => drift.transmission_with_factor(*self.cell(i, j), f),
                    })
                    .collect()
            })
            .collect()
    }

    /// Worst-case programming time for this array size and parallelism
    /// (every cell changed) — what the dataflow scheduler must budget.
    #[must_use]
    pub fn worst_case_program_time(&self, parallelism: Parallelism) -> Time {
        let pulse = ProgramPulse::paper_default();
        let groups = match parallelism {
            Parallelism::FullArray => 1,
            Parallelism::PerRow => self.rows,
            Parallelism::PerCell => self.rows * self.cols,
        };
        pulse.duration() * groups as f64
    }
}

/// Multiply-xor hasher for the fraction-bit memo keys in
/// [`PcmArray::transmissions`] — the default SipHash would dominate the
/// lookup at this table size.
#[derive(Default)]
struct FractionHasher(u64);

impl std::hash::Hasher for FractionHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut z = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 32;
        self.0 = z;
    }
}

type FractionMemo =
    std::collections::HashMap<u64, f64, std::hash::BuildHasherDefault<FractionHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn code_grid(rows: usize, cols: usize, max: u8) -> Vec<Vec<u8>> {
        (0..rows)
            .map(|i| {
                (0..cols)
                    .map(|j| ((i * cols + j) % (usize::from(max) + 1)) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn program_codes_equals_float_round_trip() {
        for device in [
            PcmCell::pristine(),
            PcmCell::pristine().with_loss_range(0.0, 320.0),
        ] {
            let codes = code_grid(7, 5, 63);
            let weights: Vec<Vec<f64>> = codes
                .iter()
                .map(|row| row.iter().map(|&u| f64::from(u) / 63.0).collect())
                .collect();
            let mut a = PcmArray::with_device(7, 5, device, 6);
            let mut b = PcmArray::with_device(7, 5, device, 6);
            let ra = a.program(&weights, Parallelism::FullArray);
            let rb = b.program_codes(&codes, Parallelism::FullArray);
            assert_eq!(ra, rb);
            assert_eq!(a.transmissions(), b.transmissions());
        }
    }

    #[test]
    fn noise_free_readout_equals_two_step_path() {
        for device in [
            PcmCell::pristine(),
            PcmCell::pristine().with_loss_range(0.0, 320.0),
        ] {
            let mut codes = code_grid(9, 4, 63);
            codes[0][0] = 63; // max code exercises the delta-programming skip
            codes[8][3] = 0;
            let mut array = PcmArray::with_device(9, 4, device, 6);
            let report = array.program_codes(&codes, Parallelism::FullArray);
            let (fused_t, fused_r) =
                PcmArray::noise_free_readout(9, 4, device, 6, &codes, Parallelism::FullArray);
            assert_eq!(report, fused_r);
            assert_eq!(array.transmissions(), fused_t);
        }
    }

    #[test]
    fn full_array_time_is_one_pulse() {
        let mut array = PcmArray::pristine(8, 8);
        let w = vec![vec![0.5; 8]; 8];
        let report = array.program(&w, Parallelism::FullArray);
        assert!((report.time.as_nanoseconds() - 100.0).abs() < 1e-9);
        assert!((report.energy.as_nanojoules() - 6.4).abs() < 1e-9); // 64×100pJ
    }

    #[test]
    fn per_row_time_scales_with_rows() {
        let mut array = PcmArray::pristine(8, 4);
        let w = vec![vec![0.5; 4]; 8];
        let report = array.program(&w, Parallelism::PerRow);
        assert!((report.time.as_nanoseconds() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn per_cell_time_scales_with_cells() {
        let mut array = PcmArray::pristine(4, 4);
        let w = vec![vec![0.5; 4]; 4];
        let report = array.program(&w, Parallelism::PerCell);
        assert!((report.time.as_microseconds() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn delta_programming_skips_unchanged() {
        let mut array = PcmArray::pristine(4, 4);
        let mut w = vec![vec![0.5; 4]; 4];
        array.program(&w, Parallelism::FullArray);
        w[2][3] = 0.75;
        let report = array.program(&w, Parallelism::FullArray);
        assert_eq!(report.cells_programmed, 1);
        assert_eq!(report.cells_skipped, 15);
        assert!((report.energy.as_picojoules() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disabling_delta_reprograms_everything() {
        let mut array = PcmArray::pristine(4, 4).with_delta_programming(false);
        let w = vec![vec![0.5; 4]; 4];
        array.program(&w, Parallelism::FullArray);
        let report = array.program(&w, Parallelism::FullArray);
        assert_eq!(report.cells_programmed, 16);
    }

    #[test]
    fn stored_transmissions_match_quantized_weights() {
        let mut array = PcmArray::pristine(2, 2);
        let w = vec![vec![0.0, 0.333], vec![0.666, 1.0]];
        array.program(&w, Parallelism::FullArray);
        let table = array.level_table().clone();
        let stored = array.transmissions();
        for i in 0..2 {
            for j in 0..2 {
                let code = table.quantize_weight(w[i][j]);
                assert!(
                    (stored[i][j] - table.transmission_for_code(code)).abs() < 1e-12,
                    "cell ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn worst_case_program_times() {
        let array = PcmArray::pristine(128, 128);
        assert!(
            (array
                .worst_case_program_time(Parallelism::FullArray)
                .as_nanoseconds()
                - 100.0)
                .abs()
                < 1e-9
        );
        assert!(
            (array
                .worst_case_program_time(Parallelism::PerRow)
                .as_microseconds()
                - 12.8)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn no_change_costs_nothing() {
        let mut array = PcmArray::pristine(4, 4);
        let w = vec![vec![0.25; 4]; 4];
        array.program(&w, Parallelism::FullArray);
        let report = array.program(&w, Parallelism::PerRow);
        assert_eq!(report.cells_programmed, 0);
        assert_eq!(report.time, Time::ZERO);
        assert_eq!(report.energy, Energy::ZERO);
    }

    #[test]
    #[should_panic(expected = "expected 4 weight rows")]
    fn dimension_mismatch_panics() {
        let mut array = PcmArray::pristine(4, 4);
        let _ = array.program(&vec![vec![0.5; 4]; 3], Parallelism::FullArray);
    }

    #[test]
    fn custom_device_array_uses_its_level_table() {
        // An idealized device: lossless amorphous state, ~infinite
        // extinction, so level k sits at exactly k/63 field transmission.
        let device = PcmCell::pristine().with_loss_range(0.0, 320.0);
        let mut array = PcmArray::with_device(2, 2, device, 6);
        let w = vec![vec![10.0 / 63.0, 32.0 / 63.0], vec![1.0, 0.5]];
        array.program(&w, Parallelism::FullArray);
        let t = array.transmissions();
        assert!((t[0][0] - 10.0 / 63.0).abs() < 1e-12);
        assert!((t[0][1] - 32.0 / 63.0).abs() < 1e-12);
        assert!((t[1][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variation_perturbs_programmed_state_reproducibly() {
        use crate::variation::DeviceVariation;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let variation = DeviceVariation::new(0.02, 0.0);
        let w = vec![vec![0.5; 4]; 4];
        let run = |seed: u64| {
            let mut array = PcmArray::pristine(4, 4);
            let mut rng = StdRng::seed_from_u64(seed);
            array.program_with_variation(&w, Parallelism::FullArray, &variation, &mut rng);
            array.transmissions()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the array state");
        let c = run(8);
        assert_ne!(a, c, "different seeds must differ");
        // And the achieved state deviates from the ideal targets.
        let mut ideal = PcmArray::pristine(4, 4);
        ideal.program(&w, Parallelism::FullArray);
        assert_ne!(a, ideal.transmissions());
    }

    #[test]
    fn drifted_transmissions_decay_over_time() {
        use crate::drift::DriftModel;
        let mut array = PcmArray::pristine(2, 2);
        array.program(&vec![vec![0.5; 2]; 2], Parallelism::FullArray);
        let fresh = array.transmissions();
        let drifted = array.drifted_transmissions(&DriftModel::new(0.02), Time::from_seconds(1e6));
        for i in 0..2 {
            for j in 0..2 {
                assert!(drifted[i][j] < fresh[i][j], "cell ({i},{j})");
            }
        }
    }
}
