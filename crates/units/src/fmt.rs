//! Engineering-notation formatting shared by all quantity `Display` impls.

use core::fmt;

const PREFIXES: &[(f64, &str)] = &[
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "µ"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
];

/// Writes `value` with an SI prefix so the mantissa falls in `[1, 1000)`.
pub(crate) fn engineering(f: &mut fmt::Formatter<'_>, value: f64, unit: &str) -> fmt::Result {
    if value == 0.0 {
        return write!(f, "0 {unit}");
    }
    if !value.is_finite() {
        return write!(f, "{value} {unit}");
    }
    let magnitude = value.abs();
    for &(scale, prefix) in PREFIXES {
        if magnitude >= scale {
            return write!(f, "{:.4} {}{}", value / scale, prefix, unit);
        }
    }
    write!(f, "{value:e} {unit}")
}

#[cfg(test)]
mod tests {
    use crate::{Energy, Power, Time};

    #[test]
    fn picojoule_display() {
        assert_eq!(Energy::from_picojoules(2.5).to_string(), "2.5000 pJ");
    }

    #[test]
    fn milliwatt_display() {
        assert_eq!(Power::from_milliwatts(25.0).to_string(), "25.0000 mW");
    }

    #[test]
    fn zero_display() {
        assert_eq!(Time::ZERO.to_string(), "0 s");
    }

    #[test]
    fn large_display() {
        assert_eq!(Power::from_watts(396.0).to_string(), "396.0000 W");
    }

    #[test]
    fn negative_display() {
        assert_eq!(Power::from_watts(-1.5).to_string(), "-1.5000 W");
    }

    #[test]
    fn giga_display() {
        assert_eq!(
            crate::Frequency::from_gigahertz(10.0).to_string(),
            "10.0000 GHz"
        );
    }
}
