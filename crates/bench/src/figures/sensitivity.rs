//! Technology-parameter sensitivity (tornado) table.

use crate::{fmt, write_csv};
use oxbar_core::sensitivity::{analyze, Sensitivity};
use oxbar_core::ChipConfig;
use oxbar_nn::zoo::resnet50_v1_5;

/// Analyzes every device constant at ±20%, sorted by |elasticity|.
#[must_use]
pub fn generate() -> Vec<Sensitivity> {
    let mut table = analyze(&resnet50_v1_5(), &ChipConfig::paper_optimal(), 0.2);
    table.sort_by(|a, b| {
        b.elasticity
            .abs()
            .partial_cmp(&a.elasticity.abs())
            .expect("finite")
    });
    table
}

/// Prints the tornado table.
pub fn render(table: &[Sensitivity]) {
    println!("# Sensitivity — IPS/W elasticity to each device constant (±20%)");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "parameter", "IPS/W @-20%", "IPS/W @+20%", "elasticity"
    );
    for s in table {
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>+12.3}",
            s.parameter, s.ipsw_low, s.ipsw_high, s.elasticity
        );
    }
    println!("\n(elasticity = dln(IPS/W)/dln(param); the headline claim is robust");
    println!(" to any constant with |elasticity| well below 1)");
}

/// Analyzes and writes `results/sensitivity.csv`.
pub fn run() -> Vec<Sensitivity> {
    let table = generate();
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|s| {
            vec![
                s.parameter.to_string(),
                fmt(s.ipsw_low, 1),
                fmt(s.ipsw_high, 1),
                fmt(s.elasticity, 4),
            ]
        })
        .collect();
    write_csv(
        "sensitivity",
        &["parameter", "ipsw_minus20", "ipsw_plus20", "elasticity"],
        &rows,
    );
    table
}
