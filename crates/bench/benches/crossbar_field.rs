//! Criterion benches for the field-level photonic crossbar simulator
//! (Eq. (1) engine): propagation cost vs array size, with and without
//! losses/compensation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oxbar_photonics::crossbar::{CrossbarConfig, CrossbarSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_case(n: usize, m: usize, seed: u64) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = (0..n).map(|_| rng.random()).collect();
    let weights = (0..n)
        .map(|_| (0..m).map(|_| rng.random()).collect())
        .collect();
    (inputs, weights)
}

fn bench_ideal_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_field/ideal");
    group.sample_size(20);
    for size in [16usize, 32, 64, 128] {
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(size, size));
        let (inputs, weights) = random_case(size, size, 1);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(sim.run(black_box(&inputs), black_box(&weights))));
        });
    }
    group.finish();
}

fn bench_lossy_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_field/lossy_compensated");
    group.sample_size(20);
    for size in [32usize, 128] {
        let sim = CrossbarSimulator::new(
            CrossbarConfig::new(size, size)
                .with_losses(true)
                .with_path_loss_compensation(true),
        );
        let (inputs, weights) = random_case(size, size, 2);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(sim.run_normalized(black_box(&inputs), black_box(&weights))));
        });
    }
    group.finish();
}

fn bench_equation_one_analytic(c: &mut Criterion) {
    let sim = CrossbarSimulator::ideal(CrossbarConfig::new(128, 128));
    let (inputs, weights) = random_case(128, 128, 3);
    c.bench_function("crossbar_field/eq1_analytic_128", |b| {
        b.iter(|| black_box(sim.ideal_outputs(black_box(&inputs), black_box(&weights))));
    });
}

criterion_group!(
    benches,
    bench_ideal_propagation,
    bench_lossy_propagation,
    bench_equation_one_analytic
);
criterion_main!(benches);
