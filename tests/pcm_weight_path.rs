//! The weight path: mapped CNN weights → PCM array programming → stored
//! transmissions → crossbar MAC, including delta programming across folds.

use oxbar::nn::mapping::{MappedWeights, WeightMapping};
use oxbar::pcm::array::{Parallelism, PcmArray};
use oxbar::photonics::crossbar::{CrossbarConfig, CrossbarSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_signed(n: usize, m: usize, seed: u64) -> Vec<Vec<i8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..m).map(|_| rng.random_range(-31..=31)).collect())
        .collect()
}

#[test]
fn programmed_array_reproduces_mapped_weights() {
    let n = 16;
    let m = 8;
    let signed = random_signed(n, m, 3);
    let mapped = MappedWeights::map(&signed, WeightMapping::Offset, 31);
    let targets = mapped.transmissions();

    let mut array = PcmArray::pristine(n, m);
    let report = array.program(&targets, Parallelism::FullArray);
    assert!(report.cells_programmed > 0);
    assert!((report.time.as_nanoseconds() - 100.0).abs() < 1e-9);

    // Stored transmissions match the INT6-quantized targets.
    let table = array.level_table().clone();
    let stored = array.transmissions();
    for i in 0..n {
        for j in 0..m {
            let expected = table.transmission_for_code(table.quantize_weight(targets[i][j]));
            assert!(
                (stored[i][j] - expected).abs() < 1e-12,
                "cell ({i},{j}): stored {} expected {expected}",
                stored[i][j]
            );
        }
    }
}

#[test]
fn stored_weights_drive_the_crossbar() {
    let n = 16;
    let m = 4;
    let signed = random_signed(n, m, 9);
    let mapped = MappedWeights::map(&signed, WeightMapping::Offset, 31);

    let mut array = PcmArray::pristine(n, m);
    array.program(&mapped.transmissions(), Parallelism::FullArray);

    // The stored (PCM-quantized) transmissions run through the field sim.
    // Normalize by the amorphous-state ceiling the level table encodes so
    // code 63 maps back to weight 1.0.
    let t_max = oxbar::pcm::PcmCell::pristine().max_transmission();
    let stored: Vec<Vec<f64>> = array
        .transmissions()
        .iter()
        .map(|row| row.iter().map(|&t| (t / t_max).min(1.0)).collect())
        .collect();
    let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
    let mut rng = StdRng::seed_from_u64(10);
    let inputs: Vec<f64> = (0..n).map(|_| rng.random()).collect();
    let ys = sim.run_normalized(&inputs, &stored);

    // Compare with the mathematically mapped weights: PCM quantization may
    // move each weight by ≤ half an LSB of 1/63.
    let ideal = sim.run_normalized(&inputs, &mapped.transmissions());
    for (a, b) in ys.iter().zip(&ideal) {
        assert!((a - b).abs() < 1.0 / 63.0, "{a} vs {b}");
    }
}

#[test]
fn fold_switching_uses_delta_programming() {
    // Two folds of the same layer share many zero (offset-code 31) cells;
    // switching between them reprograms only what changed.
    let n = 32;
    let m = 16;
    let fold_a = MappedWeights::map(&random_signed(n, m, 20), WeightMapping::Offset, 31);
    let mut fold_b_signed = random_signed(n, m, 20);
    // Perturb 10% of the weights to make fold B.
    let mut rng = StdRng::seed_from_u64(21);
    for row in fold_b_signed.iter_mut() {
        for w in row.iter_mut() {
            if rng.random::<f64>() < 0.1 {
                *w = rng.random_range(-31..=31);
            }
        }
    }
    let fold_b = MappedWeights::map(&fold_b_signed, WeightMapping::Offset, 31);

    let mut array = PcmArray::pristine(n, m);
    array.program(&fold_a.transmissions(), Parallelism::FullArray);
    let switch = array.program(&fold_b.transmissions(), Parallelism::FullArray);
    let total_cells = n * m;
    assert!(
        switch.cells_programmed < total_cells / 2,
        "delta programming should touch only changed cells: {} of {}",
        switch.cells_programmed,
        total_cells
    );
    assert!(switch.cells_skipped > total_cells / 2);
}

#[test]
fn program_energy_matches_system_model_constant() {
    // The dataflow/power models charge 100 pJ per written cell; the PCM
    // array's accounting must agree.
    let n = 8;
    let m = 8;
    let mut array = PcmArray::pristine(n, m).with_delta_programming(false);
    let weights = vec![vec![0.5; m]; n];
    let report = array.program(&weights, Parallelism::FullArray);
    assert_eq!(report.cells_programmed, n * m);
    let expected_pj = (n * m) as f64 * 100.0;
    assert!((report.energy.as_picojoules() - expected_pj).abs() < 1e-9);
}
