//! Fig. 1 — the AI/ML processor landscape (TOPS vs TOPS/W).

use crate::{fmt, write_csv};
use oxbar_core::landscape::{published_landscape, this_work_point, ProcessorClass, ProcessorPoint};
use oxbar_core::{Chip, ChipConfig};
use oxbar_nn::zoo::resnet50_v1_5;

/// Generates the landscape including this work's point.
#[must_use]
pub fn generate() -> Vec<ProcessorPoint> {
    let report = Chip::new(ChipConfig::paper_optimal()).evaluate(&resnet50_v1_5());
    let mut points = published_landscape();
    points.push(this_work_point(&report));
    points
}

/// Prints the series and writes `results/fig1_landscape.csv`.
pub fn run() {
    println!("# Fig. 1 — AI/ML processor landscape (TOPS vs TOPS/W)");
    println!("{:38} {:>10} {:>10}  class", "processor", "TOPS", "TOPS/W");
    let points = generate();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let class = match p.class {
                ProcessorClass::Edge => "edge",
                ProcessorClass::Datacenter => "datacenter",
                ProcessorClass::Photonic => "photonic",
            };
            println!(
                "{:38} {:>10.3} {:>10.2}  {class}",
                p.name, p.tops, p.tops_per_watt
            );
            vec![
                p.name.clone(),
                fmt(p.tops, 3),
                fmt(p.tops_per_watt, 3),
                class.to_string(),
            ]
        })
        .collect();
    write_csv(
        "fig1_landscape",
        &["processor", "tops", "tops_per_watt", "class"],
        &rows,
    );
}
