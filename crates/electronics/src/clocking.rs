//! High-speed clock generation and distribution.

use oxbar_units::{Area, Energy, Frequency, Power};
use serde::{Deserialize, Serialize};

/// Clock generation/distribution for one row or column of transceivers.
///
/// The paper assumes **200 fJ per cycle and 0.005 mm² per row/column**
/// (§III.B.3, ref. \[15\]).
///
/// # Examples
///
/// ```
/// use oxbar_electronics::clocking::ClockDistribution;
/// use oxbar_units::Frequency;
///
/// let clk = ClockDistribution::paper_default(Frequency::from_gigahertz(10.0));
/// assert!((clk.power().as_milliwatts() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDistribution {
    clock: Frequency,
    energy_per_cycle: Energy,
    area: Area,
}

impl ClockDistribution {
    /// Clock energy per cycle per row/column (ref. \[15\]).
    pub const ENERGY_PER_CYCLE_FJ: f64 = 200.0;
    /// Area per row/column (ref. \[15\]).
    pub const AREA_MM2: f64 = 0.005;

    /// The paper's clocking block at the given MAC clock.
    ///
    /// # Panics
    ///
    /// Panics if the clock is not positive.
    #[must_use]
    pub fn paper_default(clock: Frequency) -> Self {
        assert!(clock.as_hertz() > 0.0, "clock must be positive");
        Self {
            clock,
            energy_per_cycle: Energy::from_femtojoules(Self::ENERGY_PER_CYCLE_FJ),
            area: Area::from_square_millimeters(Self::AREA_MM2),
        }
    }

    /// Clock frequency.
    #[must_use]
    pub fn clock(self) -> Frequency {
        self.clock
    }

    /// Power for one row/column's clock network.
    #[must_use]
    pub fn power(self) -> Power {
        self.energy_per_cycle * self.clock
    }

    /// Area for one row/column's clock network.
    #[must_use]
    pub fn area(self) -> Area {
        self.area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_at_10ghz() {
        let clk = ClockDistribution::paper_default(Frequency::from_gigahertz(10.0));
        assert!((clk.power().as_milliwatts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_linear_in_clock() {
        let a = ClockDistribution::paper_default(Frequency::from_gigahertz(1.0));
        let b = ClockDistribution::paper_default(Frequency::from_gigahertz(10.0));
        assert!((b.power().as_watts() / a.power().as_watts() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn area_reference() {
        let clk = ClockDistribution::paper_default(Frequency::from_gigahertz(10.0));
        assert!((clk.area().as_square_millimeters() - 0.005).abs() < 1e-15);
    }
}
