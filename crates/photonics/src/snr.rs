//! SNR / effective-number-of-bits (ENOB) link-budget helpers.
//!
//! These size the laser: the crossbar's analog output must be resolvable to
//! the INT6 precision the paper assumes, which sets a minimum full-scale
//! signal power at each column receiver.

use crate::detector::{BalancedReceiver, Photodiode};
use crate::noise::ReceiverNoise;
use crate::Field;
use oxbar_units::{Frequency, Power};

/// SNR (dB) required for a given effective number of bits.
///
/// The standard quantization-noise relation `SNR = 6.02·ENOB + 1.76 dB`.
///
/// # Examples
///
/// ```
/// let snr = oxbar_photonics::snr::snr_db_for_enob(6.0);
/// assert!((snr - 37.88).abs() < 0.01);
/// ```
#[must_use]
pub fn snr_db_for_enob(enob: f64) -> f64 {
    6.02 * enob + 1.76
}

/// ENOB achieved at a given SNR (dB).
#[must_use]
pub fn enob_for_snr_db(snr_db: f64) -> f64 {
    (snr_db - 1.76) / 6.02
}

/// Computes the SNR (dB) of a balanced coherent receiver for a full-scale
/// signal field.
#[must_use]
pub fn coherent_snr_db(
    receiver: BalancedReceiver,
    noise: &ReceiverNoise,
    full_scale_signal: Field,
    bandwidth: Frequency,
) -> f64 {
    let signal = receiver.detect(full_scale_signal).abs();
    let sigma = noise.total_sigma(receiver.lo_dc_current(), signal, bandwidth);
    20.0 * (signal / sigma).log10()
}

/// Minimum full-scale signal power at the column output needed to resolve
/// `enob` bits at `bandwidth`, for a balanced receiver with the given LO.
///
/// Solves `SNR = I_sig² / σ²` for the signal power, with
/// `I_sig = 2R√(P_lo·P_s)`.
///
/// # Panics
///
/// Panics if the LO power is zero.
#[must_use]
pub fn required_signal_power(
    enob: f64,
    bandwidth: Frequency,
    photodiode: Photodiode,
    lo_power: Power,
    noise: &ReceiverNoise,
) -> Power {
    assert!(
        lo_power.as_watts() > 0.0,
        "coherent detection requires a non-zero LO"
    );
    let snr = 10f64.powf(snr_db_for_enob(enob) / 10.0);
    let r = photodiode.responsivity();
    let lo_dc = r * lo_power.as_watts() / 2.0;
    let sigma = noise.total_sigma(lo_dc, 0.0, bandwidth);
    // I_sig = √(SNR)·σ ⇒ P_s = I_sig² / (4 R² P_lo).
    let i_sig = snr.sqrt() * sigma;
    Power::from_watts(i_sig * i_sig / (4.0 * r * r * lo_power.as_watts()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enob_snr_round_trip() {
        for enob in [4.0, 6.0, 8.0] {
            assert!((enob_for_snr_db(snr_db_for_enob(enob)) - enob).abs() < 1e-12);
        }
    }

    #[test]
    fn six_bits_needs_about_38_db() {
        assert!((snr_db_for_enob(6.0) - 37.88).abs() < 1e-9);
    }

    #[test]
    fn required_power_increases_with_enob() {
        let noise = ReceiverNoise::default();
        let b = Frequency::from_gigahertz(10.0);
        let pd = Photodiode::default();
        let lo = Power::from_milliwatts(1.0);
        let p6 = required_signal_power(6.0, b, pd, lo, &noise);
        let p8 = required_signal_power(8.0, b, pd, lo, &noise);
        assert!(p8 > p6);
        // 6-bit at 10 GHz should land in the microwatt range.
        assert!(p6.as_microwatts() > 0.1 && p6.as_microwatts() < 100.0);
    }

    #[test]
    fn required_power_achieves_target_snr() {
        let noise = ReceiverNoise::default();
        let b = Frequency::from_gigahertz(10.0);
        let pd = Photodiode::default();
        let lo_power = Power::from_milliwatts(1.0);
        let p = required_signal_power(6.0, b, pd, lo_power, &noise);
        let rx = BalancedReceiver::new(pd, Field::from_power(lo_power, 0.0));
        let snr = coherent_snr_db(rx, &noise, Field::from_power(p, 0.0), b);
        assert!((snr - snr_db_for_enob(6.0)).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "non-zero LO")]
    fn zero_lo_panics() {
        let _ = required_signal_power(
            6.0,
            Frequency::from_gigahertz(10.0),
            Photodiode::default(),
            Power::ZERO,
            &ReceiverNoise::default(),
        );
    }
}
