//! The analytic dataflow engine (SCALE-sim equivalent).

use crate::fold::FoldPlan;
use crate::spec::{LayerSpec, NetworkSpec};
use oxbar_memory::system::SramSizing;
use oxbar_memory::TrafficStats;
use oxbar_nn::{Conv2d, Network};
use serde::{Deserialize, Serialize};

/// Dataflow modeling options — the paper's three SCALE-sim modifications
/// plus precision knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelOptions {
    /// Data precision (activations and weights), bits.
    pub precision_bits: u8,
    /// Partial-sum width, bits.
    pub accumulator_bits: u8,
    /// Paper modification 2: on-chip partial-sum accumulator. When off,
    /// partial sums spill through the output SRAM (or DRAM if oversized).
    pub use_accumulator: bool,
    /// Paper modification 3: forward layer outputs directly from output
    /// SRAM to input SRAM, skipping DRAM.
    pub output_sram_reuse: bool,
    /// Physical columns per logical output (1 = offset mapping,
    /// 2 = differential).
    pub cols_per_output: usize,
}

impl Default for ModelOptions {
    fn default() -> Self {
        Self {
            precision_bits: 6,
            accumulator_bits: 24,
            use_accumulator: true,
            output_sram_reuse: true,
            cols_per_output: 1,
        }
    }
}

/// The analytic runtime-spec engine for a fixed chip parameter set.
///
/// # Examples
///
/// ```
/// use oxbar_dataflow::DataflowEngine;
/// use oxbar_nn::zoo::lenet5;
///
/// let engine = DataflowEngine::paper_default(128, 128, 32);
/// let spec = engine.analyze(&lenet5());
/// assert_eq!(spec.layers.len(), 5); // 2 convs + 3 FCs
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowEngine {
    array_rows: usize,
    array_cols: usize,
    batch: usize,
    sram: SramSizing,
    options: ModelOptions,
}

impl DataflowEngine {
    /// Engine with the paper's default SRAM sizing and options.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the batch is zero.
    #[must_use]
    pub fn paper_default(array_rows: usize, array_cols: usize, batch: usize) -> Self {
        Self::new(
            array_rows,
            array_cols,
            batch,
            SramSizing::paper_default(),
            ModelOptions::default(),
        )
    }

    /// Fully-parameterized engine.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the batch is zero.
    #[must_use]
    pub fn new(
        array_rows: usize,
        array_cols: usize,
        batch: usize,
        sram: SramSizing,
        options: ModelOptions,
    ) -> Self {
        assert!(
            array_rows > 0 && array_cols > 0 && batch > 0,
            "array dimensions and batch must be non-zero"
        );
        Self {
            array_rows,
            array_cols,
            batch,
            sram,
            options,
        }
    }

    /// Array rows (N).
    #[must_use]
    pub fn array_rows(&self) -> usize {
        self.array_rows
    }

    /// Array columns (M).
    #[must_use]
    pub fn array_cols(&self) -> usize {
        self.array_cols
    }

    /// Batch size.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// SRAM sizing in use.
    #[must_use]
    pub fn sram(&self) -> SramSizing {
        self.sram
    }

    /// Modeling options in use.
    #[must_use]
    pub fn options(&self) -> ModelOptions {
        self.options
    }

    /// Analyzes a network, producing per-layer and total runtime specs for
    /// one batch pass.
    #[must_use]
    pub fn analyze(&self, network: &Network) -> NetworkSpec {
        let convs: Vec<Conv2d> = network.conv_like_layers().collect();
        let mut layers = Vec::with_capacity(convs.len());
        for (idx, conv) in convs.iter().enumerate() {
            let is_first = idx == 0;
            let is_last = idx == convs.len() - 1;
            layers.push(self.analyze_layer(conv, is_first, is_last));
        }
        NetworkSpec::from_layers(
            network.name().to_string(),
            self.batch,
            self.array_rows,
            self.array_cols,
            layers,
        )
    }

    /// Analyzes a single conv-like layer.
    ///
    /// `first`/`last` mark the network boundary layers whose activations
    /// must come from / go to DRAM regardless of forwarding.
    #[must_use]
    pub fn analyze_layer(&self, conv: &Conv2d, first: bool, last: bool) -> LayerSpec {
        let bits = f64::from(self.options.precision_bits);
        let acc_bits = f64::from(self.options.accumulator_bits);
        let batch = self.batch as f64;
        let plan = FoldPlan::plan(
            conv,
            self.array_rows,
            self.array_cols,
            self.options.cols_per_output,
        );
        let compute_cycles = plan.compute_cycles(self.batch);
        let cycles = compute_cycles as f64;
        let total_folds = plan.total_folds() as f64;

        let mut t = TrafficStats::default();

        // --- Input activations -----------------------------------------
        // Working set: the layer's whole ifmap for the batch.
        let ifmap_bits = conv.input.elements() as f64 * bits * batch;
        let ifmap_fits = ifmap_bits <= self.sram.input.as_bits();
        // The array consumes a `rows_used`-deep vector every cycle.
        t.input_sram_reads = cycles * plan.rows_used as f64 * bits;
        if ifmap_fits {
            // Staged once; source is DRAM unless forwarded by the producer.
            t.input_sram_writes = ifmap_bits;
            if first || !self.options.output_sram_reuse {
                t.dram_reads += ifmap_bits;
            }
        } else {
            // Too big to stage: every fold re-streams the ifmap from DRAM
            // through the input SRAM acting as a FIFO.
            t.input_sram_writes = ifmap_bits * total_folds;
            t.dram_reads += ifmap_bits * total_folds;
        }

        // --- Filter weights ---------------------------------------------
        // Weights stream from DRAM once per batch pass (amortized by B),
        // staged through the filter SRAM and read out to program the PCM.
        // Differential expansion (u⁺/u⁻) happens digitally on-chip, so the
        // stored/streamed volume is the signed weight count.
        let weight_bits = plan.weight_cells() as f64 * bits;
        t.dram_reads += weight_bits;
        t.filter_sram_writes = weight_bits;
        t.filter_sram_reads = weight_bits;

        // --- Partial sums -----------------------------------------------
        // Each cycle lands `cols_used` partial sums. With more than one row
        // fold they are read-modify-written until the last fold completes.
        let psum_writes = cycles * plan.cols_used as f64 * acc_bits;
        let psum_reads = if plan.row_folds > 1 {
            psum_writes * (plan.row_folds as f64 - 1.0) / plan.row_folds as f64
        } else {
            0.0
        };
        if self.options.use_accumulator {
            t.accumulator_sram_writes = psum_writes;
            t.accumulator_sram_reads = psum_reads;
        } else {
            // Ablation: partials spill through the output SRAM if the
            // working set fits, otherwise through DRAM.
            let psum_working_set = plan.output_pixels as f64
                * batch
                * (plan.cols_used * plan.col_folds) as f64
                * acc_bits;
            if psum_working_set <= self.sram.output.as_bits() {
                t.output_sram_writes += psum_writes;
                t.output_sram_reads += psum_reads;
            } else {
                t.dram_writes += psum_writes;
                t.dram_reads += psum_reads;
            }
        }

        // --- Outputs ------------------------------------------------------
        let ofmap_bits = conv.output_shape().elements() as f64 * bits * batch;
        t.output_sram_writes += ofmap_bits;
        t.output_sram_reads += ofmap_bits; // drained to forward or spill
        let ofmap_fits_input = ofmap_bits <= self.sram.input.as_bits();
        if last {
            t.dram_writes += ofmap_bits;
        } else if self.options.output_sram_reuse && ofmap_fits_input {
            // Forwarded into the input SRAM: charged as the consumer's
            // input_sram_writes (counted there), no DRAM round trip.
        } else {
            // Producer spills to DRAM. The consumer side charges the
            // re-read: once if its ifmap fits (reuse off), or per fold if
            // it does not fit (its `ifmap_fits` branch).
            t.dram_writes += ofmap_bits;
        }

        LayerSpec {
            name: conv.name.clone(),
            compute_cycles,
            program_events: plan.total_folds() as u64,
            cells_programmed: plan.cells_per_batch(),
            traffic: t,
            utilization: plan.utilization(self.batch),
            plan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_nn::zoo::{lenet5, resnet50_v1_5};
    use oxbar_units::DataVolume;

    fn small_engine(batch: usize) -> DataflowEngine {
        DataflowEngine::paper_default(128, 128, batch)
    }

    #[test]
    fn resnet50_cycles_scale_is_right() {
        let spec = small_engine(32).analyze(&resnet50_v1_5());
        let per_image = spec.compute_cycles_per_inference();
        // 4.1 GMACs / 16384 MACs-per-cycle ≈ 250k ideal; folding overheads
        // push it somewhat higher but same order.
        assert!(
            per_image > 250_000.0 && per_image < 500_000.0,
            "{per_image}"
        );
    }

    #[test]
    fn resnet50_weights_stream_once_per_batch() {
        let spec = small_engine(32).analyze(&resnet50_v1_5());
        let filter_bits: f64 = spec.traffic.filter_sram_writes;
        // 23.45 M conv weights + 2.048 M FC weights at 6 b ≈ 153 Mb.
        let expected = 25_502_912.0 * 6.0;
        assert!(
            (filter_bits / expected - 1.0).abs() < 0.01,
            "filter bits {filter_bits} vs {expected}"
        );
    }

    #[test]
    fn batch_32_fits_input_sram_but_64_does_not() {
        // The Fig. 7a mechanism: the largest ResNet-50 activation is
        // 112×112×64×6b ≈ 0.6 MB/image. At batch 32 (19.3 MB) it fits the
        // 26.3 MB input SRAM; at batch 64 (38.5 MB) it does not, and DRAM
        // traffic explodes with fold re-streaming.
        let net = resnet50_v1_5();
        let dram32 = small_engine(32)
            .analyze(&net)
            .traffic_per_inference()
            .dram_total()
            .as_bits();
        let dram64 = small_engine(64)
            .analyze(&net)
            .traffic_per_inference()
            .dram_total()
            .as_bits();
        assert!(
            dram64 > 3.0 * dram32,
            "expected a steep DRAM step: b32={dram32} b64={dram64}"
        );
    }

    #[test]
    fn output_reuse_eliminates_intermediate_dram() {
        let net = lenet5();
        let with_reuse = small_engine(1).analyze(&net);
        let engine_no_reuse = DataflowEngine::new(
            128,
            128,
            1,
            SramSizing::paper_default(),
            ModelOptions {
                output_sram_reuse: false,
                ..ModelOptions::default()
            },
        );
        let without = engine_no_reuse.analyze(&net);
        assert!(without.traffic.dram_total().as_bits() > with_reuse.traffic.dram_total().as_bits());
    }

    #[test]
    fn accumulator_absorbs_psum_traffic() {
        let net = resnet50_v1_5();
        let with_acc = small_engine(8).analyze(&net);
        let engine_no_acc = DataflowEngine::new(
            128,
            128,
            8,
            SramSizing::paper_default(),
            ModelOptions {
                use_accumulator: false,
                ..ModelOptions::default()
            },
        );
        let without = engine_no_acc.analyze(&net);
        assert!(with_acc.traffic.accumulator_sram_writes > 0.0);
        assert_eq!(without.traffic.accumulator_sram_writes, 0.0);
        // Without the accumulator the same partial-sum volume lands on the
        // output SRAM / DRAM instead.
        assert!(
            without.traffic.output_sram_writes + without.traffic.dram_writes
                > with_acc.traffic.output_sram_writes + with_acc.traffic.dram_writes
        );
    }

    #[test]
    fn first_layer_always_reads_dram() {
        let spec = small_engine(1).analyze(&lenet5());
        let first = &spec.layers[0];
        // 28×28×1×6b input.
        assert!(first.traffic.dram_reads >= 28.0 * 28.0 * 6.0);
    }

    #[test]
    fn last_layer_always_writes_dram() {
        let spec = small_engine(1).analyze(&lenet5());
        let last = spec.layers.last().unwrap();
        assert!(last.traffic.dram_writes >= 10.0 * 6.0);
    }

    #[test]
    fn program_events_match_fold_plans() {
        let spec = small_engine(4).analyze(&resnet50_v1_5());
        for layer in &spec.layers {
            assert_eq!(layer.program_events, layer.plan.total_folds() as u64);
        }
    }

    #[test]
    fn bigger_array_reduces_cycles() {
        let net = resnet50_v1_5();
        let small = DataflowEngine::paper_default(32, 32, 8).analyze(&net);
        let large = DataflowEngine::paper_default(256, 256, 8).analyze(&net);
        assert!(large.total_compute_cycles < small.total_compute_cycles);
    }

    #[test]
    fn tiny_input_sram_forces_streaming() {
        let sizing = SramSizing::paper_default().with_input(DataVolume::from_kilobytes(16.0));
        let engine = DataflowEngine::new(128, 128, 8, sizing, ModelOptions::default());
        let baseline = small_engine(8).analyze(&resnet50_v1_5());
        let starved = engine.analyze(&resnet50_v1_5());
        assert!(
            starved.traffic.dram_reads > 5.0 * baseline.traffic.dram_reads,
            "starved {} vs baseline {}",
            starved.traffic.dram_reads,
            baseline.traffic.dram_reads
        );
    }
}
