//! Regenerates Fig. 8 (power and area breakdown).
use oxbar_bench::figures::fig8;
fn main() {
    fig8::render(&fig8::run());
}
