//! Signed INT quantization for weights and activations.

use serde::{Deserialize, Serialize};

/// A symmetric signed quantizer (`bits` total, codes in `[-Q, +Q]` with
/// `Q = 2^(bits−1) − 1`; the most negative code is unused, the standard
/// symmetric scheme).
///
/// The paper assumes INT6 end to end (§I, refs. \[4\], \[5\]).
///
/// # Examples
///
/// ```
/// use oxbar_nn::quant::SignedQuantizer;
///
/// let q = SignedQuantizer::int6();
/// assert_eq!(q.q_max(), 31);
/// let (codes, scale) = q.quantize_tensor(&[0.5, -1.0, 0.25]);
/// assert_eq!(codes, vec![16, -31, 8]);
/// assert!((scale - 1.0 / 31.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedQuantizer {
    bits: u8,
}

impl SignedQuantizer {
    /// Creates a quantizer with `bits` of resolution.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 8`.
    #[must_use]
    pub fn new(bits: u8) -> Self {
        assert!((2..=8).contains(&bits), "bits must be in 2..=8, got {bits}");
        Self { bits }
    }

    /// The paper's INT6 quantizer.
    #[must_use]
    pub fn int6() -> Self {
        Self::new(6)
    }

    /// Resolution in bits.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// The positive code limit `Q`.
    #[must_use]
    pub fn q_max(self) -> i8 {
        ((1i16 << (self.bits - 1)) - 1) as i8
    }

    /// Quantizes one value given the tensor scale (`value ≈ code × scale`).
    #[must_use]
    pub fn quantize(self, value: f64, scale: f64) -> i8 {
        let q = f64::from(self.q_max());
        (value / scale).round().clamp(-q, q) as i8
    }

    /// Dequantizes one code.
    #[must_use]
    pub fn dequantize(self, code: i8, scale: f64) -> f64 {
        f64::from(code) * scale
    }

    /// Quantizes a tensor with the max-abs scale, returning `(codes, scale)`.
    ///
    /// An all-zero tensor quantizes to zeros at scale 1.
    #[must_use]
    pub fn quantize_tensor(self, values: &[f64]) -> (Vec<i8>, f64) {
        let max_abs = values.iter().fold(0f64, |m, v| m.max(v.abs()));
        if max_abs == 0.0 {
            return (vec![0; values.len()], 1.0);
        }
        let scale = max_abs / f64::from(self.q_max());
        (
            values.iter().map(|&v| self.quantize(v, scale)).collect(),
            scale,
        )
    }

    /// RMS quantization error of a round trip, relative to full scale.
    #[must_use]
    pub fn rms_error(self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let (codes, scale) = self.quantize_tensor(values);
        let full_scale = f64::from(self.q_max()) * scale;
        let mse: f64 = values
            .iter()
            .zip(&codes)
            .map(|(&v, &c)| (v - self.dequantize(c, scale)).powi(2))
            .sum::<f64>()
            / values.len() as f64;
        mse.sqrt() / full_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int6_limits() {
        let q = SignedQuantizer::int6();
        assert_eq!(q.q_max(), 31);
        assert_eq!(q.quantize(10.0, 0.1), 31); // clamped
        assert_eq!(q.quantize(-10.0, 0.1), -31); // symmetric clamp
    }

    #[test]
    fn round_trip_error_within_half_lsb() {
        let q = SignedQuantizer::int6();
        let values: Vec<f64> = (-100..=100).map(|k| f64::from(k) / 100.0).collect();
        let (codes, scale) = q.quantize_tensor(&values);
        for (v, c) in values.iter().zip(&codes) {
            assert!((v - q.dequantize(*c, scale)).abs() <= scale / 2.0 + 1e-12);
        }
    }

    #[test]
    fn all_zero_tensor() {
        let q = SignedQuantizer::int6();
        let (codes, scale) = q.quantize_tensor(&[0.0, 0.0]);
        assert_eq!(codes, vec![0, 0]);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn rms_error_drops_with_bits() {
        let values: Vec<f64> = (0..500).map(|k| (k as f64 * 0.37).sin()).collect();
        let e4 = SignedQuantizer::new(4).rms_error(&values);
        let e6 = SignedQuantizer::new(6).rms_error(&values);
        let e8 = SignedQuantizer::new(8).rms_error(&values);
        assert!(e4 > e6 && e6 > e8);
        // INT6 RMS error should be well under 1% of full scale.
        assert!(e6 < 0.01, "e6 = {e6}");
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=8")]
    fn invalid_bits_panics() {
        let _ = SignedQuantizer::new(1);
    }
}
