//! 1→N splitter tree feeding the crossbar rows.

use crate::Field;
use oxbar_units::Decibel;
use serde::{Deserialize, Serialize};

/// A binary splitter tree that divides the laser field across `n` outputs.
///
/// An ideal 1→N split divides power equally (`P/N` per port, field `E/√N`);
/// real MMI splitter stages add a small excess loss per stage. The paper
/// budgets 0.8 dB total for its splitting tree (§III, ref. \[13\]).
///
/// # Examples
///
/// ```
/// use oxbar_photonics::splitter::SplitterTree;
/// use oxbar_photonics::Field;
/// use oxbar_units::{Decibel, Power};
///
/// let tree = SplitterTree::new(128, Decibel::new(0.8)).unwrap();
/// let ports = tree.split(Field::from_power(Power::from_milliwatts(128.0), 0.0));
/// assert_eq!(ports.len(), 128);
/// // Each port carries 1 mW minus the excess loss.
/// assert!((ports[0].power().as_milliwatts() - 10f64.powf(-0.08)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitterTree {
    outputs: usize,
    excess_loss: Decibel,
}

/// Error returned when constructing a splitter with no outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidSplitterFanout;

impl core::fmt::Display for InvalidSplitterFanout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "splitter tree requires at least one output")
    }
}

impl std::error::Error for InvalidSplitterFanout {}

impl SplitterTree {
    /// Creates a 1→`outputs` tree with total excess loss `excess_loss`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSplitterFanout`] if `outputs == 0`.
    pub fn new(outputs: usize, excess_loss: Decibel) -> Result<Self, InvalidSplitterFanout> {
        if outputs == 0 {
            return Err(InvalidSplitterFanout);
        }
        Ok(Self {
            outputs,
            excess_loss,
        })
    }

    /// Number of output ports.
    #[must_use]
    pub fn outputs(self) -> usize {
        self.outputs
    }

    /// Number of binary stages (`⌈log₂ N⌉`).
    #[must_use]
    pub fn stages(self) -> u32 {
        usize::BITS - self.outputs.next_power_of_two().leading_zeros() - 1
    }

    /// Total excess loss.
    #[must_use]
    pub fn excess_loss(self) -> Decibel {
        self.excess_loss
    }

    /// The intrinsic splitting "loss" in dB (`10·log₁₀ N` per port), which is
    /// not dissipation but fan-out; exposed for loss-budget bookkeeping.
    #[must_use]
    pub fn fanout_loss(self) -> Decibel {
        Decibel::new(10.0 * (self.outputs as f64).log10())
    }

    /// Splits the input field across all ports.
    ///
    /// Each port receives field `E·√(10^(-excess/10)) / √N` at the input
    /// phase.
    #[must_use]
    pub fn split(self, input: Field) -> Vec<Field> {
        let per_port = input
            .attenuate(self.excess_loss.attenuation_field())
            .attenuate(1.0 / (self.outputs as f64).sqrt());
        vec![per_port; self.outputs]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_units::Power;

    #[test]
    fn lossless_split_conserves_power() {
        let tree = SplitterTree::new(16, Decibel::ZERO).unwrap();
        let ports = tree.split(Field::from_power(Power::from_milliwatts(1.0), 0.0));
        let total: f64 = ports.iter().map(|p| p.power().as_watts()).sum();
        assert!((total - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn stage_count() {
        assert_eq!(SplitterTree::new(1, Decibel::ZERO).unwrap().stages(), 0);
        assert_eq!(SplitterTree::new(2, Decibel::ZERO).unwrap().stages(), 1);
        assert_eq!(SplitterTree::new(128, Decibel::ZERO).unwrap().stages(), 7);
        assert_eq!(SplitterTree::new(100, Decibel::ZERO).unwrap().stages(), 7);
    }

    #[test]
    fn fanout_loss_db() {
        let tree = SplitterTree::new(100, Decibel::ZERO).unwrap();
        assert!((tree.fanout_loss().value() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn excess_loss_reduces_total() {
        let tree = SplitterTree::new(4, Decibel::new(0.8)).unwrap();
        let ports = tree.split(Field::from_amplitude(1.0));
        let total: f64 = ports.iter().map(|p| p.power().as_watts()).sum();
        assert!((total - 10f64.powf(-0.08)).abs() < 1e-9);
    }

    #[test]
    fn zero_fanout_rejected() {
        assert!(SplitterTree::new(0, Decibel::ZERO).is_err());
    }

    #[test]
    fn phase_preserved() {
        let tree = SplitterTree::new(8, Decibel::new(0.8)).unwrap();
        let ports = tree.split(Field::from_power(Power::from_milliwatts(1.0), 0.7));
        for p in ports {
            assert!((p.phase() - 0.7).abs() < 1e-12);
        }
    }
}
