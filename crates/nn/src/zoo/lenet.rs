//! LeNet-5 — the small functional-test workload.

use crate::layer::{Conv2d, Dense, Layer, Pool, PoolKind};
use crate::shape::TensorShape;
use crate::Network;

/// LeNet-5 on 28×28×1 (MNIST-style) inputs.
///
/// Small enough to run end-to-end through the field-level photonic
/// simulation in tests and examples.
///
/// # Examples
///
/// ```
/// let net = oxbar_nn::zoo::lenet5();
/// assert_eq!(net.output_shape().elements(), 10);
/// ```
#[must_use]
pub fn lenet5() -> Network {
    let mut net = Network::new("lenet5", TensorShape::new(28, 28, 1));

    let conv1 = Conv2d::new("conv1", TensorShape::new(28, 28, 1), 5, 5, 6, 1, 2);
    let mut shape = conv1.output_shape();
    net.push(Layer::Conv2d(conv1));
    let pool1 = Pool::new("pool1", shape, PoolKind::Average, 2, 2, 0);
    shape = pool1.output_shape();
    net.push(Layer::Pool(pool1));

    let conv2 = Conv2d::new("conv2", shape, 5, 5, 16, 1, 0);
    shape = conv2.output_shape();
    net.push(Layer::Conv2d(conv2));
    let pool2 = Pool::new("pool2", shape, PoolKind::Average, 2, 2, 0);
    shape = pool2.output_shape();
    net.push(Layer::Pool(pool2));

    net.push(Layer::Dense(Dense::new("fc1", shape.elements(), 120)));
    net.push(Layer::Dense(Dense::new("fc2", 120, 84)));
    net.push(Layer::Dense(Dense::new("fc3", 84, 10)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_shapes() {
        let net = lenet5();
        assert_eq!(net.audit_shapes(), None);
        let fc1 = net.conv_like_layers().find(|c| c.name == "fc1").unwrap();
        assert_eq!(fc1.filter_rows(), 5 * 5 * 16);
    }

    #[test]
    fn lenet_is_small() {
        let net = lenet5();
        assert!(net.total_params() < 100_000);
        assert!(net.total_macs() < 2_000_000);
    }
}
