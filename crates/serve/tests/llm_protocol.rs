//! Wire-protocol behavior of autoregressive generation: per-token
//! completion streaming on one tag, Goodbye draining an in-flight
//! sequence before `Bye`, and malformed `Generate` requests answered
//! with structured errors that never kill the connection.

use oxbar_nn::synthetic;
use oxbar_serve::protocol::{Client, ClientFrame, ErrorCode, ServerFrame};
use oxbar_serve::{catalog, ServeConfig, ServeEngine, Server, ServerConfig};
use oxbar_sim::SimConfig;
use std::net::TcpStream;
use std::time::Duration;

fn engine() -> ServeEngine {
    let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64).with_threads(1)));
    engine.admit(catalog::lenet5_model()).expect("lenet admits");
    engine.admit(catalog::llm_tiny()).expect("llm_tiny admits");
    engine
}

fn connect(server: &Server) -> Client<TcpStream> {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    Client::connect(stream).expect("handshake")
}

/// The in-process token stream the wire must reproduce.
fn oracle_tokens(prompt: u32, steps: usize) -> Vec<u32> {
    let mut engine = engine();
    let llm = oxbar_serve::ModelId(1);
    let seq = engine
        .begin_sequence(llm, prompt, steps, 0, 1)
        .expect("sequence");
    engine.drain();
    engine.sequence_tokens(seq).to_vec()
}

#[test]
fn generate_streams_tokens_in_order_on_one_tag() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server starts");
    let mut client = connect(&server);
    assert_eq!(client.models().len(), 2);
    let llm = client.models()[1].model;
    let lenet = client.models()[0].model;

    // A pipelined Infer on another tag, interleaved with the sequence,
    // exercises the client-side buffering: sequence frames must come
    // back in step order regardless of what else shares the wire.
    let shape = oxbar_nn::TensorShape::new(
        client.models()[0].input_h,
        client.models()[0].input_w,
        client.models()[0].input_c,
    );
    let input = synthetic::activations(shape, 6, 9);
    client
        .send(&ClientFrame::Infer {
            tag: 99,
            model: lenet,
            arrival: 0,
            deadline: None,
            input,
        })
        .expect("send infer");
    client
        .send(&ClientFrame::Generate {
            tag: 7,
            model: llm,
            prompt: 5,
            steps: 6,
            arrival: 0,
            interval: 1,
        })
        .expect("send generate");

    let frames = client.wait_sequence(7).expect("sequence stream");
    assert_eq!(frames.len(), 6, "one frame per decode step");
    let want = oracle_tokens(5, 6);
    for (i, frame) in frames.iter().enumerate() {
        let ServerFrame::Completion {
            tag,
            output,
            sequence: Some(token),
            ..
        } = frame
        else {
            panic!("expected a token completion, got {frame:?}");
        };
        assert_eq!(*tag, 7, "every step answers the Generate tag");
        assert_eq!(token.step as usize, i, "steps stream in order");
        assert_eq!(token.token, u64::from(want[i]), "wire == in-process");
        assert_eq!(token.done, i == 5, "done marks exactly the last step");
        assert_eq!(output.data().len(), 32, "logits: one lane per vocab entry");
    }

    // The interleaved Infer still answers its own tag.
    match client.wait_completion(99).expect("infer completes") {
        ServerFrame::Completion { tag, sequence, .. } => {
            assert_eq!(tag, 99);
            assert!(sequence.is_none(), "plain inference carries no token");
        }
        other => panic!("expected completion, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn goodbye_mid_sequence_drains_every_token_before_bye() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server starts");
    let mut client = connect(&server);
    let llm = client.models()[1].model;
    client
        .send(&ClientFrame::Generate {
            tag: 3,
            model: llm,
            prompt: 11,
            steps: 5,
            arrival: 0,
            interval: 1,
        })
        .expect("send generate");
    // Goodbye races the sequence: the session must hold the Bye until
    // every in-flight token has been delivered.
    client.send(&ClientFrame::Goodbye).expect("send goodbye");

    let mut steps = Vec::new();
    loop {
        match client.recv().expect("frame before close") {
            ServerFrame::Completion {
                tag,
                sequence: Some(token),
                ..
            } => {
                assert_eq!(tag, 3);
                steps.push((token.step, token.token, token.done));
            }
            ServerFrame::Bye => break,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(steps.len(), 5, "all five tokens arrive before Bye");
    let want = oracle_tokens(11, 5);
    for (i, (step, token, done)) in steps.iter().enumerate() {
        assert_eq!(*step as usize, i);
        assert_eq!(*token, u64::from(want[i]));
        assert_eq!(*done, i == 4);
    }
    server.shutdown();
}

#[test]
fn malformed_generate_is_refused_without_killing_the_session() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server starts");
    let mut client = connect(&server);
    let llm = client.models()[1].model;
    let lenet = client.models()[0].model;

    let refusals = [
        // Unadmitted model id.
        (
            ClientFrame::Generate {
                tag: 1,
                model: 42,
                prompt: 0,
                steps: 4,
                arrival: 0,
                interval: 1,
            },
            ErrorCode::UnknownModel,
        ),
        // A CNN is not a language model.
        (
            ClientFrame::Generate {
                tag: 2,
                model: lenet,
                prompt: 0,
                steps: 4,
                arrival: 0,
                interval: 1,
            },
            ErrorCode::Unsupported,
        ),
        // Prompt outside the 32-token vocabulary.
        (
            ClientFrame::Generate {
                tag: 3,
                model: llm,
                prompt: 700,
                steps: 4,
                arrival: 0,
                interval: 1,
            },
            ErrorCode::BadInput,
        ),
        // Zero steps.
        (
            ClientFrame::Generate {
                tag: 4,
                model: llm,
                prompt: 0,
                steps: 0,
                arrival: 0,
                interval: 1,
            },
            ErrorCode::BadInput,
        ),
    ];
    for (frame, want) in refusals {
        let tag = match frame {
            ClientFrame::Generate { tag, .. } => tag,
            _ => unreachable!(),
        };
        client.send(&frame).expect("send");
        match client.wait_completion(tag).expect("structured refusal") {
            ServerFrame::Error { tag: t, code, .. } => {
                assert_eq!(t, Some(tag));
                assert_eq!(code, want);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    // The session survived every refusal: a valid sequence still runs.
    client
        .send(&ClientFrame::Generate {
            tag: 50,
            model: llm,
            prompt: 1,
            steps: 3,
            arrival: 0,
            interval: 1,
        })
        .expect("send");
    let frames = client.wait_sequence(50).expect("sequence stream");
    assert_eq!(frames.len(), 3);
    assert!(matches!(
        frames.last(),
        Some(ServerFrame::Completion {
            sequence: Some(token),
            ..
        }) if token.done
    ));
    server.shutdown();
}
