//! Property-based tests for the memory models.

use crate::dram::{DramKind, DramModel};
use crate::sram::{SramBlock, SramKind};
use crate::system::{MemorySystem, SramSizing};
use crate::traffic::TrafficStats;
use oxbar_units::DataVolume;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sram_energy_linear_in_traffic(reads in 0.0..1e12f64, writes in 0.0..1e12f64) {
        let mut sram = SramBlock::new(SramKind::Input, DataVolume::from_megabytes(1.0));
        sram.record_read(DataVolume::from_bits(reads));
        sram.record_write(DataVolume::from_bits(writes));
        let expected = (reads + writes) * 50e-15;
        prop_assert!((sram.energy().as_joules() - expected).abs() < expected.max(1.0) * 1e-12);
    }

    #[test]
    fn sram_area_linear_in_capacity(mb in 0.01..128.0f64) {
        let sram = SramBlock::new(SramKind::Input, DataVolume::from_megabytes(mb));
        let expected = mb * 8.0 * 0.45; // MB → Mbit × 0.45 mm²
        prop_assert!((sram.area().as_square_millimeters() - expected).abs() < 1e-9);
    }

    #[test]
    fn dram_energy_ratio_fixed(bits in 1.0..1e12f64) {
        let mut hbm = DramModel::new(DramKind::Hbm);
        let mut pcie = DramModel::new(DramKind::PcieAttached);
        hbm.record_read(DataVolume::from_bits(bits));
        pcie.record_read(DataVolume::from_bits(bits));
        let ratio = pcie.energy().as_joules() / hbm.energy().as_joules();
        prop_assert!((ratio - 15.0 / 3.9).abs() < 1e-9);
    }

    #[test]
    fn traffic_accumulate_commutes(
        a in 0.0..1e9f64, b in 0.0..1e9f64, c in 0.0..1e9f64,
    ) {
        let x = TrafficStats { dram_reads: a, input_sram_reads: b, ..TrafficStats::default() };
        let y = TrafficStats { dram_reads: c, output_sram_writes: a, ..TrafficStats::default() };
        let mut xy = x;
        xy.accumulate(&y);
        let mut yx = y;
        yx.accumulate(&x);
        prop_assert_eq!(xy, yx);
    }

    #[test]
    fn traffic_scaling_inverse(batch in 1usize..512) {
        let stats = TrafficStats {
            dram_reads: 1e9,
            accumulator_sram_writes: 2e9,
            ..TrafficStats::default()
        };
        let per_inf = stats.scaled(1.0 / batch as f64);
        let back = per_inf.scaled(batch as f64);
        prop_assert!((back.dram_reads - stats.dram_reads).abs() < 1.0);
        prop_assert!((back.accumulator_sram_writes - stats.accumulator_sram_writes).abs() < 1.0);
    }

    #[test]
    fn memory_system_energy_equals_parts(
        dram in 0.0..1e10f64, sram in 0.0..1e10f64,
    ) {
        let mut mem = MemorySystem::paper_default();
        mem.apply_traffic(&TrafficStats {
            dram_reads: dram,
            input_sram_reads: sram,
            ..TrafficStats::default()
        });
        let total = mem.total_energy().as_joules();
        let parts = mem.dram.energy().as_joules() + mem.total_sram_energy().as_joules();
        prop_assert!((total - parts).abs() < total.max(1e-18) * 1e-12);
    }

    #[test]
    fn sizing_total_is_sum(input_mb in 0.1..64.0f64) {
        let sizing = SramSizing::paper_default()
            .with_input(DataVolume::from_megabytes(input_mb));
        let expected = input_mb + 0.75 * 3.0;
        prop_assert!((sizing.total().as_megabytes() - expected).abs() < 1e-9);
    }
}
