//! Thermo-optic phase shifter used for per-cell phase trimming.

use crate::{Field, FieldOp};
use oxbar_units::Power;
use serde::{Deserialize, Serialize};

/// A small thermal phase shifter.
///
/// The paper places one in each unit cell across the column waveguides to
/// trim phase errors from process variation (§III.A.2). Power scales
/// linearly with the applied phase up to π, at `power_per_pi` per π radians
/// (thermo-optic heaters are unidirectional, so a −φ shift costs the same as
/// `2π−φ` in the worst case; we charge the magnitude, the common
/// steady-state assumption).
///
/// # Examples
///
/// ```
/// use oxbar_photonics::phase_shifter::ThermalPhaseShifter;
/// use oxbar_units::Power;
///
/// let ps = ThermalPhaseShifter::new(0.1, Power::from_milliwatts(0.72));
/// assert!((ps.heater_power().as_microwatts() - 22.9183).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalPhaseShifter {
    phase_rad: f64,
    power_per_pi: Power,
}

impl ThermalPhaseShifter {
    /// Creates a shifter applying `phase_rad` radians with the given heater
    /// power per π.
    #[must_use]
    pub fn new(phase_rad: f64, power_per_pi: Power) -> Self {
        Self {
            phase_rad,
            power_per_pi,
        }
    }

    /// An inactive (0 rad) shifter.
    #[must_use]
    pub fn idle(power_per_pi: Power) -> Self {
        Self::new(0.0, power_per_pi)
    }

    /// The applied phase in radians.
    #[must_use]
    pub fn phase_rad(self) -> f64 {
        self.phase_rad
    }

    /// Sets the applied phase (trim update).
    pub fn set_phase(&mut self, phase_rad: f64) {
        self.phase_rad = phase_rad;
    }

    /// Heater power currently dissipated.
    #[must_use]
    pub fn heater_power(self) -> Power {
        self.power_per_pi * (self.phase_rad.abs() / core::f64::consts::PI)
    }
}

impl FieldOp for ThermalPhaseShifter {
    fn apply(&self, input: Field) -> Field {
        input.shift_phase(self.phase_rad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_phase_without_loss() {
        let ps = ThermalPhaseShifter::new(0.5, Power::from_milliwatts(1.0));
        let out = ps.apply(Field::from_amplitude(1.0));
        assert!((out.phase() - 0.5).abs() < 1e-12);
        assert!((out.power().as_watts() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn idle_power_is_zero() {
        let ps = ThermalPhaseShifter::idle(Power::from_milliwatts(1.0));
        assert_eq!(ps.heater_power(), Power::ZERO);
    }

    #[test]
    fn pi_shift_costs_full_power() {
        let ps = ThermalPhaseShifter::new(core::f64::consts::PI, Power::from_milliwatts(0.72));
        assert!((ps.heater_power().as_milliwatts() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn negative_phase_costs_magnitude() {
        let ps =
            ThermalPhaseShifter::new(-core::f64::consts::FRAC_PI_2, Power::from_milliwatts(1.0));
        assert!((ps.heater_power().as_milliwatts() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_phase_updates() {
        let mut ps = ThermalPhaseShifter::idle(Power::from_milliwatts(1.0));
        ps.set_phase(1.0);
        assert_eq!(ps.phase_rad(), 1.0);
    }
}
