//! Chip snapshots reconstruct programmed tile state bit-exactly.
//!
//! A PCM chip's programmed state is non-volatile, so a serialized
//! snapshot of `{codes, per-tile seeds, config}` must rebuild an
//! executor whose forward passes are byte-identical to the source —
//! including every stochastic stream (programming variation, drift,
//! per-channel phase errors). This is the invariant that makes
//! snapshot-based model migration between serving chips sound.

use oxbar_nn::synthetic;
use oxbar_nn::zoo::lenet5;
use oxbar_sim::{ChipSnapshot, DeviceExecutor, SimConfig};

#[test]
fn snapshot_restore_forward_is_bit_exact_under_noise() {
    let net = lenet5();
    let input = synthetic::activations(net.input(), 6, 11);
    let filters = synthetic::filter_banks(&net, 6, 12);
    let config = SimConfig::noisy(128, 128).with_seed(909).with_threads(1);
    let exec = DeviceExecutor::new(config);
    let original = exec.forward(&net, &input, &filters).unwrap();

    // Serialize through the workspace serde shim and back: the snapshot
    // survives the wire format it would migrate over.
    let snap = exec.snapshot();
    assert!(!snap.tiles.is_empty(), "forward populates the cache");
    let json = serde_json::to_string(&snap).unwrap();
    let decoded: ChipSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(decoded, snap, "snapshot round-trips the serde shim");

    let restored = DeviceExecutor::restore(&decoded);
    let replay = restored.forward(&net, &input, &filters).unwrap();
    assert_eq!(replay, original, "restored chip must replay bit-exactly");

    // The restored cache holds exactly the snapshotted state: same
    // occupancy, same counters, and every replay execution was a hit.
    let before = exec.cache_stats();
    let after = restored.cache_stats();
    assert_eq!((after.entries, after.cells), (before.entries, before.cells));
    assert_eq!(snap.cells(), after.cells, "snapshot accounts its own cells");
    assert_eq!(
        after.misses, before.misses,
        "restore compiles are not misses"
    );
    assert_eq!(
        after.hits,
        before.hits + before.misses,
        "every restored tile serves the replay from the cache"
    );
}

#[test]
fn snapshot_of_cold_executor_restores_empty() {
    let config = SimConfig::noisy(64, 64).with_seed(3).with_threads(1);
    let exec = DeviceExecutor::new(config).with_cache_budget(0);
    let snap = exec.snapshot();
    assert!(snap.tiles.is_empty());
    assert_eq!(snap.cells(), 0);
    let restored = DeviceExecutor::restore(&snap);
    assert_eq!(restored.cache_stats().entries, 0);
    assert_eq!(restored.cache_stats().budget, 0);
}
