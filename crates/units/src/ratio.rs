//! Dimensionless ratios (efficiency, utilization) with validation.

use serde::{Deserialize, Serialize};

/// A dimensionless ratio, typically in `[0, 1]` (efficiencies, utilizations).
///
/// Unlike a bare `f64`, constructing a [`Ratio`] through
/// [`Ratio::from_fraction`] validates the range, catching mistakes such as
/// passing a percentage where a fraction is expected.
///
/// # Examples
///
/// ```
/// use oxbar_units::Ratio;
///
/// let wall_plug = Ratio::from_percent(15.0); // the paper's laser efficiency
/// assert!((wall_plug.as_fraction() - 0.15).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ratio(f64);

impl Ratio {
    /// Zero.
    pub const ZERO: Self = Self(0.0);
    /// One (100%).
    pub const ONE: Self = Self(1.0);

    /// Creates a ratio from a fraction in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn from_fraction(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1], got {fraction}"
        );
        Self(fraction)
    }

    /// Creates a ratio from a percentage in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is outside `[0, 100]`.
    #[must_use]
    pub fn from_percent(percent: f64) -> Self {
        Self::from_fraction(percent / 100.0)
    }

    /// Returns the ratio as a fraction.
    #[must_use]
    pub const fn as_fraction(self) -> f64 {
        self.0
    }

    /// Returns the ratio as a percentage.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The complementary ratio `1 - self`.
    #[must_use]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }
}

impl core::ops::Mul for Ratio {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self(self.0 * rhs.0)
    }
}

impl core::ops::Mul<f64> for Ratio {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl core::fmt::Display for Ratio {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2}%", self.as_percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_round_trip() {
        let r = Ratio::from_percent(15.0);
        assert!((r.as_percent() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn complement() {
        assert!((Ratio::from_fraction(0.25).complement().as_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ratio_product() {
        let r = Ratio::from_fraction(0.5) * Ratio::from_fraction(0.5);
        assert!((r.as_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn out_of_range_panics() {
        let _ = Ratio::from_fraction(1.5);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::from_fraction(0.5).to_string(), "50.00%");
    }
}
