//! Fig. 7 — SRAM size, batch size, and the dual-core scheme.
//!
//! * **7a**: chip power and DRAM share vs batch size at fixed SRAM;
//! * **7b**: IPS/W vs input SRAM size for several batch sizes;
//! * **7c**: IPS vs batch size for single- vs dual-core.

use crate::{fmt, write_csv};
use oxbar_core::config::CoreCount;
use oxbar_core::perf::PerfModel;
use oxbar_core::power::PowerModel;
use oxbar_core::{Chip, ChipConfig};
use oxbar_nn::zoo::resnet50_v1_5;
use oxbar_nn::Network;
use oxbar_units::DataVolume;

/// Batch axis shared by 7a and 7c.
pub const BATCHES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];
/// Input-SRAM axis for 7b (MB).
pub const SRAM_MB: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 26.3, 40.0, 64.0];
/// Batch series for 7b.
pub const SRAM_BATCHES: [usize; 4] = [8, 16, 32, 64];

/// One row of the 7a series.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PowerVsBatch {
    /// Batch size.
    pub batch: usize,
    /// Total chip power (W).
    pub power_w: f64,
    /// DRAM component (W).
    pub dram_w: f64,
    /// IPS/W at this point.
    pub ips_per_watt: f64,
}

/// Generates the 7a series.
#[must_use]
pub fn generate_7a(net: &Network) -> Vec<PowerVsBatch> {
    BATCHES
        .iter()
        .map(|&batch| {
            let cfg = ChipConfig::paper_optimal().with_batch(batch);
            let perf = PerfModel::new(cfg.clone()).evaluate(net);
            let model = PowerModel::new(cfg);
            let energy = model.evaluate(&perf);
            let power = model.average_power(&perf).as_watts();
            PowerVsBatch {
                batch,
                power_w: power,
                dram_w: energy.dram.as_joules() / perf.batch_time.as_seconds(),
                ips_per_watt: perf.ips / power,
            }
        })
        .collect()
}

/// Prints the 7a series.
pub fn render_7a(series: &[PowerVsBatch]) {
    println!("# Fig. 7a — chip power and DRAM energy vs batch size");
    println!("(input SRAM fixed at 26.3 MB; DRAM rises steeply once the batch");
    println!(" working set exceeds the input SRAM, between batch 32 and 64)");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "batch", "power[W]", "dram[W]", "IPS/W"
    );
    for p in series {
        println!(
            "{:>6} {:>10.2} {:>10.2} {:>10.0}",
            p.batch, p.power_w, p.dram_w, p.ips_per_watt
        );
    }
}

/// Generates 7a and writes `results/fig7a_power_vs_batch.csv`.
pub fn run_7a() -> Vec<PowerVsBatch> {
    let series = generate_7a(&resnet50_v1_5());
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                p.batch.to_string(),
                fmt(p.power_w, 3),
                fmt(p.dram_w, 3),
                fmt(p.ips_per_watt, 1),
            ]
        })
        .collect();
    write_csv(
        "fig7a_power_vs_batch",
        &["batch", "power_w", "dram_w", "ips_per_watt"],
        &rows,
    );
    series
}

/// One row of the 7b grid.
#[derive(Debug, Clone, serde::Serialize)]
pub struct IpswVsSram {
    /// Input SRAM (MB).
    pub input_sram_mb: f64,
    /// Batch size.
    pub batch: usize,
    /// IPS/W.
    pub ips_per_watt: f64,
}

/// Generates the 7b grid.
#[must_use]
pub fn generate_7b(net: &Network) -> Vec<IpswVsSram> {
    let mut out = Vec::new();
    for &batch in &SRAM_BATCHES {
        for &mb in &SRAM_MB {
            let cfg = ChipConfig::paper_optimal()
                .with_batch(batch)
                .with_input_sram(DataVolume::from_megabytes(mb));
            let report = Chip::new(cfg).evaluate(net);
            out.push(IpswVsSram {
                input_sram_mb: mb,
                batch,
                ips_per_watt: report.ips_per_watt,
            });
        }
    }
    out
}

/// Prints the 7b grid.
pub fn render_7b(grid: &[IpswVsSram]) {
    println!("# Fig. 7b — IPS/W vs input SRAM size, per batch size");
    println!("(each batch has a critical SRAM size; more SRAM does not help)");
    print!("{:>10}", "sram[MB]");
    for b in SRAM_BATCHES {
        print!(" {:>10}", format!("batch {b}"));
    }
    println!();
    for &mb in &SRAM_MB {
        print!("{mb:>10.1}");
        for &b in &SRAM_BATCHES {
            let p = grid
                .iter()
                .find(|p| p.batch == b && (p.input_sram_mb - mb).abs() < 1e-9)
                .unwrap();
            print!(" {:>10.0}", p.ips_per_watt);
        }
        println!();
    }
}

/// Generates 7b and writes `results/fig7b_ipsw_vs_sram.csv`.
pub fn run_7b() -> Vec<IpswVsSram> {
    let grid = generate_7b(&resnet50_v1_5());
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|p| {
            vec![
                fmt(p.input_sram_mb, 1),
                p.batch.to_string(),
                fmt(p.ips_per_watt, 1),
            ]
        })
        .collect();
    write_csv(
        "fig7b_ipsw_vs_sram",
        &["input_sram_mb", "batch", "ips_per_watt"],
        &rows,
    );
    grid
}

/// One row of the 7c series.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DualCoreIps {
    /// Batch size.
    pub batch: usize,
    /// Single-core IPS.
    pub single_ips: f64,
    /// Dual-core IPS.
    pub dual_ips: f64,
}

/// Generates the 7c series.
#[must_use]
pub fn generate_7c(net: &Network) -> Vec<DualCoreIps> {
    BATCHES
        .iter()
        .map(|&batch| {
            let ips = |cores| {
                let cfg = ChipConfig::paper_optimal()
                    .with_batch(batch)
                    .with_cores(cores);
                PerfModel::new(cfg).evaluate(net).ips
            };
            DualCoreIps {
                batch,
                single_ips: ips(CoreCount::Single),
                dual_ips: ips(CoreCount::Dual),
            }
        })
        .collect()
}

/// Prints the 7c series.
pub fn render_7c(series: &[DualCoreIps]) {
    println!("# Fig. 7c — IPS vs batch size, single vs dual core");
    println!("(dual core hides PCM programming; the gain is largest at small batch)");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "batch", "single[IPS]", "dual[IPS]", "gain"
    );
    for p in series {
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>7.2}x",
            p.batch,
            p.single_ips,
            p.dual_ips,
            p.dual_ips / p.single_ips
        );
    }
}

/// Generates 7c and writes `results/fig7c_dual_core.csv`.
pub fn run_7c() -> Vec<DualCoreIps> {
    let series = generate_7c(&resnet50_v1_5());
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                p.batch.to_string(),
                fmt(p.single_ips, 1),
                fmt(p.dual_ips, 1),
                fmt(p.dual_ips / p.single_ips, 3),
            ]
        })
        .collect();
    write_csv(
        "fig7c_dual_core",
        &["batch", "single_ips", "dual_ips", "gain"],
        &rows,
    );
    series
}
