//! Coherent crosstalk analysis for the crossbar's MMI crossings.
//!
//! Each crossing leaks a small fraction of the through light into the
//! crossed waveguide. In an N×M array, a column output accumulates leakage
//! from every row waveguide it crosses; because the leaked fields share
//! the signal's wavelength, the worst case adds in *amplitude*, making
//! crosstalk — not loss — the precision ceiling for very large arrays.

use crate::crossing::MmiCrossing;
use serde::{Deserialize, Serialize};

/// Crosstalk budget of an N×M array.
///
/// # Examples
///
/// ```
/// use oxbar_photonics::crosstalk::CrosstalkBudget;
/// use oxbar_photonics::crossing::MmiCrossing;
///
/// let budget = CrosstalkBudget::analyze(128, 128, MmiCrossing::default());
/// // At the reference −40 dB crossings, crosstalk (not loss) limits
/// // precision well below INT6 — see `effective_bits_rms`.
/// assert!(budget.effective_bits_rms() < 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrosstalkBudget {
    rows: usize,
    cols: usize,
    crosstalk_ratio: f64,
    aggressors_per_column: usize,
}

impl CrosstalkBudget {
    /// Analyzes the array geometry with the given crossing device.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn analyze(rows: usize, cols: usize, crossing: MmiCrossing) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self {
            rows,
            cols,
            crosstalk_ratio: crossing.crosstalk_ratio(),
            // A column waveguide crosses every row waveguide once.
            aggressors_per_column: rows,
        }
    }

    /// Per-crossing power leakage ratio.
    #[must_use]
    pub fn crosstalk_ratio(&self) -> f64 {
        self.crosstalk_ratio
    }

    /// Worst-case crosstalk-to-signal *field* ratio at a column output.
    ///
    /// Signal: the coherent full-scale column sum (amplitude ∝ √N · cell).
    /// Aggressors: N leaked fields, worst case all in phase (amplitude
    /// ∝ N·√x · cell, with `x` the per-crossing power leak of the much
    /// stronger row-bus light, which carries ~√M the cell amplitude).
    #[must_use]
    pub fn worst_case_field_ratio(&self) -> f64 {
        let n = self.aggressors_per_column as f64;
        let bus_over_cell = (self.cols as f64).sqrt();
        (n * self.crosstalk_ratio.sqrt() * bus_over_cell) / n.sqrt()
    }

    /// RMS crosstalk-to-signal field ratio with random aggressor phases
    /// (incoherent accumulation — the typical case).
    #[must_use]
    pub fn rms_field_ratio(&self) -> f64 {
        let n = self.aggressors_per_column as f64;
        let bus_over_cell = (self.cols as f64).sqrt();
        (n.sqrt() * self.crosstalk_ratio.sqrt() * bus_over_cell) / n.sqrt()
    }

    /// Effective bits under worst-case (coherent) crosstalk:
    /// `log2(signal/crosstalk)` in the field domain.
    #[must_use]
    pub fn effective_bits_worst_case(&self) -> f64 {
        (1.0 / self.worst_case_field_ratio()).log2()
    }

    /// Effective bits under RMS (incoherent) crosstalk.
    #[must_use]
    pub fn effective_bits_rms(&self) -> f64 {
        (1.0 / self.rms_field_ratio()).log2()
    }

    /// The largest square array (N = M) still delivering `bits` under
    /// worst-case crosstalk with this crossing device.
    #[must_use]
    pub fn max_square_array_for_bits(crossing: MmiCrossing, bits: f64) -> usize {
        let mut best = 0;
        for exp in 0..16 {
            let size = 1usize << exp;
            let budget = Self::analyze(size, size, crossing);
            if budget.effective_bits_worst_case() >= bits {
                best = size;
            } else {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosstalk_worsens_with_array_size() {
        let x = MmiCrossing::default();
        let small = CrosstalkBudget::analyze(32, 32, x);
        let large = CrosstalkBudget::analyze(512, 512, x);
        assert!(large.worst_case_field_ratio() > small.worst_case_field_ratio());
        assert!(large.effective_bits_worst_case() < small.effective_bits_worst_case());
    }

    #[test]
    fn rms_is_better_than_worst_case() {
        let budget = CrosstalkBudget::analyze(128, 128, MmiCrossing::default());
        assert!(budget.effective_bits_rms() > budget.effective_bits_worst_case());
    }

    #[test]
    fn int6_at_128_columns_needs_sub_minus57db_crossings() {
        // A finding the paper does not surface: with the reference −40 dB
        // crossing crosstalk, a 128-column coherent array reaches only ~3
        // RMS bits (the leaked row-bus light is √M stronger than a cell
        // contribution). INT6 requires ≤ −57 dB crossings.
        let at_40 = CrosstalkBudget::analyze(128, 128, MmiCrossing::default());
        assert!(
            at_40.effective_bits_rms() < 4.0,
            "RMS bits {}",
            at_40.effective_bits_rms()
        );
        let at_58 =
            CrosstalkBudget::analyze(128, 128, MmiCrossing::default().with_crosstalk(-58.0));
        assert!(
            at_58.effective_bits_rms() > 6.0,
            "RMS bits {}",
            at_58.effective_bits_rms()
        );
    }

    #[test]
    fn worse_crossings_shrink_the_max_array() {
        let clean = MmiCrossing::default().with_crosstalk(-50.0);
        let dirty = MmiCrossing::default().with_crosstalk(-30.0);
        let max_clean = CrosstalkBudget::max_square_array_for_bits(clean, 6.0);
        let max_dirty = CrosstalkBudget::max_square_array_for_bits(dirty, 6.0);
        assert!(max_clean > max_dirty);
    }

    #[test]
    fn ratio_math_consistent() {
        let budget = CrosstalkBudget::analyze(64, 64, MmiCrossing::default());
        let worst = budget.worst_case_field_ratio();
        let rms = budget.rms_field_ratio();
        // Worst case is √N above RMS.
        assert!((worst / rms - 8.0).abs() < 1e-9);
    }
}
