//! Named loss budgets for laser sizing.

use oxbar_units::Decibel;
use serde::{Deserialize, Serialize};

/// An itemized optical loss budget.
///
/// Collects named dB contributions (which add linearly) and exposes the
/// total and the linear power transmission. Used to size the laser for a
/// given array geometry.
///
/// # Examples
///
/// ```
/// use oxbar_photonics::loss::LossBudget;
/// use oxbar_units::Decibel;
///
/// let mut budget = LossBudget::new();
/// budget.add("grating coupler", Decibel::new(2.0));
/// budget.add("splitter tree", Decibel::new(0.8));
/// assert!((budget.total().value() - 2.8).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossBudget {
    entries: Vec<(String, Decibel)>,
}

impl LossBudget {
    /// Creates an empty budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named contribution.
    pub fn add(&mut self, name: impl Into<String>, loss: Decibel) {
        self.entries.push((name.into(), loss));
    }

    /// Iterates over `(name, loss)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Decibel)> {
        self.entries.iter().map(|(n, l)| (n.as_str(), *l))
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the budget has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total loss in dB.
    #[must_use]
    pub fn total(&self) -> Decibel {
        self.entries.iter().map(|(_, l)| *l).sum()
    }

    /// Linear power transmission of the whole budget.
    #[must_use]
    pub fn transmission(&self) -> f64 {
        self.total().attenuation_power()
    }
}

/// Geometry/process constants needed to assemble a crossbar loss budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarLossParams {
    /// Grating coupler loss (dB).
    pub grating_db: f64,
    /// Splitter tree excess loss (dB).
    pub splitter_excess_db: f64,
    /// ODAC optical modulation amplitude penalty (dB).
    pub odac_oma_db: f64,
    /// MMI crossing loss per junction (dB).
    pub crossing_db: f64,
    /// Waveguide propagation loss (dB/cm).
    pub waveguide_db_per_cm: f64,
    /// Unit-cell pitch (µm) — sets the physical path length.
    pub cell_pitch_um: f64,
    /// Engineering margin (dB).
    pub margin_db: f64,
}

impl Default for CrossbarLossParams {
    fn default() -> Self {
        Self {
            grating_db: crate::grating::GratingCoupler::DEFAULT_LOSS_DB,
            splitter_excess_db: 0.8,
            odac_oma_db: crate::odac::RingOdac::DEFAULT_OMA_PENALTY_DB,
            crossing_db: crate::crossing::MmiCrossing::DEFAULT_LOSS_DB,
            waveguide_db_per_cm: crate::waveguide::Waveguide::DEFAULT_LOSS_DB_PER_CM,
            cell_pitch_um: 30.0,
            margin_db: 1.0,
        }
    }
}

impl CrossbarLossParams {
    /// Assembles the worst-case path budget through an `n_rows × m_cols`
    /// array (§III of the paper).
    ///
    /// The worst path taps at the far corner: the light crosses `m_cols − 1`
    /// junctions along its row and `n_rows − 1` along its column, and
    /// traverses one full row plus one full column of waveguide.
    #[must_use]
    pub fn worst_path_budget(&self, n_rows: usize, m_cols: usize) -> LossBudget {
        let mut budget = LossBudget::new();
        budget.add("grating coupler", Decibel::new(self.grating_db));
        budget.add(
            "splitter tree excess",
            Decibel::new(self.splitter_excess_db),
        );
        budget.add("ODAC OMA penalty", Decibel::new(self.odac_oma_db));
        let crossings = (m_cols.saturating_sub(1) + n_rows.saturating_sub(1)) as f64;
        budget.add(
            "MMI crossings",
            Decibel::new(self.crossing_db).times(crossings),
        );
        let path_cm = (m_cols + n_rows) as f64 * self.cell_pitch_um * 1e-4;
        budget.add(
            "waveguide propagation",
            Decibel::new(self.waveguide_db_per_cm * path_cm),
        );
        budget.add("margin", Decibel::new(self.margin_db));
        budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_budget_is_lossless() {
        let b = LossBudget::new();
        assert!(b.is_empty());
        assert_eq!(b.total().value(), 0.0);
        assert_eq!(b.transmission(), 1.0);
    }

    #[test]
    fn entries_accumulate() {
        let mut b = LossBudget::new();
        b.add("a", Decibel::new(1.0));
        b.add("b", Decibel::new(2.5));
        assert_eq!(b.len(), 2);
        assert!((b.total().value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn default_128x128_budget_matches_paper_stack() {
        let p = CrossbarLossParams::default();
        let b = p.worst_path_budget(128, 128);
        // 2 + 0.8 + 4 + 0.018·254 + 3·(256·30µm in cm) + 1
        let expected = 2.0 + 0.8 + 4.0 + 0.018 * 254.0 + 3.0 * 256.0 * 30.0e-4 + 1.0;
        assert!((b.total().value() - expected).abs() < 1e-9);
        // Should be a practical budget (≲ 20 dB), unlike the 1.8 dB/junction
        // reading, which would exceed 450 dB.
        assert!(b.total().value() < 20.0);
    }

    #[test]
    fn loss_grows_with_array_size() {
        let p = CrossbarLossParams::default();
        let small = p.worst_path_budget(32, 32).total();
        let large = p.worst_path_budget(256, 256).total();
        assert!(large.value() > small.value());
    }

    #[test]
    fn one_by_one_has_no_crossings() {
        let p = CrossbarLossParams::default();
        let b = p.worst_path_budget(1, 1);
        let crossings = b
            .iter()
            .find(|(n, _)| *n == "MMI crossings")
            .map(|(_, l)| l.value())
            .unwrap();
        assert_eq!(crossings, 0.0);
    }
}
