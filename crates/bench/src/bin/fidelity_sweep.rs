//! Runs the fidelity sweep (effective bits vs variation and phase error).
use oxbar_bench::figures::fidelity;
fn main() {
    fidelity::render(&fidelity::run());
}
