//! Offline stand-in for the `serde_json` crate.
//!
//! Prints and parses JSON over the serde shim's [`Value`] data model.
//! Covers the API surface the `oxbar` workspace uses — [`to_string`],
//! [`to_string_pretty`], and [`from_str`] — with full round-trip fidelity
//! for finite `f64` values (Rust's shortest-round-trip float formatting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (2-space indent).
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for API parity.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a `T` from an already-parsed [`Value`].
///
/// # Errors
///
/// Returns an error on a shape mismatch with `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` on f64 is shortest-round-trip and never scientific,
                // so the output is both valid JSON and lossless.
                out.push_str(&x.to_string());
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(
                out,
                items.iter(),
                indent,
                level,
                ('[', ']'),
                |out, item, lvl| {
                    write_value(out, item, indent, lvl);
                },
            );
        }
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                indent,
                level,
                ('{', '}'),
                |out, (k, v), lvl| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, indent, lvl);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape starting at `at`.
    fn hex_escape(&self, at: usize) -> Result<u32> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".to_string()))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".to_string()))
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape(self.pos + 1)?;
                            self.pos += 4;
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low-surrogate \uXXXX
                                // must follow (RFC 8259 §7).
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(br"\u".as_slice())
                                {
                                    return Err(Error("unpaired surrogate escape".to_string()));
                                }
                                let low = self.hex_escape(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate escape".to_string()));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error("invalid \\u escape".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Float(0.1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Int(-3), Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::Str("x\"\n\\y".to_string())),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // "😀" (escaped surrogate pair) decodes to U+1F600.
        let escaped_pair = "\"\\ud83d\\ude00\"";
        assert_eq!(
            parse(escaped_pair).unwrap(),
            Value::Str("\u{1F600}".to_string())
        );
        let embedded = "\"a\\ud83d\\ude00z\"";
        assert_eq!(
            parse(embedded).unwrap(),
            Value::Str("a\u{1F600}z".to_string())
        );
        // Non-escaped UTF-8 passes through unchanged.
        assert_eq!(
            parse("\"\u{e9}\u{1F600}\"").unwrap(),
            Value::Str("\u{e9}\u{1F600}".to_string())
        );
        assert!(parse(r#""\ud83d""#).is_err()); // unpaired high surrogate
        assert!(parse(r#""\ud83dA""#).is_err()); // bad low surrogate
        assert!(parse(r#""\udc00""#).is_err()); // lone low surrogate
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-15, 123_456_789.123_456_78, -2.5e10] {
            let mut s = String::new();
            write_value(&mut s, &Value::Float(x), None, 0);
            match parse(&s).unwrap() {
                Value::Float(back) => assert_eq!(back, x),
                Value::Int(i) => assert_eq!(i as f64, x),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
