//! Regenerates Fig. 7c (IPS vs batch size, single vs dual core).
fn main() {
    oxbar_bench::figures::fig7::run_7c();
}
