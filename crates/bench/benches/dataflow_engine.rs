//! Criterion benches for the runtime-spec engine and cycle-level replay
//! across the model zoo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oxbar_dataflow::cycle::{CorePolicy, CycleSimulator};
use oxbar_dataflow::DataflowEngine;
use oxbar_nn::zoo;
use std::hint::black_box;

fn bench_analyze_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow/analyze");
    group.sample_size(30);
    for net in zoo::all_networks() {
        let engine = DataflowEngine::paper_default(128, 128, 32);
        group.bench_with_input(
            BenchmarkId::from_parameter(net.name().to_string()),
            &net,
            |b, net| {
                b.iter(|| black_box(engine.analyze(black_box(net))));
            },
        );
    }
    group.finish();
}

fn bench_cycle_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow/cycle_replay");
    group.sample_size(30);
    let spec = DataflowEngine::paper_default(128, 128, 32).analyze(&zoo::resnet50_v1_5());
    for policy in [CorePolicy::SingleCore, CorePolicy::DualCore] {
        let name = match policy {
            CorePolicy::SingleCore => "single_core",
            CorePolicy::DualCore => "dual_core",
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            let sim = CycleSimulator::new(1000);
            b.iter(|| black_box(sim.run(black_box(&spec), p)));
        });
    }
    group.finish();
}

fn bench_array_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow/array_scaling");
    group.sample_size(20);
    let net = zoo::resnet50_v1_5();
    for size in [32usize, 128, 512] {
        let engine = DataflowEngine::paper_default(size, size, 32);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(engine.analyze(black_box(&net))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_analyze_zoo,
    bench_cycle_replay,
    bench_array_scaling
);
criterion_main!(benches);
