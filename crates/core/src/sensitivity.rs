//! Parameter sensitivity analysis: which technology constants actually
//! move the headline metrics.
//!
//! The paper's results rest on a dozen device constants measured in other
//! papers. This module perturbs each one by ±`delta` and reports the
//! elasticity of IPS/W (and power), identifying which assumptions the
//! conclusion is robust against — the tornado chart a reviewer would ask
//! for.

use crate::chip::Chip;
use crate::config::ChipConfig;
use oxbar_nn::Network;
use oxbar_units::{Energy, Power, Ratio, Time};
use serde::{Deserialize, Serialize};

/// Sensitivity of the chip metrics to one parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Parameter name.
    pub parameter: String,
    /// Relative perturbation applied (e.g. 0.2 = ±20%).
    pub delta: f64,
    /// IPS/W at −delta.
    pub ipsw_low: f64,
    /// IPS/W at +delta.
    pub ipsw_high: f64,
    /// Elasticity: d(ln IPS/W) / d(ln param), centred difference.
    pub elasticity: f64,
}

/// The tunable parameters of the sensitivity study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parameter {
    /// MMI crossing loss (dB/junction).
    CrossingLoss,
    /// Waveguide loss (dB/cm).
    WaveguideLoss,
    /// ODAC OMA penalty (dB).
    OmaPenalty,
    /// Laser wall-plug efficiency.
    WallPlugEfficiency,
    /// PCM programming energy per cell.
    PcmProgramEnergy,
    /// PCM programming time (the 1000-cycle bubble).
    PcmProgramTime,
    /// Per-column LO power.
    LoPower,
    /// Thermal trim heater power per π.
    TrimPower,
    /// Photonic unit-cell pitch.
    CellPitch,
}

impl Parameter {
    /// All parameters, in report order.
    #[must_use]
    pub fn all() -> &'static [Parameter] {
        &[
            Parameter::CrossingLoss,
            Parameter::WaveguideLoss,
            Parameter::OmaPenalty,
            Parameter::WallPlugEfficiency,
            Parameter::PcmProgramEnergy,
            Parameter::PcmProgramTime,
            Parameter::LoPower,
            Parameter::TrimPower,
            Parameter::CellPitch,
        ]
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Parameter::CrossingLoss => "MMI crossing loss",
            Parameter::WaveguideLoss => "waveguide loss",
            Parameter::OmaPenalty => "ODAC OMA penalty",
            Parameter::WallPlugEfficiency => "laser wall-plug efficiency",
            Parameter::PcmProgramEnergy => "PCM program energy",
            Parameter::PcmProgramTime => "PCM program time",
            Parameter::LoPower => "LO power per column",
            Parameter::TrimPower => "trim heater power",
            Parameter::CellPitch => "unit-cell pitch",
        }
    }

    /// Returns a configuration with this parameter scaled by `factor`.
    #[must_use]
    pub fn scaled(self, base: &ChipConfig, factor: f64) -> ChipConfig {
        let mut cfg = base.clone();
        match self {
            Parameter::CrossingLoss => cfg.tech.losses.crossing_db *= factor,
            Parameter::WaveguideLoss => cfg.tech.losses.waveguide_db_per_cm *= factor,
            Parameter::OmaPenalty => cfg.tech.losses.odac_oma_db *= factor,
            Parameter::WallPlugEfficiency => {
                let scaled = (cfg.tech.laser_wall_plug.as_fraction() * factor).min(1.0);
                cfg.tech.laser_wall_plug = Ratio::from_fraction(scaled);
            }
            Parameter::PcmProgramEnergy => {
                cfg.tech.pcm_program_energy =
                    Energy::from_joules(cfg.tech.pcm_program_energy.as_joules() * factor);
            }
            Parameter::PcmProgramTime => {
                cfg.tech.pcm_program_time =
                    Time::from_seconds(cfg.tech.pcm_program_time.as_seconds() * factor);
            }
            Parameter::LoPower => {
                cfg.tech.lo_power_per_column =
                    Power::from_watts(cfg.tech.lo_power_per_column.as_watts() * factor);
            }
            Parameter::TrimPower => {
                cfg.tech.trim_power_per_pi =
                    Power::from_watts(cfg.tech.trim_power_per_pi.as_watts() * factor);
            }
            Parameter::CellPitch => {
                cfg.tech.cell_pitch_um *= factor;
                cfg.tech.losses.cell_pitch_um = cfg.tech.cell_pitch_um;
            }
        }
        cfg
    }
}

/// Runs the study: every parameter perturbed by ±`delta` around `base`.
///
/// # Examples
///
/// ```no_run
/// use oxbar_core::sensitivity::analyze;
/// use oxbar_core::ChipConfig;
/// use oxbar_nn::zoo::resnet50_v1_5;
///
/// let table = analyze(&resnet50_v1_5(), &ChipConfig::paper_optimal(), 0.2);
/// for s in &table {
///     println!("{:28} elasticity {:+.3}", s.parameter, s.elasticity);
/// }
/// ```
///
/// # Panics
///
/// Panics if `delta` is not in `(0, 1)`.
#[must_use]
pub fn analyze(network: &Network, base: &ChipConfig, delta: f64) -> Vec<Sensitivity> {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    Parameter::all()
        .iter()
        .map(|&param| {
            let low = Chip::new(param.scaled(base, 1.0 - delta))
                .evaluate(network)
                .ips_per_watt;
            let high = Chip::new(param.scaled(base, 1.0 + delta))
                .evaluate(network)
                .ips_per_watt;
            // Centred log-derivative: Δln(ipsw) / Δln(param).
            let elasticity = (high / low).ln() / ((1.0 + delta) / (1.0 - delta)).ln();
            Sensitivity {
                parameter: param.name().to_string(),
                delta,
                ipsw_low: low,
                ipsw_high: high,
                elasticity,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_nn::zoo::resnet18;

    fn table() -> Vec<Sensitivity> {
        analyze(&resnet18(), &ChipConfig::paper_optimal(), 0.25)
    }

    #[test]
    fn every_parameter_reported_once() {
        let t = table();
        assert_eq!(t.len(), Parameter::all().len());
        let names: std::collections::BTreeSet<_> = t.iter().map(|s| s.parameter.as_str()).collect();
        assert_eq!(names.len(), t.len());
    }

    #[test]
    fn cost_parameters_have_non_positive_elasticity() {
        // More loss / more energy / more trim power can only hurt IPS/W.
        let t = table();
        for s in &t {
            if [
                "MMI crossing loss",
                "waveguide loss",
                "ODAC OMA penalty",
                "PCM program energy",
                "trim heater power",
                "LO power per column",
            ]
            .contains(&s.parameter.as_str())
            {
                assert!(
                    s.elasticity <= 1e-6,
                    "{}: elasticity {}",
                    s.parameter,
                    s.elasticity
                );
            }
        }
    }

    #[test]
    fn wall_plug_efficiency_helps() {
        let t = table();
        let wp = t
            .iter()
            .find(|s| s.parameter == "laser wall-plug efficiency")
            .unwrap();
        assert!(wp.elasticity >= 0.0);
    }

    #[test]
    fn pcm_energy_dominates_pcm_time_at_batch_32() {
        // With batch 32 hiding the bubble, programming *time* barely
        // matters; programming *energy* always does.
        let t = table();
        let energy = t
            .iter()
            .find(|s| s.parameter == "PCM program energy")
            .unwrap();
        let time = t
            .iter()
            .find(|s| s.parameter == "PCM program time")
            .unwrap();
        assert!(energy.elasticity.abs() > time.elasticity.abs());
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn invalid_delta_panics() {
        let _ = analyze(&resnet18(), &ChipConfig::paper_optimal(), 1.5);
    }
}
