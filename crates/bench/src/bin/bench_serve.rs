//! Perf snapshot: batched weight-stationary serving (with the pipelined
//! prewarm scheduler) vs cold per-request execution on the same trace.
//!
//! Writes `BENCH_serve.json` at the workspace root. Pass `--quick` for
//! the CI smoke variant (small trace, same schema).
//!
//! The binary installs a counting global allocator so the snapshot can
//! report the allocation count of a warm serving round (the
//! zero-allocation hot-path claim, measured end to end).

use std::alloc::{GlobalAlloc, Layout, System};

/// System allocator wrapper that reports every allocation to
/// [`oxbar_bench::alloc_counter`].
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        oxbar_bench::alloc_counter::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        oxbar_bench::alloc_counter::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        oxbar_bench::alloc_counter::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn main() {
    oxbar_bench::alloc_counter::activate();
    let quick = std::env::args().any(|a| a == "--quick");
    oxbar_bench::serve::render(&oxbar_bench::serve::run(quick));
}
