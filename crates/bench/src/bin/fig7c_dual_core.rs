//! Regenerates Fig. 7c (IPS vs batch size, single vs dual core).
use oxbar_bench::figures::fig7;
fn main() {
    fig7::render_7c(&fig7::run_7c());
}
