//! ResNet builders (v1.5 bottleneck variant — the paper's benchmark).

use crate::layer::{Activation, Conv2d, Dense, ElementwiseAdd, Layer, Pool, PoolKind};
use crate::shape::TensorShape;
use crate::Network;

/// Appends one bottleneck block (1×1 → 3×3 → 1×1 + skip).
///
/// In the **v1.5** variant the spatial stride sits on the 3×3 convolution
/// (v1 put it on the first 1×1), which is what torchvision and the MLPerf
/// reference implement and what the paper benchmarks.
fn bottleneck(
    net: &mut Network,
    name: &str,
    input: TensorShape,
    mid_c: usize,
    out_c: usize,
    stride: usize,
    project: bool,
) -> TensorShape {
    let a = Conv2d::new(format!("{name}_1x1a"), input, 1, 1, mid_c, 1, 0);
    let a_out = a.output_shape();
    net.push(Layer::Conv2d(a));

    let b = Conv2d::new(format!("{name}_3x3b"), a_out, 3, 3, mid_c, stride, 1);
    let b_out = b.output_shape();
    net.push(Layer::Conv2d(b));

    let c = Conv2d::new(format!("{name}_1x1c"), b_out, 1, 1, out_c, 1, 0)
        .with_activation(Activation::None);
    let c_out = c.output_shape();
    net.push(Layer::Conv2d(c));

    if project {
        net.push(Layer::Conv2d(
            Conv2d::new(format!("{name}_proj"), input, 1, 1, out_c, stride, 0)
                .with_activation(Activation::None),
        ));
    }
    net.push(Layer::Add(ElementwiseAdd {
        name: format!("{name}_add"),
        shape: c_out,
        activation: Activation::Relu,
    }));
    c_out
}

/// Appends one basic block (3×3 → 3×3 + skip) for ResNet-18/34.
fn basic_block(
    net: &mut Network,
    name: &str,
    input: TensorShape,
    out_c: usize,
    stride: usize,
    project: bool,
) -> TensorShape {
    let a = Conv2d::new(format!("{name}_3x3a"), input, 3, 3, out_c, stride, 1);
    let a_out = a.output_shape();
    net.push(Layer::Conv2d(a));

    let b = Conv2d::new(format!("{name}_3x3b"), a_out, 3, 3, out_c, 1, 1)
        .with_activation(Activation::None);
    let b_out = b.output_shape();
    net.push(Layer::Conv2d(b));

    if project {
        net.push(Layer::Conv2d(
            Conv2d::new(format!("{name}_proj"), input, 1, 1, out_c, stride, 0)
                .with_activation(Activation::None),
        ));
    }
    net.push(Layer::Add(ElementwiseAdd {
        name: format!("{name}_add"),
        shape: b_out,
        activation: Activation::Relu,
    }));
    b_out
}

/// The stem shared by all ImageNet ResNets: 7×7/2 conv + 3×3/2 max-pool.
fn stem(net: &mut Network) -> TensorShape {
    let input = TensorShape::new(224, 224, 3);
    let conv1 = Conv2d::new("conv1", input, 7, 7, 64, 2, 3);
    let conv1_out = conv1.output_shape();
    net.push(Layer::Conv2d(conv1));
    let pool = Pool::new("maxpool", conv1_out, PoolKind::Max, 3, 2, 1);
    let pool_out = pool.output_shape();
    net.push(Layer::Pool(pool));
    pool_out
}

/// **ResNet-50 v1.5** at 224×224×3 — the paper's benchmark network
/// (BatchNorm folded; 53 convolutions + 1 FC; ≈25.5 M weights; ≈4.1 GMACs).
///
/// # Examples
///
/// ```
/// let net = oxbar_nn::zoo::resnet50_v1_5();
/// assert_eq!(net.total_params(), 25_503_912);
/// ```
#[must_use]
pub fn resnet50_v1_5() -> Network {
    let mut net = Network::new("resnet50_v1.5", TensorShape::new(224, 224, 3));
    let mut shape = stem(&mut net);

    let stages: [(usize, usize, usize, usize); 4] = [
        // (blocks, mid_c, out_c, first_stride)
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    for (stage_idx, &(blocks, mid_c, out_c, first_stride)) in stages.iter().enumerate() {
        for block in 0..blocks {
            let name = format!("conv{}_{}", stage_idx + 2, block + 1);
            let (stride, project) = if block == 0 {
                (first_stride, true)
            } else {
                (1, false)
            };
            shape = bottleneck(&mut net, &name, shape, mid_c, out_c, stride, project);
        }
    }

    let pool = Pool::new("avgpool", shape, PoolKind::Average, 7, 1, 0);
    net.push(Layer::Pool(pool));
    net.push(Layer::Dense(Dense::new("fc", 2048, 1000)));
    net
}

/// Shared builder for the basic-block ResNets (18/34).
fn basic_resnet(name: &str, blocks_per_stage: [usize; 4]) -> Network {
    let mut net = Network::new(name, TensorShape::new(224, 224, 3));
    let mut shape = stem(&mut net);

    let stages: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 2), (512, 2)];
    for (stage_idx, (&(out_c, first_stride), &blocks)) in
        stages.iter().zip(&blocks_per_stage).enumerate()
    {
        for block in 0..blocks {
            let name = format!("conv{}_{}", stage_idx + 2, block + 1);
            let (stride, project) = if block == 0 && first_stride != 1 {
                (first_stride, true)
            } else {
                (1, false)
            };
            shape = basic_block(&mut net, &name, shape, out_c, stride, project);
        }
    }

    let pool = Pool::new("avgpool", shape, PoolKind::Average, 7, 1, 0);
    net.push(Layer::Pool(pool));
    net.push(Layer::Dense(Dense::new("fc", 512, 1000)));
    net
}

/// ResNet-18 at 224×224×3 (basic blocks; ≈1.8 GMACs).
#[must_use]
pub fn resnet18() -> Network {
    basic_resnet("resnet18", [2, 2, 2, 2])
}

/// ResNet-34 at 224×224×3 (basic blocks; ≈3.7 GMACs).
#[must_use]
pub fn resnet34() -> Network {
    basic_resnet("resnet34", [3, 4, 6, 3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_parameter_count_exact() {
        // Conv weights 23,454,912 + FC 2,048,000 + FC bias 1,000.
        assert_eq!(resnet50_v1_5().total_params(), 25_503_912);
    }

    #[test]
    fn resnet50_layer_census() {
        let net = resnet50_v1_5();
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Conv2d(_)))
            .count();
        assert_eq!(convs, 53);
        assert_eq!(net.conv_like_layers().count(), 54);
    }

    #[test]
    fn resnet50_final_feature_map() {
        let net = resnet50_v1_5();
        // Before avgpool the feature map is 7×7×2048.
        let last_add = net
            .layers()
            .iter()
            .filter_map(|l| match l {
                Layer::Add(a) => Some(a.shape),
                _ => None,
            })
            .next_back()
            .unwrap();
        assert_eq!(last_add, TensorShape::new(7, 7, 2048));
        assert_eq!(net.output_shape(), TensorShape::flat(1000));
    }

    #[test]
    fn resnet50_v1_5_strides_in_3x3() {
        let net = resnet50_v1_5();
        let conv3_1b = net
            .conv_like_layers()
            .find(|c| c.name == "conv3_1_3x3b")
            .unwrap();
        assert_eq!(conv3_1b.stride, 2, "v1.5 puts the stride on the 3x3");
        let conv3_1a = net
            .conv_like_layers()
            .find(|c| c.name == "conv3_1_1x1a")
            .unwrap();
        assert_eq!(conv3_1a.stride, 1);
    }

    #[test]
    fn resnet50_macs_in_band() {
        let gmacs = resnet50_v1_5().total_macs() as f64 / 1e9;
        assert!((4.0..4.2).contains(&gmacs), "got {gmacs}");
    }

    #[test]
    fn resnet50_max_activation_is_stem_output() {
        let net = resnet50_v1_5();
        // 112×112×64 at 6 bits = 4,816,896 bits ≈ 0.6 MB.
        assert_eq!(net.max_activation_bits(6), 112 * 112 * 64 * 6);
    }

    #[test]
    fn resnet18_shapes_and_macs() {
        let net = resnet18();
        assert_eq!(net.audit_shapes(), None);
        let gmacs = net.total_macs() as f64 / 1e9;
        assert!((1.7..1.9).contains(&gmacs), "got {gmacs}");
        let params = net.total_params();
        assert!((11_000_000..12_000_000).contains(&params), "got {params}");
    }
}
