//! Fold tiling: slicing a layer's weight matrix into the per-fold
//! sub-matrices that actually get programmed into the PCM array.
//!
//! [`crate::fold::FoldPlan`] counts folds; this module materializes them.
//! Each [`WeightTile`] is the `rows_used × cols_used` slice of the im2col
//! weight matrix for one `(group, row_fold, col_fold)` triple, in the
//! order the scheduler programs them. The system-level counters and the
//! physical simulation meet here: a tile can be handed to
//! `oxbar_pcm::PcmArray::program` and `oxbar_photonics`' crossbar directly.

use crate::fold::FoldPlan;
use oxbar_nn::Conv2d;
use serde::{Deserialize, Serialize};

/// One fold's weight slice.
///
/// `values[r][c]` is the weight for local array row `r`, local column `c`.
/// Row indices map to positions `row_offset + r` of the flattened filter
/// (within the tile's group); column indices map to output channels
/// `col_offset + c` (pre-expansion: logical outputs, not mapping columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightTile {
    /// Channel group this tile belongs to.
    pub group: usize,
    /// Row-fold index.
    pub row_fold: usize,
    /// Column-fold index.
    pub col_fold: usize,
    /// First flattened-filter row covered.
    pub row_offset: usize,
    /// First output channel (within the group) covered.
    pub col_offset: usize,
    /// The slice, `rows × cols`, ragged edges truncated.
    pub values: Vec<Vec<i8>>,
}

impl WeightTile {
    /// Rows in this tile.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.values.len()
    }

    /// Columns in this tile.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.values.first().map_or(0, Vec::len)
    }
}

/// The geometry of one fold tile — everything a [`WeightTile`] carries
/// except the weight values themselves.
///
/// Serving executors iterate geometries instead of materialized tiles:
/// building a `WeightTile` copies `rows × cols` weights into fresh
/// per-row vectors, which is pure overhead on a warm weight-stationary
/// path where the compiled tile is already cached and only needs
/// validating against the filter bank. Tile column `c` corresponds to the
/// contiguous filter slice
/// `filters[group·out_per_group + col_offset + c][row_offset..row_offset + rows]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGeometry {
    /// Channel group this tile belongs to.
    pub group: usize,
    /// Row-fold index.
    pub row_fold: usize,
    /// Column-fold index.
    pub col_fold: usize,
    /// First flattened-filter row covered.
    pub row_offset: usize,
    /// First output channel (within the group) covered.
    pub col_offset: usize,
    /// Rows in this tile.
    pub rows: usize,
    /// Columns in this tile (logical outputs).
    pub cols: usize,
}

/// The geometry of tile `index` in the fold enumeration of `plan` over
/// `conv` — groups outermost, then row folds, then column folds. Needs no
/// filter bank, so capacity planners (e.g. a serving scheduler
/// budget-checking a prewarm) can size a model's tile set without
/// touching its weights.
///
/// # Panics
///
/// Panics if `index` is at or beyond [`FoldPlan::total_folds`].
#[must_use]
pub fn tile_geometry(conv: &Conv2d, plan: &FoldPlan, index: usize) -> TileGeometry {
    assert!(index < plan.total_folds(), "tile {index} out of range");
    let per_group = plan.row_folds * plan.col_folds;
    let group = index / per_group;
    let within = index % per_group;
    let row_fold = within / plan.col_folds;
    let col_fold = within % plan.col_folds;

    let filter_rows = conv.filter_rows();
    let out_per_group = conv.out_c_per_group();
    let row_offset = row_fold * plan.array_rows;
    let rows = (filter_rows - row_offset).min(plan.array_rows);
    // Column tiling happens on logical outputs; the mapping expansion
    // (cols_per_output) divides the physical columns available.
    let logical_per_fold = plan.array_cols / plan.cols_per_output;
    let col_offset = col_fold * logical_per_fold;
    let cols = (out_per_group - col_offset).min(logical_per_fold.max(1));
    TileGeometry {
        group,
        row_fold,
        col_fold,
        row_offset,
        col_offset,
        rows,
        cols,
    }
}

/// Iterator over the fold tiles of one conv layer's filter bank.
///
/// Tiles stream in programming order: groups outermost, then row folds,
/// then column folds — matching the fold enumeration the analytic engine
/// counts.
///
/// # Examples
///
/// ```
/// use oxbar_dataflow::tiles::WeightTiles;
/// use oxbar_dataflow::FoldPlan;
/// use oxbar_nn::{Conv2d, TensorShape};
/// use oxbar_nn::synthetic;
///
/// let conv = Conv2d::new("c", TensorShape::new(8, 8, 16), 3, 3, 12, 1, 1);
/// let bank = synthetic::filter_bank(&conv, 6, 1);
/// let plan = FoldPlan::plan(&conv, 64, 8, 1);
/// let tiles: Vec<_> = WeightTiles::new(&conv, &bank.weights, &plan).collect();
/// assert_eq!(tiles.len(), plan.total_folds());
/// // 3·3·16 = 144 rows fold over 64 array rows → 3 row folds.
/// assert_eq!(tiles.iter().filter(|t| t.col_fold == 0).count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct WeightTiles<'a> {
    conv: &'a Conv2d,
    /// `filters[oc]` is the flattened kh·kw·cin-per-group filter.
    filters: &'a [Vec<i8>],
    plan: &'a FoldPlan,
    next_index: usize,
}

impl<'a> WeightTiles<'a> {
    /// Creates the tile stream.
    ///
    /// # Panics
    ///
    /// Panics if `filters` does not match the conv's filter geometry.
    #[must_use]
    pub fn new(conv: &'a Conv2d, filters: &'a [Vec<i8>], plan: &'a FoldPlan) -> Self {
        assert_eq!(filters.len(), conv.out_c, "one filter per output channel");
        for (oc, f) in filters.iter().enumerate() {
            assert_eq!(
                f.len(),
                conv.filter_rows(),
                "filter {oc} must have {} weights",
                conv.filter_rows()
            );
        }
        Self {
            conv,
            filters,
            plan,
            next_index: 0,
        }
    }

    /// The geometry of tile `index` (no weight copies).
    ///
    /// # Panics
    ///
    /// Panics if `index` is at or beyond [`FoldPlan::total_folds`].
    #[must_use]
    pub fn geometry(&self, index: usize) -> TileGeometry {
        tile_geometry(self.conv, self.plan, index)
    }

    /// Iterator over every tile's geometry, in programming order.
    pub fn geometries(&self) -> impl Iterator<Item = TileGeometry> + '_ {
        (0..self.plan.total_folds()).map(|i| self.geometry(i))
    }

    /// Materializes tile `index` (geometry plus copied weight values).
    ///
    /// # Panics
    ///
    /// Panics if `index` is at or beyond [`FoldPlan::total_folds`].
    #[must_use]
    pub fn tile(&self, index: usize) -> WeightTile {
        self.tile_at(index)
    }

    /// The contiguous filter slice behind column `c` of a tile.
    ///
    /// # Panics
    ///
    /// Panics if the column or the geometry is out of range for the
    /// filter bank.
    #[must_use]
    pub fn filter_column(&self, geom: &TileGeometry, c: usize) -> &'a [i8] {
        assert!(c < geom.cols, "column {c} out of range");
        let oc = geom.group * self.conv.out_c_per_group() + geom.col_offset + c;
        &self.filters[oc][geom.row_offset..geom.row_offset + geom.rows]
    }

    fn tile_at(&self, index: usize) -> WeightTile {
        let geom = self.geometry(index);
        let values = (0..geom.rows)
            .map(|r| {
                (0..geom.cols)
                    .map(|c| self.filter_column(&geom, c)[r])
                    .collect()
            })
            .collect();
        WeightTile {
            group: geom.group,
            row_fold: geom.row_fold,
            col_fold: geom.col_fold,
            row_offset: geom.row_offset,
            col_offset: geom.col_offset,
            values,
        }
    }
}

impl Iterator for WeightTiles<'_> {
    type Item = WeightTile;

    fn next(&mut self) -> Option<WeightTile> {
        if self.next_index >= self.plan.total_folds() {
            return None;
        }
        let tile = self.tile_at(self.next_index);
        self.next_index += 1;
        Some(tile)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.plan.total_folds() - self.next_index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for WeightTiles<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_nn::synthetic;
    use oxbar_nn::TensorShape;

    fn case() -> (Conv2d, Vec<Vec<i8>>) {
        let conv = Conv2d::new("c", TensorShape::new(6, 6, 8), 3, 3, 10, 1, 1);
        let bank = synthetic::filter_bank(&conv, 6, 3);
        (conv, bank.weights)
    }

    #[test]
    fn tile_count_matches_plan() {
        let (conv, filters) = case();
        let plan = FoldPlan::plan(&conv, 32, 4, 1); // 72 rows → 3 rf, 10 cols → 3 cf
        assert_eq!(plan.row_folds, 3);
        assert_eq!(plan.col_folds, 3);
        let tiles: Vec<_> = WeightTiles::new(&conv, &filters, &plan).collect();
        assert_eq!(tiles.len(), 9);
    }

    #[test]
    fn tiles_partition_every_weight_exactly_once() {
        let (conv, filters) = case();
        let plan = FoldPlan::plan(&conv, 32, 4, 1);
        let mut seen = vec![vec![false; conv.filter_rows()]; conv.out_c];
        for tile in WeightTiles::new(&conv, &filters, &plan) {
            for (r, row) in tile.values.iter().enumerate() {
                for (c, &w) in row.iter().enumerate() {
                    let oc = tile.group * conv.out_c_per_group() + tile.col_offset + c;
                    let fr = tile.row_offset + r;
                    assert!(!seen[oc][fr], "weight ({oc},{fr}) tiled twice");
                    seen[oc][fr] = true;
                    assert_eq!(w, filters[oc][fr], "value mismatch at ({oc},{fr})");
                }
            }
        }
        assert!(
            seen.iter().all(|f| f.iter().all(|&s| s)),
            "every weight must appear in exactly one tile"
        );
    }

    #[test]
    fn ragged_edges_truncate() {
        let (conv, filters) = case();
        let plan = FoldPlan::plan(&conv, 32, 4, 1);
        let tiles: Vec<_> = WeightTiles::new(&conv, &filters, &plan).collect();
        // Last row fold: 72 − 64 = 8 rows; last col fold: 10 − 8 = 2 cols.
        let last = tiles.last().unwrap();
        assert_eq!(last.rows(), 8);
        assert_eq!(last.cols(), 2);
    }

    #[test]
    fn grouped_conv_tiles_respect_groups() {
        let conv = Conv2d::new("dw", TensorShape::new(4, 4, 6), 3, 3, 6, 1, 1).with_groups(6);
        let bank = synthetic::filter_bank(&conv, 6, 4);
        let plan = FoldPlan::plan(&conv, 16, 16, 1);
        let tiles: Vec<_> = WeightTiles::new(&conv, &bank.weights, &plan).collect();
        assert_eq!(tiles.len(), 6); // one tile per group
        for (g, tile) in tiles.iter().enumerate() {
            assert_eq!(tile.group, g);
            assert_eq!(tile.rows(), 9);
            assert_eq!(tile.cols(), 1);
        }
    }

    #[test]
    fn exact_size_iterator() {
        let (conv, filters) = case();
        let plan = FoldPlan::plan(&conv, 32, 4, 1);
        let mut it = WeightTiles::new(&conv, &filters, &plan);
        assert_eq!(it.len(), 9);
        it.next();
        assert_eq!(it.len(), 8);
    }
}
