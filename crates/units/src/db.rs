//! Decibel arithmetic with explicit power-domain / field-domain conversion.

use serde::{Deserialize, Serialize};

/// A dimensionless level expressed in decibels.
///
/// Positive values denote loss (attenuation) throughout the `oxbar` crates;
/// the conversion helpers make the power-vs-field distinction explicit, which
/// matters because the coherent crossbar computes in the E-field domain while
/// loss specs are quoted in the optical power domain.
///
/// # Examples
///
/// ```
/// use oxbar_units::Decibel;
///
/// // Losses in dB add linearly.
/// let budget = Decibel::new(2.0) + Decibel::new(0.8) + Decibel::new(4.0);
/// assert!((budget.value() - 6.8).abs() < 1e-12);
/// // A 6.8 dB power loss transmits ~20.9% of the power.
/// assert!((budget.attenuation_power() - 0.2089).abs() < 1e-3);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Decibel(f64);

impl Decibel {
    /// Zero decibels: unity transmission.
    pub const ZERO: Self = Self(0.0);

    /// Creates a decibel value.
    #[must_use]
    pub const fn new(db: f64) -> Self {
        Self(db)
    }

    /// The raw dB value.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts a linear power ratio (transmitted/incident) into a loss in dB.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    #[must_use]
    pub fn from_power_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0, "power ratio must be positive, got {ratio}");
        Self(-10.0 * ratio.log10())
    }

    /// Converts a linear field-amplitude ratio into a loss in dB.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    #[must_use]
    pub fn from_field_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0, "field ratio must be positive, got {ratio}");
        Self(-20.0 * ratio.log10())
    }

    /// Linear power transmission `10^(-dB/10)` for this loss.
    #[must_use]
    pub fn attenuation_power(self) -> f64 {
        10f64.powf(-self.0 / 10.0)
    }

    /// Linear E-field transmission `10^(-dB/20)` for this loss.
    #[must_use]
    pub fn attenuation_field(self) -> f64 {
        10f64.powf(-self.0 / 20.0)
    }

    /// Linear power gain `10^(dB/10)`; the reciprocal of
    /// [`attenuation_power`](Self::attenuation_power).
    #[must_use]
    pub fn gain_power(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Scales the loss by a count (e.g. dB/crossing × number of crossings).
    #[must_use]
    pub fn times(self, n: f64) -> Self {
        Self(self.0 * n)
    }

    /// The larger of two losses.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl core::ops::Add for Decibel {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Decibel {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for Decibel {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl core::ops::Mul<f64> for Decibel {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::iter::Sum for Decibel {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|d| d.0).sum())
    }
}

impl core::fmt::Display for Decibel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3} dB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_db_is_half_power() {
        assert!((Decibel::new(3.0103).attenuation_power() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn six_db_is_half_field() {
        assert!((Decibel::new(6.0206).attenuation_field() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn field_power_consistency() {
        // Field attenuation squared equals power attenuation.
        let l = Decibel::new(4.0);
        let f = l.attenuation_field();
        assert!((f * f - l.attenuation_power()).abs() < 1e-12);
    }

    #[test]
    fn from_power_ratio_round_trip() {
        let l = Decibel::from_power_ratio(0.25);
        assert!((l.value() - 6.0206).abs() < 1e-3);
        assert!((l.attenuation_power() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn losses_add() {
        // The paper's §III loss stack: GC 2 + tree 0.8 + OMA 4 = 6.8 dB.
        let total = Decibel::new(2.0) + Decibel::new(0.8) + Decibel::new(4.0);
        assert!((total.value() - 6.8).abs() < 1e-12);
    }

    #[test]
    fn times_scales() {
        // 0.018 dB/crossing × 127 crossings.
        let l = Decibel::new(0.018).times(127.0);
        assert!((l.value() - 2.286).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power ratio must be positive")]
    fn zero_ratio_panics() {
        let _ = Decibel::from_power_ratio(0.0);
    }

    #[test]
    fn gain_is_reciprocal_of_attenuation() {
        let l = Decibel::new(7.3);
        assert!((l.gain_power() * l.attenuation_power() - 1.0).abs() < 1e-12);
    }
}
