//! Fig. 6 — IPS/W as a function of crossbar rows and columns.

use crate::{fmt, write_csv};
use oxbar_core::dse::{array_grid, sweep, DesignPoint};
use oxbar_nn::zoo::resnet50_v1_5;

/// The sweep axes the paper plots.
pub const ROWS: [usize; 5] = [32, 64, 128, 256, 512];
/// Column axis.
pub const COLS: [usize; 4] = [32, 64, 128, 256];

/// Evaluates the grid (ResNet-50, batch 32, default SRAM, dual-core).
#[must_use]
pub fn generate() -> Vec<DesignPoint> {
    sweep(&resnet50_v1_5(), array_grid(&ROWS, &COLS))
}

/// Prints the IPS/W matrix and the peak point.
pub fn render(points: &[DesignPoint]) {
    println!("# Fig. 6 — IPS/W vs crossbar rows x columns");
    println!("(ResNet-50 v1.5, batch 32, dual-core, default SRAM)");
    print!("{:>8}", "rows\\cols");
    for c in COLS {
        print!(" {c:>9}");
    }
    println!();
    for r in ROWS {
        print!("{r:>8}");
        for c in COLS {
            let p = points
                .iter()
                .find(|p| p.rows == r && p.cols == c)
                .expect("grid point");
            print!(" {:>9.0}", p.ips_per_watt);
        }
        println!();
    }

    let best = points
        .iter()
        .max_by(|a, b| a.ips_per_watt.partial_cmp(&b.ips_per_watt).unwrap())
        .unwrap();
    println!(
        "peak IPS/W = {:.0} at {}x{} (paper band: 128-256 rows x 64-128 cols)",
        best.ips_per_watt, best.rows, best.cols
    );
}

/// Evaluates the grid and writes `results/fig6_array_sweep.csv`.
pub fn run() -> Vec<DesignPoint> {
    let points = generate();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.rows.to_string(),
                p.cols.to_string(),
                fmt(p.ips, 1),
                fmt(p.ips_per_watt, 2),
                fmt(p.power_w, 3),
                fmt(p.area_mm2, 2),
            ]
        })
        .collect();
    write_csv(
        "fig6_array_sweep",
        &["rows", "cols", "ips", "ips_per_watt", "power_w", "area_mm2"],
        &rows,
    );
    points
}
