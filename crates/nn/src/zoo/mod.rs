//! CNN model zoo.
//!
//! [`resnet50_v1_5`] is the paper's benchmark; the other networks exercise
//! the mapper on different layer mixes (plain deep stacks, depthwise
//! separables, small edge models).

mod alexnet;
mod lenet;
mod mobilenet;
mod resnet;
mod vgg;

pub use alexnet::alexnet;
pub use lenet::lenet5;
pub use mobilenet::mobilenet_v1;
pub use resnet::{resnet18, resnet34, resnet50_v1_5};
pub use vgg::vgg16;

/// All zoo constructors, for sweep-style benches.
#[must_use]
pub fn all_networks() -> Vec<crate::Network> {
    vec![
        lenet5(),
        alexnet(),
        vgg16(),
        resnet18(),
        resnet34(),
        resnet50_v1_5(),
        mobilenet_v1(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_zoo_network_shape_checks() {
        for net in all_networks() {
            assert_eq!(net.audit_shapes(), None, "shape mismatch in {}", net.name());
        }
    }

    #[test]
    fn zoo_macs_are_plausible() {
        // Sanity bands from the literature (GMACs at 224², except LeNet).
        let expect = [
            ("lenet5", 0.0002, 0.002),
            ("alexnet", 0.6, 0.8),
            ("vgg16", 15.0, 16.0),
            ("resnet18", 1.7, 1.9),
            ("resnet34", 3.5, 3.8),
            ("resnet50_v1.5", 4.0, 4.2),
            ("mobilenet_v1", 0.5, 0.62),
        ];
        for net in all_networks() {
            let gmacs = net.total_macs() as f64 / 1e9;
            let (_, lo, hi) = expect
                .iter()
                .find(|(n, _, _)| *n == net.name())
                .expect("network in table");
            assert!(
                gmacs >= *lo && gmacs <= *hi,
                "{}: {gmacs} GMACs outside [{lo}, {hi}]",
                net.name()
            );
        }
    }
}
