//! End-to-end **device-level network inference** for the `oxbar`
//! coherent optical crossbar: the first code path that crosses every
//! domain crate of the workspace in a single run.
//!
//! A forward pass flows through the full physical chain:
//!
//! ```text
//! oxbar-nn        network graph + INT6 quantization + signed→unipolar mapping
//!    │
//! oxbar-dataflow  fold/tile plan (FoldPlan + WeightTiles) over the N×M array
//!    │
//! oxbar-pcm       per-tile PCM programming (variation / drift optional)
//!    │
//! oxbar-photonics field-level CrossbarSimulator MVM per tile
//!    │
//! oxbar-electronics TIA + ADC readout, digital partial-sum accumulation
//!    │
//! oxbar-nn        digital pooling / activation / requantization
//!    └──────────▶ compared against reference::Executor (exact integers)
//! ```
//!
//! In [`SimConfig::ideal`] mode the chain is **bit-for-bit identical** to
//! the exact integer reference executor (idealized PCM device, exact
//! readout); [`SimConfig::noisy`] turns on programming variation, drift,
//! phase error, losses, and a 12-bit TIA/ADC front end, and
//! [`run_inference`] reports the per-layer and per-network erosion
//! (error rate, max |Δ|, top-1 agreement).
//!
//! Per-tile execution is parallelized with the order-preserving
//! [`oxbar_core::dse::parallel_map`] and seeded per tile
//! ([`config::tile_seed`]), so parallel runs are byte-identical to serial
//! ones.
//!
//! Each programmed tile is a fixed linear operator, so the default
//! [`MvmEngine::Compiled`] engine compiles it once into a transfer matrix
//! ([`oxbar_photonics::transfer::CompiledCrossbar`]) and executes all pixel
//! drives as batched dense MVMs behind a duplicate-window cache. The
//! executor keeps compiled tiles across pixel batches and images
//! (weight-stationary, like the PCM hardware itself), validating every
//! cache hit against the tile's exact weights. The cell-by-cell field walk
//! remains available as the validation oracle via [`MvmEngine::FieldWalk`]
//! (see the `device_mvm` bench for the measured speedup).
//!
//! The warm path is **allocation-free**: every per-execution buffer lives
//! in a pooled [`ExecArena`] (see [`arena`]), and serving layers can move
//! PCM programming off their critical path entirely with
//! [`DeviceExecutor::prewarm`], which compiles a model's full tile set
//! eagerly (parallel across tiles, deterministic per-tile seeds).
//!
//! # Examples
//!
//! ```
//! use oxbar_nn::synthetic;
//! use oxbar_nn::zoo::lenet5;
//! use oxbar_sim::{run_inference, SimConfig};
//!
//! let net = lenet5();
//! let images = vec![synthetic::activations(net.input(), 6, 9)];
//! let filters = synthetic::filter_banks(&net, 6, 10);
//!
//! // LeNet-5 through PCM → photonics → readout, bit-exact in ideal mode:
//! let ideal = run_inference(&net, &SimConfig::ideal(128, 128), &images, &filters).unwrap();
//! assert!(ideal.exact);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod config;
pub mod executor;
pub mod fault;
pub mod fidelity;
pub mod llm;
pub mod probe;
pub mod snapshot;
pub mod tile;

pub use arena::ExecArena;
pub use config::{NoiseModel, Readout, SimConfig};
pub use executor::{
    CacheStats, DeviceExecutor, DeviceForward, LayerExecution, LayerStats, TileDriftInfo,
};
pub use fault::{ExecError, FaultEvent, FaultPlan, InjectedFault};
pub use fidelity::{device_forward, run_inference, InferenceFidelity, LayerFidelity};
pub use llm::{lm_step, DeviceLmEngine};
pub use probe::{probe_conv, LayerProbe};
pub use snapshot::{ChipSnapshot, TileSnapshot};
pub use tile::MvmEngine;

#[cfg(test)]
mod proptests;
