//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! The container this workspace builds in has no crate-registry access,
//! so `syn`/`quote` are unavailable; the item is parsed directly from the
//! `proc_macro` token stream. Supported shapes are the ones the `oxbar`
//! crates actually use:
//!
//! - structs with named fields → JSON object keyed by field name
//! - newtype/tuple structs (incl. `#[serde(transparent)]`) → the inner
//!   value (newtype) or an array (wider tuples)
//! - unit-only enum variants → the variant name as a string
//! - newtype enum variants → `{"Variant": <inner>}`
//!
//! Generics, struct enum variants, and field-level serde attributes are
//! rejected with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Variant {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

enum Data {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, Variant)>),
}

struct Input {
    name: String,
    data: Data,
}

/// Derives the shim's `serde::Serialize` for structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let body = match &item.data {
        Data::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Data::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Data::Unit => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| {
                    let name = &item.name;
                    match kind {
                        Variant::Unit => format!(
                            "{name}::{v} => \
                             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                        ),
                        Variant::Newtype => format!(
                            "{name}::{v}(inner) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(inner))]),"
                        ),
                        Variant::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    );
    code.parse()
        .expect("serde shim derive emitted invalid Rust")
}

/// Derives the shim's `serde::Deserialize` for structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let name = &item.name;
    let body = match &item.data {
        Data::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get(\"{f}\")\
                         .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Data::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Data::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}({inits})),\n\
                 other => ::std::result::Result::Err(\
                 ::serde::Error::invalid_type(\"array of length {n}\", other)),\n\
                 }}",
                inits = inits.join(", ")
            )
        }
        Data::Unit => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, kind)| matches!(kind, Variant::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, kind)| match kind {
                    Variant::Unit => None,
                    Variant::Newtype => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Variant::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     inner.get(\"{f}\").ok_or_else(|| \
                                     ::serde::Error::missing_field(\"{f}\"))?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(" ")
                        ))
                    }
                })
                .collect();
            let str_arm = format!(
                "::serde::Value::Str(s) => match s.as_str() {{\n\
                 {arms}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}",
                arms = unit_arms.join(" ")
            );
            let obj_arm = if newtype_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                     let (tag, inner) = &fields[0];\n\
                     match tag.as_str() {{\n\
                     {arms}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }}\n\
                     }}",
                    arms = newtype_arms.join(" ")
                )
            };
            format!(
                "match value {{\n{str_arm}\n{obj_arm}\n\
                 other => ::std::result::Result::Err(\
                 ::serde::Error::invalid_type(\"enum {name}\", other)),\n\
                 }}"
            )
        }
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    );
    code.parse()
        .expect("serde shim derive emitted invalid Rust")
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types ({name})");
        }
    }
    let data = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Unit,
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}`"),
    };
    Input { name, data }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1; // field name
        i += 1; // ':'
        skip_type_until_comma(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        count += 1;
        skip_type_until_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Variant)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let mut kind = Variant::Unit;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_tuple_fields(g.stream()) != 1 {
                    panic!("serde shim derive: variant {variant} must carry exactly one field");
                }
                kind = Variant::Newtype;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                kind = Variant::Struct(parse_named_fields(g.stream()));
                i += 1;
            }
            _ => {}
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((variant, kind));
    }
    variants
}

/// Skips a type, stopping after the `,` that ends the field (angle-bracket
/// depth aware so `Vec<Vec<f64>>` and `HashMap<K, V>` parse correctly).
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}
