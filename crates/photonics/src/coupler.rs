//! Directional coupler (DC): the 2×2 power-splitting element of each unit
//! cell.

use crate::{Complex, Field};
use oxbar_units::Decibel;
use serde::{Deserialize, Serialize};

/// A lossless (optionally lossy) directional coupler with power
/// cross-coupling ratio `κ`.
///
/// The ideal transfer matrix in the field domain is
///
/// ```text
/// | through |   |   t    j·k | | in_a |
/// |  cross  | = |  j·k    t  | | in_b |        t = √(1−κ), k = √κ
/// ```
///
/// which is unitary: total output power equals total input power. The `j`
/// on the cross port is the 90° phase pickup every evanescent coupler
/// imparts; the crossbar's coherence analysis depends on it being applied
/// consistently.
///
/// # Examples
///
/// ```
/// use oxbar_photonics::coupler::DirectionalCoupler;
/// use oxbar_photonics::Field;
///
/// let dc = DirectionalCoupler::new(0.5).unwrap();
/// let (through, cross) = dc.couple(Field::from_amplitude(1.0), Field::DARK);
/// assert!((through.power().as_watts() - 0.5).abs() < 1e-12);
/// assert!((cross.power().as_watts() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectionalCoupler {
    kappa: f64,
    excess_loss: Decibel,
}

/// Error returned when constructing a coupler with an invalid ratio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidCouplingRatio {
    /// The rejected value.
    pub kappa: String,
}

impl core::fmt::Display for InvalidCouplingRatio {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "coupling ratio must be in [0, 1], got {}", self.kappa)
    }
}

impl std::error::Error for InvalidCouplingRatio {}

impl DirectionalCoupler {
    /// Creates a lossless coupler with power cross-coupling ratio `kappa`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCouplingRatio`] if `kappa` is outside `[0, 1]` or
    /// not finite.
    pub fn new(kappa: f64) -> Result<Self, InvalidCouplingRatio> {
        if !kappa.is_finite() || !(0.0..=1.0).contains(&kappa) {
            return Err(InvalidCouplingRatio {
                kappa: kappa.to_string(),
            });
        }
        Ok(Self {
            kappa,
            excess_loss: Decibel::ZERO,
        })
    }

    /// Adds an excess insertion loss applied equally to both outputs.
    #[must_use]
    pub fn with_excess_loss(mut self, loss: Decibel) -> Self {
        self.excess_loss = loss;
        self
    }

    /// The power cross-coupling ratio κ.
    #[must_use]
    pub fn kappa(self) -> f64 {
        self.kappa
    }

    /// Field-domain through amplitude `t = √(1−κ)`.
    #[must_use]
    pub fn through_amplitude(self) -> f64 {
        (1.0 - self.kappa).sqrt()
    }

    /// Field-domain cross amplitude `k = √κ`.
    #[must_use]
    pub fn cross_amplitude(self) -> f64 {
        self.kappa.sqrt()
    }

    /// Applies the 2×2 transfer matrix to the two input fields.
    ///
    /// Returns `(through, cross)` as seen from `in_a`: `through` carries
    /// `t·a + j·k·b`, `cross` carries `j·k·a + t·b`.
    #[must_use]
    pub fn couple(self, in_a: Field, in_b: Field) -> (Field, Field) {
        let t = self.through_amplitude();
        let k = self.cross_amplitude();
        let jk = Complex::new(0.0, k);
        let a = in_a.envelope();
        let b = in_b.envelope();
        let loss = self.excess_loss.attenuation_field();
        let through = (a.scale(t) + b * jk).scale(loss);
        let cross = (a * jk + b.scale(t)).scale(loss);
        (Field::new(through), Field::new(cross))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unitarity_single_input() {
        for kappa in [0.0, 0.1, 0.33, 0.5, 0.9, 1.0] {
            let dc = DirectionalCoupler::new(kappa).unwrap();
            let (t, c) = dc.couple(Field::from_amplitude(1.0), Field::DARK);
            let total = t.power().as_watts() + c.power().as_watts();
            assert!((total - 1.0).abs() < 1e-12, "kappa={kappa}");
        }
    }

    #[test]
    fn unitarity_two_inputs() {
        let dc = DirectionalCoupler::new(0.3).unwrap();
        let a = Field::from_power(oxbar_units::Power::from_milliwatts(2.0), 0.4);
        let b = Field::from_power(oxbar_units::Power::from_milliwatts(1.0), -1.1);
        let (t, c) = dc.couple(a, b);
        let in_p = a.power().as_watts() + b.power().as_watts();
        let out_p = t.power().as_watts() + c.power().as_watts();
        assert!((in_p - out_p).abs() < 1e-15);
    }

    #[test]
    fn cross_port_phase_is_90_degrees() {
        let dc = DirectionalCoupler::new(0.5).unwrap();
        let (_, cross) = dc.couple(Field::from_amplitude(1.0), Field::DARK);
        assert!((cross.phase() - core::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn full_coupling_swaps_ports() {
        let dc = DirectionalCoupler::new(1.0).unwrap();
        let (t, c) = dc.couple(Field::from_amplitude(1.0), Field::DARK);
        assert!(t.power().as_watts() < 1e-24);
        assert!((c.power().as_watts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn excess_loss_applies() {
        let dc = DirectionalCoupler::new(0.5)
            .unwrap()
            .with_excess_loss(Decibel::new(3.0103));
        let (t, c) = dc.couple(Field::from_amplitude(1.0), Field::DARK);
        let total = t.power().as_watts() + c.power().as_watts();
        assert!((total - 0.5).abs() < 1e-5);
    }

    #[test]
    fn invalid_kappa_rejected() {
        assert!(DirectionalCoupler::new(1.5).is_err());
        assert!(DirectionalCoupler::new(-0.1).is_err());
        assert!(DirectionalCoupler::new(f64::NAN).is_err());
    }

    #[test]
    fn error_message() {
        let err = DirectionalCoupler::new(2.0).unwrap_err();
        assert_eq!(err.to_string(), "coupling ratio must be in [0, 1], got 2");
    }
}
