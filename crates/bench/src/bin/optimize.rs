//! Runs the Sec. VI.B optimization flow.
use oxbar_bench::figures::optimize;
fn main() {
    optimize::render(&optimize::run());
}
