//! Property-based tests for the PCM device and programming models.

use crate::array::{Parallelism, PcmArray};
use crate::cell::PcmCell;
use crate::levels::LevelTable;
use crate::program::ProgramVerifyController;
use crate::variation::DeviceVariation;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn transmission_monotone_decreasing_in_fraction(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut cell_lo = PcmCell::pristine();
        let mut cell_hi = PcmCell::pristine();
        cell_lo.set_crystalline_fraction(lo);
        cell_hi.set_crystalline_fraction(hi);
        prop_assert!(cell_lo.transmission() >= cell_hi.transmission());
    }

    #[test]
    fn fraction_inversion_round_trips(target in 0.02..=0.96f64) {
        let cell = PcmCell::pristine();
        let t = target * cell.max_transmission();
        if let Some(x) = cell.fraction_for_transmission(t.max(cell.min_transmission())) {
            let mut programmed = PcmCell::pristine();
            programmed.set_crystalline_fraction(x.clamp(0.0, 1.0));
            prop_assert!((programmed.transmission() - t.max(cell.min_transmission())).abs() < 1e-9);
        }
    }

    #[test]
    fn level_table_monotone(bits in 2u8..=8) {
        let table = LevelTable::new(bits, PcmCell::pristine());
        for code in 1..table.levels() as u16 {
            prop_assert!(
                table.transmission_for_code(code)
                    >= table.transmission_for_code(code - 1)
            );
        }
    }

    #[test]
    fn quantize_dequantize_round_trip(bits in 2u8..=8, raw in 0u16..256) {
        let table = LevelTable::new(bits, PcmCell::pristine());
        let code = raw % (table.max_code() + 1);
        prop_assert_eq!(table.quantize_weight(table.dequantize_code(code)), code);
    }

    #[test]
    fn program_verify_converges_with_enough_pulses(
        target in 0.05..=0.9f64,
        sigma in 0.0..0.03f64,
        seed in 0u64..512,
    ) {
        let ctl = ProgramVerifyController::new(
            DeviceVariation::new(sigma, 0.0), 0.01, 200,
        );
        let mut cell = PcmCell::pristine();
        let mut rng = StdRng::seed_from_u64(seed);
        let t = target * cell.max_transmission();
        let out = ctl.program_to_transmission(&mut cell, t, 0.0, &mut rng);
        prop_assert!(out.converged, "residual {}", out.residual);
        prop_assert!(out.residual <= 0.01);
    }

    #[test]
    fn array_programming_energy_counts_changed_cells(
        n in 1usize..12,
        m in 1usize..12,
        w in 0.05..0.95f64,
    ) {
        let mut array = PcmArray::pristine(n, m);
        let weights = vec![vec![w; m]; n];
        let report = array.program(&weights, Parallelism::FullArray);
        prop_assert_eq!(report.cells_programmed + report.cells_skipped, n * m);
        let expected_pj = report.cells_programmed as f64 * 100.0;
        prop_assert!((report.energy.as_picojoules() - expected_pj).abs() < 1e-9);
    }

    #[test]
    fn delta_programming_is_idempotent(n in 1usize..10, m in 1usize..10, w in 0.0..=1.0f64) {
        let mut array = PcmArray::pristine(n, m);
        let weights = vec![vec![w; m]; n];
        array.program(&weights, Parallelism::FullArray);
        let second = array.program(&weights, Parallelism::FullArray);
        prop_assert_eq!(second.cells_programmed, 0);
        prop_assert_eq!(second.energy.as_joules(), 0.0);
    }
}
