//! Per-row / per-column peripheral aggregation.

use crate::adc::Adc;
use crate::clocking::ClockDistribution;
use crate::dac::OdacDriver;
use crate::serdes::SerDes;
use crate::tia::Tia;
use oxbar_units::{Area, Frequency, Power};
use serde::{Deserialize, Serialize};

/// The transmit-side electronics attached to every crossbar **row**:
/// ODAC driver (+ ring tuning), SerDes lane, and clock distribution.
///
/// # Examples
///
/// ```
/// use oxbar_electronics::bank::TransmitterBank;
/// use oxbar_units::Frequency;
///
/// let tx = TransmitterBank::paper_default(Frequency::from_gigahertz(10.0));
/// let p128 = tx.power(128);
/// assert!(p128.as_watts() > 1.0 && p128.as_watts() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmitterBank {
    driver: OdacDriver,
    serdes: SerDes,
    clocking: ClockDistribution,
}

impl TransmitterBank {
    /// The paper's transmit stack at the given MAC clock with INT6 data.
    #[must_use]
    pub fn paper_default(clock: Frequency) -> Self {
        Self {
            driver: OdacDriver::paper_default(clock),
            serdes: SerDes::paper_default(clock, 6),
            clocking: ClockDistribution::paper_default(clock),
        }
    }

    /// Power of one row's transmitter.
    #[must_use]
    pub fn power_per_row(self) -> Power {
        self.driver.power() + self.serdes.power() + self.clocking.power()
    }

    /// Power of `rows` transmitters.
    #[must_use]
    pub fn power(self, rows: usize) -> Power {
        self.power_per_row() * rows as f64
    }

    /// Area of one row's transmitter.
    #[must_use]
    pub fn area_per_row(self) -> Area {
        self.driver.area() + self.clocking.area()
    }

    /// Area of `rows` transmitters.
    #[must_use]
    pub fn area(self, rows: usize) -> Area {
        self.area_per_row() * rows as f64
    }

    /// The ODAC driver in use.
    #[must_use]
    pub fn driver(self) -> OdacDriver {
        self.driver
    }
}

/// The receive-side electronics attached to every crossbar **column**:
/// TIA, ADC, SerDes lane, and clock distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReceiverBank {
    tia: Tia,
    adc: Adc,
    serdes: SerDes,
    clocking: ClockDistribution,
}

impl ReceiverBank {
    /// The paper's receive stack at the given MAC clock with INT6 data.
    #[must_use]
    pub fn paper_default(clock: Frequency) -> Self {
        Self {
            tia: Tia::paper_default(),
            adc: Adc::paper_default(clock),
            serdes: SerDes::paper_default(clock, 6),
            clocking: ClockDistribution::paper_default(clock),
        }
    }

    /// Uses an ADC scaled to a different resolution.
    #[must_use]
    pub fn with_adc(mut self, adc: Adc) -> Self {
        self.adc = adc;
        self
    }

    /// Power of one column's receiver.
    #[must_use]
    pub fn power_per_column(self) -> Power {
        self.tia.power() + self.adc.power() + self.serdes.power() + self.clocking.power()
    }

    /// Power of `columns` receivers.
    #[must_use]
    pub fn power(self, columns: usize) -> Power {
        self.power_per_column() * columns as f64
    }

    /// Area of one column's receiver.
    #[must_use]
    pub fn area_per_column(self) -> Area {
        self.tia.area() + self.adc.area() + self.clocking.area()
    }

    /// Area of `columns` receivers.
    #[must_use]
    pub fn area(self, columns: usize) -> Area {
        self.area_per_column() * columns as f64
    }

    /// The ADC in use.
    #[must_use]
    pub fn adc(self) -> Adc {
        self.adc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLK: f64 = 10.0;

    #[test]
    fn transmitter_power_breakdown() {
        let tx = TransmitterBank::paper_default(Frequency::from_gigahertz(CLK));
        // ODAC 1.68 + tuning 1.44 + SerDes 6.0 + clock 2.0 = 11.12 mW/row.
        assert!((tx.power_per_row().as_milliwatts() - 11.12).abs() < 1e-9);
    }

    #[test]
    fn receiver_power_breakdown() {
        let rx = ReceiverBank::paper_default(Frequency::from_gigahertz(CLK));
        // TIA 2.25 + ADC 25 + SerDes 6.0 + clock 2.0 = 35.25 mW/col.
        assert!((rx.power_per_column().as_milliwatts() - 35.25).abs() < 1e-9);
    }

    #[test]
    fn receiver_dominated_by_adc() {
        let rx = ReceiverBank::paper_default(Frequency::from_gigahertz(CLK));
        let adc_share = rx.adc().power().as_watts() / rx.power_per_column().as_watts();
        assert!(adc_share > 0.5, "ADC share {adc_share}");
    }

    #[test]
    fn bank_power_scales_linearly() {
        let rx = ReceiverBank::paper_default(Frequency::from_gigahertz(CLK));
        let p64 = rx.power(64).as_watts();
        let p128 = rx.power(128).as_watts();
        assert!((p128 / p64 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetry_receivers_cost_more_than_transmitters() {
        // This asymmetry is why the paper's optimum has fewer columns than
        // rows (Fig. 6: peak at 128-256 rows × 64-128 columns).
        let clock = Frequency::from_gigahertz(CLK);
        let tx = TransmitterBank::paper_default(clock).power_per_row();
        let rx = ReceiverBank::paper_default(clock).power_per_column();
        assert!(rx.as_watts() > 2.0 * tx.as_watts());
    }

    #[test]
    fn area_scales_linearly() {
        let tx = TransmitterBank::paper_default(Frequency::from_gigahertz(CLK));
        let a1 = tx.area(1).as_square_millimeters();
        let a128 = tx.area(128).as_square_millimeters();
        assert!((a128 / a1 - 128.0).abs() < 1e-9);
    }

    #[test]
    fn lower_resolution_adc_cuts_receiver_power() {
        let clock = Frequency::from_gigahertz(CLK);
        let rx8 = ReceiverBank::paper_default(clock);
        let rx6 = rx8.with_adc(crate::adc::Adc::scaled(6, clock));
        assert!(rx6.power_per_column() < rx8.power_per_column());
    }
}
