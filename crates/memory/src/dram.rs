//! Off-chip DRAM model (co-packaged HBM or PCIe-attached).

use oxbar_units::{DataVolume, Energy, EnergyPerBit, Time};
use serde::{Deserialize, Serialize};

/// The DRAM attachment style, which sets the access energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramKind {
    /// Co-packaged HBM stack: 3.9 pJ/bit (ref. \[21\], fine-grained DRAM).
    Hbm,
    /// DRAM behind a PCIe switch: ~15 pJ/bit — the related-work baseline
    /// the paper argues against (§II, ref. \[11\]).
    PcieAttached,
}

impl DramKind {
    /// Access energy for this attachment.
    #[must_use]
    pub fn access_energy(self) -> EnergyPerBit {
        match self {
            DramKind::Hbm => EnergyPerBit::from_picojoules_per_bit(3.9),
            DramKind::PcieAttached => EnergyPerBit::from_picojoules_per_bit(15.0),
        }
    }

    /// Peak bandwidth in bytes/s (HBM2e-class stack vs PCIe 4.0 ×16).
    #[must_use]
    pub fn peak_bandwidth_bytes_per_s(self) -> f64 {
        match self {
            DramKind::Hbm => 450e9,
            DramKind::PcieAttached => 32e9,
        }
    }
}

/// A DRAM channel with traffic counters.
///
/// # Examples
///
/// ```
/// use oxbar_memory::dram::{DramKind, DramModel};
/// use oxbar_units::DataVolume;
///
/// let mut dram = DramModel::new(DramKind::Hbm);
/// dram.record_read(DataVolume::from_megabytes(19.2));
/// assert!((dram.energy().as_microjoules() - 599.04).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    kind: DramKind,
    bits_read: f64,
    bits_written: f64,
}

impl DramModel {
    /// Creates a DRAM channel.
    #[must_use]
    pub fn new(kind: DramKind) -> Self {
        Self {
            kind,
            bits_read: 0.0,
            bits_written: 0.0,
        }
    }

    /// The attachment kind.
    #[must_use]
    pub fn kind(&self) -> DramKind {
        self.kind
    }

    /// Records a read of `volume`.
    pub fn record_read(&mut self, volume: DataVolume) {
        self.bits_read += volume.as_bits();
    }

    /// Records a write of `volume`.
    pub fn record_write(&mut self, volume: DataVolume) {
        self.bits_written += volume.as_bits();
    }

    /// Total traffic so far.
    #[must_use]
    pub fn total_traffic(&self) -> DataVolume {
        DataVolume::from_bits(self.bits_read + self.bits_written)
    }

    /// Access energy accumulated so far.
    #[must_use]
    pub fn energy(&self) -> Energy {
        self.kind.access_energy() * self.total_traffic()
    }

    /// The minimum time to move `volume` at peak bandwidth (stall model).
    #[must_use]
    pub fn transfer_time(&self, volume: DataVolume) -> Time {
        Time::from_seconds(volume.as_bytes() / self.kind.peak_bandwidth_bytes_per_s())
    }

    /// Clears the counters.
    pub fn reset_counters(&mut self) {
        self.bits_read = 0.0;
        self.bits_written = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_energy_per_bit() {
        assert!((DramKind::Hbm.access_energy().as_picojoules_per_bit() - 3.9).abs() < 1e-12);
    }

    #[test]
    fn pcie_costs_nearly_4x_hbm() {
        let ratio = DramKind::PcieAttached.access_energy().as_joules_per_bit()
            / DramKind::Hbm.access_energy().as_joules_per_bit();
        assert!((ratio - 15.0 / 3.9).abs() < 1e-12);
    }

    #[test]
    fn energy_accumulates_traffic() {
        let mut dram = DramModel::new(DramKind::Hbm);
        dram.record_read(DataVolume::from_megabits(1.0));
        dram.record_write(DataVolume::from_megabits(1.0));
        assert!((dram.energy().as_microjoules() - 7.8).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_at_peak_bandwidth() {
        let dram = DramModel::new(DramKind::Hbm);
        let t = dram.transfer_time(DataVolume::from_megabytes(450.0));
        assert!((t.as_milliseconds() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut dram = DramModel::new(DramKind::Hbm);
        dram.record_read(DataVolume::from_megabytes(1.0));
        dram.reset_counters();
        assert_eq!(dram.total_traffic().as_bits(), 0.0);
    }
}
