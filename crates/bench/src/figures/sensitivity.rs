//! Technology-parameter sensitivity (tornado) table.

use crate::{fmt, write_csv};
use oxbar_core::sensitivity::analyze;
use oxbar_core::ChipConfig;
use oxbar_nn::zoo::resnet50_v1_5;

/// Prints the tornado table and writes `results/sensitivity.csv`.
pub fn run() {
    println!("# Sensitivity — IPS/W elasticity to each device constant (±20%)");
    let mut table = analyze(&resnet50_v1_5(), &ChipConfig::paper_optimal(), 0.2);
    table.sort_by(|a, b| {
        b.elasticity
            .abs()
            .partial_cmp(&a.elasticity.abs())
            .expect("finite")
    });
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "parameter", "IPS/W @-20%", "IPS/W @+20%", "elasticity"
    );
    let mut rows = Vec::new();
    for s in &table {
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>+12.3}",
            s.parameter, s.ipsw_low, s.ipsw_high, s.elasticity
        );
        rows.push(vec![
            s.parameter.to_string(),
            fmt(s.ipsw_low, 1),
            fmt(s.ipsw_high, 1),
            fmt(s.elasticity, 4),
        ]);
    }
    println!("\n(elasticity = dln(IPS/W)/dln(param); the headline claim is robust");
    println!(" to any constant with |elasticity| well below 1)");
    write_csv(
        "sensitivity",
        &["parameter", "ipsw_minus20", "ipsw_plus20", "elasticity"],
        &rows,
    );
}
