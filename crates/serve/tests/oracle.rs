//! Property test: for random interleaved multi-model request streams and
//! random engine policies, the batched engine equals the per-model
//! sequential oracle (every request through its own fresh executor).

use oxbar_nn::synthetic::{self, small_network};
use oxbar_serve::request::request_seed;
use oxbar_serve::{catalog, BatchPolicy, InferRequest, ModelId, ServeConfig, ServeEngine};
use oxbar_sim::{DeviceExecutor, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn interleaved_streams_equal_per_model_sequential_oracle(seed in 0u64..10_000) {
        // Two random small sequential networks as the resident models.
        let specs = [
            catalog::spec_from_network(small_network(seed), seed ^ 0x11),
            catalog::spec_from_network(small_network(seed ^ 0x7F3), seed ^ 0x22),
        ];
        let device = SimConfig::ideal(32, 16).with_seed(seed).with_threads(1);

        // Random policy, worker count, budget pressure, and pipelined
        // prewarm stage.
        let max_batch = 1 + (seed % 5) as usize;
        let max_wait = seed % 7;
        let workers = 1 + (seed % 3) as usize;
        let budget = if seed % 2 == 0 { usize::MAX } else { 4_000 };
        let prewarm = seed % 3 == 0;
        let mut engine = ServeEngine::new(
            ServeConfig::new(device.clone())
                .with_policy(BatchPolicy::new(max_batch, max_wait))
                .with_workers(workers)
                .with_cache_budget(budget)
                .with_prewarm(prewarm),
        );
        let ids: Vec<ModelId> = specs
            .iter()
            .map(|s| engine.admit(s.clone()).expect("sequential models admit"))
            .collect();

        // A random interleaved stream of 8 requests.
        let requests: Vec<InferRequest> = (0..8u64)
            .map(|i| {
                let which = (request_seed(seed, i) % 2) as usize;
                InferRequest {
                    model: ids[which],
                    input: synthetic::activations(
                        specs[which].network.input(),
                        6,
                        request_seed(seed ^ 0xBEEF, i),
                    ),
                    arrival: i / 2,
                    deadline: None,
                }
            })
            .collect();
        for request in &requests {
            engine.submit(request.clone());
        }
        let mut done = engine.drain();
        done.sort_by_key(|c| c.id);
        prop_assert_eq!(done.len(), requests.len());

        // Oracle: each request alone, through a fresh executor built with
        // the model's admission seed.
        for (completion, request) in done.iter().zip(&requests) {
            prop_assert_eq!(completion.model, request.model);
            let which = completion.model.0;
            let config = device
                .clone()
                .with_seed(request_seed(device.seed, which as u64));
            let oracle = DeviceExecutor::new(config)
                .forward(&specs[which].network, &request.input, &specs[which].filters)
                .expect("sequential");
            prop_assert!(
                oracle.output == completion.output,
                "seed {} request {:?} diverged from the oracle",
                seed,
                completion.id
            );
        }
    }
}
