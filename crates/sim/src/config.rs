//! Configuration for the device-level inference pipeline.

use oxbar_nn::mapping::WeightMapping;
use oxbar_pcm::PcmCell;
use oxbar_units::Time;
use serde::{Deserialize, Serialize};

/// How a column's analog output becomes a digital partial sum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Readout {
    /// An idealized converter with unbounded resolution: the normalized
    /// column output is scaled and rounded to the nearest integer. This is
    /// the mode in which the pipeline is *bit-exact* against the integer
    /// reference executor.
    Exact,
    /// The physical receive chain: the column amplitude drives a
    /// photocurrent into the paper's TIA, whose output voltage is
    /// digitized by a uniform `bits`-resolution ADC before the digital
    /// accumulator.
    Adc {
        /// ADC resolution in bits (1..=16).
        bits: u8,
    },
}

/// The device non-idealities applied during a run.
///
/// [`NoiseModel::NONE`] is the ideal chain; [`NoiseModel::paper_typical`]
/// turns on every physical effect at the magnitudes the fidelity study
/// (`oxbar-core::fidelity`) uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// PCM cycle-to-cycle programming sigma (crystalline-fraction units).
    pub pcm_sigma: f64,
    /// Amorphous-drift exponent ν (0 disables drift).
    pub drift_nu: f64,
    /// How long programmed weights sit before being read.
    pub drift_elapsed: Time,
    /// Physical time each virtual scheduler tick adds to a resident
    /// tile's age ([`Time::ZERO`] disables aging). When non-zero and
    /// `drift_nu > 0`, cached tiles re-derive their drifted transmissions
    /// at `drift_elapsed + age · drift_tick`, where age counts dispatch
    /// ticks since the tile was programmed — never wall clock, so aged
    /// readouts stay byte-identical across thread counts and reruns.
    pub drift_tick: Time,
    /// Per-cell phase-error sigma (radians).
    pub phase_sigma_rad: f64,
    /// Thermal-trimmer quantization step (radians); 0 disables trimming.
    pub trim_resolution_rad: f64,
    /// Component losses with path-loss pre-compensation enabled.
    pub with_losses: bool,
    /// Use the realistic GST device (0.3 dB amorphous floor, 40 dB
    /// extinction) instead of the idealized lossless/infinite-extinction
    /// cell. The realistic device cannot express weight code 0 exactly —
    /// its extinction floor is the dominant systematic error in an
    /// otherwise noise-free chain.
    pub realistic_device: bool,
}

impl NoiseModel {
    /// The ideal chain: no variation, drift, phase error, or loss, and an
    /// idealized PCM device whose 64 levels are exact.
    pub const NONE: Self = Self {
        pcm_sigma: 0.0,
        drift_nu: 0.0,
        drift_elapsed: Time::ZERO,
        drift_tick: Time::ZERO,
        phase_sigma_rad: 0.0,
        trim_resolution_rad: 0.0,
        with_losses: false,
        realistic_device: false,
    };

    /// Every physical effect at typical magnitudes: 1% PCM programming
    /// sigma, ν = 0.01 drift over one hour, 0.02 rad phase error with
    /// 0.01 rad trimmers, compensated losses, realistic device.
    #[must_use]
    pub fn paper_typical() -> Self {
        Self {
            pcm_sigma: 0.01,
            drift_nu: 0.01,
            drift_elapsed: Time::from_seconds(3600.0),
            drift_tick: Time::ZERO,
            phase_sigma_rad: 0.02,
            trim_resolution_rad: 0.01,
            with_losses: true,
            realistic_device: true,
        }
    }

    /// Whether every knob is at its ideal setting.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        *self == Self::NONE
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::NONE
    }
}

/// Full configuration of the device-level executor.
///
/// # Examples
///
/// ```
/// use oxbar_sim::SimConfig;
///
/// let cfg = SimConfig::ideal(128, 128);
/// assert_eq!(cfg.q(), 31);       // INT6 signed weight range
/// assert_eq!(cfg.v_max(), 63);   // INT6 unsigned activation range
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Crossbar rows (N) available per tile.
    pub array_rows: usize,
    /// Crossbar columns (M) available per tile.
    pub array_cols: usize,
    /// Signed→unipolar weight mapping scheme.
    pub mapping: WeightMapping,
    /// Activation precision in bits (the paper's INT6).
    pub activation_bits: u8,
    /// Weight precision in bits (the paper's INT6).
    pub weight_bits: u8,
    /// Column readout model.
    pub readout: Readout,
    /// Device non-idealities.
    pub noise: NoiseModel,
    /// Base seed; per-tile streams derive deterministically from it.
    pub seed: u64,
    /// Worker threads for per-tile execution (0 = all cores, 1 = serial).
    /// Results are byte-identical regardless of the thread count.
    pub threads: usize,
}

impl SimConfig {
    /// An ideal (bit-exact) pipeline on an `rows × cols` array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn ideal(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self {
            array_rows: rows,
            array_cols: cols,
            mapping: WeightMapping::Offset,
            activation_bits: 6,
            weight_bits: 6,
            readout: Readout::Exact,
            noise: NoiseModel::NONE,
            seed: 0,
            threads: 0,
        }
    }

    /// A noisy pipeline: [`NoiseModel::paper_typical`] devices read out
    /// through the TIA and a 12-bit ADC.
    #[must_use]
    pub fn noisy(rows: usize, cols: usize) -> Self {
        Self {
            readout: Readout::Adc { bits: 12 },
            noise: NoiseModel::paper_typical(),
            ..Self::ideal(rows, cols)
        }
    }

    /// Overrides the weight mapping.
    #[must_use]
    pub fn with_mapping(mut self, mapping: WeightMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Overrides the readout model.
    #[must_use]
    pub fn with_readout(mut self, readout: Readout) -> Self {
        self.readout = readout;
        self
    }

    /// Overrides the noise model.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Overrides the per-tick aging rate (see [`NoiseModel::drift_tick`]).
    #[must_use]
    pub fn with_drift_tick(mut self, tick: Time) -> Self {
        self.noise.drift_tick = tick;
        self
    }

    /// Overrides the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the thread count (0 = all cores, 1 = serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The signed weight-code bound `Q = 2^(bits−1) − 1` (31 for INT6).
    #[must_use]
    pub fn q(&self) -> i8 {
        ((1i16 << (self.weight_bits - 1)) - 1) as i8
    }

    /// The unsigned activation ceiling `2^bits − 1` (63 for INT6).
    #[must_use]
    pub fn v_max(&self) -> i64 {
        (1i64 << self.activation_bits) - 1
    }

    /// The PCM level-table code ceiling `2^weight_bits − 1`; unipolar
    /// weight codes are programmed as `u / table_max` of full scale so the
    /// level quantization is the identity on integer codes.
    #[must_use]
    pub fn table_max(&self) -> u16 {
        (1u16 << self.weight_bits) - 1
    }

    /// The PCM device the tiles are built from.
    ///
    /// The idealized cell is lossless when amorphous and has 320 dB
    /// extinction, which makes every level — including code 0 — exact to
    /// machine precision; the realistic cell is the paper's GST patch.
    #[must_use]
    pub fn device(&self) -> PcmCell {
        if self.noise.realistic_device {
            PcmCell::pristine()
        } else {
            PcmCell::pristine().with_loss_range(0.0, 320.0)
        }
    }
}

/// Derives the deterministic seed for one tile of one layer.
///
/// Every stochastic element of a tile (phase-error draw, PCM programming
/// variation) is seeded from this value, so per-tile execution is
/// reproducible and independent of scheduling order — the property that
/// makes parallel execution byte-identical to serial.
#[must_use]
pub fn tile_seed(base: u64, layer_index: usize, tile_index: usize) -> u64 {
    // SplitMix64-style mixing of the three coordinates.
    let mut z = base
        .wrapping_add((layer_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((tile_index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the deterministic seed for one WDM wavelength channel of a
/// tile.
///
/// A multi-channel tile shares one programmed PCM array — every channel
/// reads the same transmissions — but each wavelength sees its own
/// residual phase landscape, so channel `k > 0` draws its phase errors
/// from a distinct stream. Channel 0 is the identity: a single-channel
/// compile is bit-identical to the pre-WDM pipeline.
#[must_use]
pub fn channel_seed(base: u64, channel: usize) -> u64 {
    if channel == 0 {
        return base;
    }
    // SplitMix64-style mixing of the channel index into the tile seed.
    let mut z = base.wrapping_add((channel as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_preset_is_ideal() {
        let cfg = SimConfig::ideal(64, 64);
        assert!(cfg.noise.is_ideal());
        assert_eq!(cfg.readout, Readout::Exact);
        assert_eq!(cfg.table_max(), 63);
    }

    #[test]
    fn noisy_preset_turns_everything_on() {
        let cfg = SimConfig::noisy(64, 64);
        assert!(!cfg.noise.is_ideal());
        assert!(cfg.noise.realistic_device);
        assert_eq!(cfg.readout, Readout::Adc { bits: 12 });
    }

    #[test]
    fn ideal_device_levels_are_exact() {
        let cfg = SimConfig::ideal(8, 8);
        let device = cfg.device();
        assert!((device.max_transmission() - 1.0).abs() < 1e-12);
        assert!(device.min_transmission() < 1e-15);
    }

    #[test]
    fn tile_seeds_are_distinct_and_stable() {
        let a = tile_seed(42, 0, 0);
        assert_eq!(a, tile_seed(42, 0, 0));
        assert_ne!(a, tile_seed(42, 0, 1));
        assert_ne!(a, tile_seed(42, 1, 0));
        assert_ne!(a, tile_seed(43, 0, 0));
    }

    #[test]
    fn channel_zero_seed_is_the_identity() {
        for base in [0u64, 42, u64::MAX] {
            assert_eq!(channel_seed(base, 0), base);
        }
        let base = tile_seed(7, 2, 3);
        assert_ne!(channel_seed(base, 1), base);
        assert_ne!(channel_seed(base, 1), channel_seed(base, 2));
        assert_eq!(channel_seed(base, 1), channel_seed(base, 1));
    }
}
