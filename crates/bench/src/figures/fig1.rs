//! Fig. 1 — the AI/ML processor landscape (TOPS vs TOPS/W).

use crate::{fmt, write_csv};
use oxbar_core::landscape::{published_landscape, this_work_point, ProcessorClass, ProcessorPoint};
use oxbar_core::{Chip, ChipConfig};
use oxbar_nn::zoo::resnet50_v1_5;

/// Generates the landscape including this work's point.
#[must_use]
pub fn generate() -> Vec<ProcessorPoint> {
    let report = Chip::new(ChipConfig::paper_optimal()).evaluate(&resnet50_v1_5());
    let mut points = published_landscape();
    points.push(this_work_point(&report));
    points
}

fn class_name(class: ProcessorClass) -> &'static str {
    match class {
        ProcessorClass::Edge => "edge",
        ProcessorClass::Datacenter => "datacenter",
        ProcessorClass::Photonic => "photonic",
    }
}

/// Prints the series.
pub fn render(points: &[ProcessorPoint]) {
    println!("# Fig. 1 — AI/ML processor landscape (TOPS vs TOPS/W)");
    println!("{:38} {:>10} {:>10}  class", "processor", "TOPS", "TOPS/W");
    for p in points {
        println!(
            "{:38} {:>10.3} {:>10.2}  {}",
            p.name,
            p.tops,
            p.tops_per_watt,
            class_name(p.class)
        );
    }
}

/// Generates the series and writes `results/fig1_landscape.csv`.
pub fn run() -> Vec<ProcessorPoint> {
    let points = generate();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                fmt(p.tops, 3),
                fmt(p.tops_per_watt, 3),
                class_name(p.class).to_string(),
            ]
        })
        .collect();
    write_csv(
        "fig1_landscape",
        &["processor", "tops", "tops_per_watt", "class"],
        &rows,
    );
    points
}
