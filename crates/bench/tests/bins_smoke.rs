//! Smoke test: every bench binary's library entry point must run.
//!
//! The binaries are thin `render(&run())` wrappers over the
//! `figures::all()` registry, so driving the registry is equivalent to
//! launching every bin — without spawning processes.

use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn every_figure_entry_point_runs() {
    let mut failed = Vec::new();
    for (name, run) in oxbar_bench::figures::all() {
        if catch_unwind(AssertUnwindSafe(run)).is_err() {
            failed.push(name);
        }
    }
    assert!(failed.is_empty(), "entry points panicked: {failed:?}");
}

#[test]
fn registry_covers_every_figure_bin() {
    // One registry entry per figure/table binary (repro_all is the driver,
    // not an artifact itself).
    let names: Vec<&str> = oxbar_bench::figures::all()
        .iter()
        .map(|(n, _)| *n)
        .collect();
    assert_eq!(names.len(), 14);
    // No duplicates.
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), names.len());
}
