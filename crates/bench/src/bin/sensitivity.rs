//! Prints the technology-parameter sensitivity table.
fn main() {
    oxbar_bench::figures::sensitivity::run();
}
