//! INT6 weight-level quantization table.

use crate::cell::PcmCell;
use serde::{Deserialize, Serialize};

/// The 2^bits-level mapping between weight codes and field transmissions.
///
/// The paper maps all weights to `[0, 1]` over 64 levels (§IV). Levels are
/// uniform in *field amplitude* so the optical MAC stays linear in the
/// digital weight; level `k` targets transmission
/// `k / (2^bits − 1) × t_max`, where `t_max` is the amorphous-state
/// transmission of the device.
///
/// # Examples
///
/// ```
/// use oxbar_pcm::{LevelTable, PcmCell};
///
/// let table = LevelTable::int6(PcmCell::pristine());
/// assert_eq!(table.levels(), 64);
/// let w = table.transmission_for_code(32);
/// assert!((w / table.transmission_for_code(16) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelTable {
    bits: u8,
    device: PcmCell,
    /// Target field transmission per code; `transmissions[0] == 0` is
    /// approximated by the crystalline floor.
    transmissions: Vec<f64>,
    /// Crystalline fraction to program per code (`None` ⇒ clamp to floor).
    fractions: Vec<f64>,
}

impl LevelTable {
    /// Builds a table with `bits` of resolution for the given device.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 8`.
    #[must_use]
    pub fn new(bits: u8, device: PcmCell) -> Self {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8, got {bits}");
        let max_code = (1u16 << bits) - 1;
        let t_max = device.max_transmission();
        let t_min = device.min_transmission();
        let mut transmissions = Vec::with_capacity(usize::from(max_code) + 1);
        let mut fractions = Vec::with_capacity(usize::from(max_code) + 1);
        for code in 0..=max_code {
            let ideal = f64::from(code) / f64::from(max_code) * t_max;
            // The device cannot go fully dark; clamp code 0 to the floor.
            let target = ideal.max(t_min);
            transmissions.push(target);
            fractions.push(
                device
                    .fraction_for_transmission(target)
                    .expect("clamped target is always reachable"),
            );
        }
        Self {
            bits,
            device,
            transmissions,
            fractions,
        }
    }

    /// The paper's 6-bit table.
    #[must_use]
    pub fn int6(device: PcmCell) -> Self {
        Self::new(6, device)
    }

    /// Number of levels (`2^bits`).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.transmissions.len()
    }

    /// Resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The largest code.
    #[must_use]
    pub fn max_code(&self) -> u16 {
        (self.levels() - 1) as u16
    }

    /// Target field transmission for a code.
    ///
    /// # Panics
    ///
    /// Panics if the code is out of range.
    #[must_use]
    pub fn transmission_for_code(&self, code: u16) -> f64 {
        self.transmissions[usize::from(code)]
    }

    /// Crystalline fraction to program for a code.
    ///
    /// # Panics
    ///
    /// Panics if the code is out of range.
    #[must_use]
    pub fn fraction_for_code(&self, code: u16) -> f64 {
        self.fractions[usize::from(code)]
    }

    /// Nearest code for a desired weight `w ∈ [0, 1]` (fraction of
    /// full-scale transmission).
    ///
    /// # Panics
    ///
    /// Panics if `w` is outside `[0, 1]`.
    #[must_use]
    pub fn quantize_weight(&self, w: f64) -> u16 {
        assert!(
            (0.0..=1.0).contains(&w),
            "weight must be in [0, 1], got {w}"
        );
        (w * f64::from(self.max_code())).round() as u16
    }

    /// The weight value a code represents, in `[0, 1]`.
    #[must_use]
    pub fn dequantize_code(&self, code: u16) -> f64 {
        f64::from(code) / f64::from(self.max_code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int6_has_64_levels() {
        let t = LevelTable::int6(PcmCell::pristine());
        assert_eq!(t.levels(), 64);
        assert_eq!(t.max_code(), 63);
    }

    #[test]
    fn transmissions_strictly_increase_above_floor() {
        let t = LevelTable::int6(PcmCell::pristine());
        for code in 1..=63u16 {
            assert!(
                t.transmission_for_code(code) > t.transmission_for_code(code - 1)
                    || t.transmission_for_code(code - 1) == t.transmission_for_code(0),
                "code {code}"
            );
        }
    }

    #[test]
    fn fractions_monotone_decreasing() {
        let t = LevelTable::int6(PcmCell::pristine());
        for code in 1..=63u16 {
            assert!(t.fraction_for_code(code) <= t.fraction_for_code(code - 1));
        }
    }

    #[test]
    fn quantize_round_trips_exact_levels() {
        let t = LevelTable::int6(PcmCell::pristine());
        for code in [0u16, 1, 17, 42, 63] {
            assert_eq!(t.quantize_weight(t.dequantize_code(code)), code);
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let t = LevelTable::int6(PcmCell::pristine());
        let lsb = 1.0 / 63.0;
        for k in 0..200 {
            let w = k as f64 / 199.0;
            let err = (t.dequantize_code(t.quantize_weight(w)) - w).abs();
            assert!(err <= lsb / 2.0 + 1e-12);
        }
    }

    #[test]
    fn programmed_fraction_hits_target_transmission() {
        let device = PcmCell::pristine();
        let t = LevelTable::int6(device);
        for code in [1u16, 10, 35, 63] {
            let mut cell = device;
            cell.set_crystalline_fraction(t.fraction_for_code(code));
            assert!(
                (cell.transmission() - t.transmission_for_code(code)).abs() < 1e-12,
                "code {code}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "weight must be in [0, 1]")]
    fn out_of_range_weight_panics() {
        let _ = LevelTable::int6(PcmCell::pristine()).quantize_weight(-0.1);
    }
}
