//! Protocol robustness: nothing a client can put on the wire may panic
//! the server or wedge a session. Truncated prefixes, oversized frames,
//! malformed payloads, unknown models, inconsistent tensors, hostile
//! activation values, and mid-request disconnects all end in a wire
//! error or a clean close — and the server keeps serving afterwards.

use oxbar_nn::synthetic::{self, small_network};
use oxbar_serve::protocol::{
    self, Client, ClientError, ClientFrame, ErrorCode, FrameError, ServerFrame,
};
use oxbar_serve::{catalog, ServeConfig, ServeEngine, Server, ServerConfig};
use oxbar_sim::SimConfig;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// A small, fast server: two synthetic models on an ideal device.
fn start_server(config: ServerConfig) -> Server {
    let device = SimConfig::ideal(32, 16).with_threads(1);
    let mut engine = ServeEngine::new(ServeConfig::new(device));
    engine
        .admit(catalog::spec_from_network(small_network(11), 0x51))
        .expect("model admits");
    engine
        .admit(catalog::spec_from_network(small_network(23), 0x52))
        .expect("model admits");
    Server::start(engine, config).expect("server binds loopback")
}

fn connect(server: &Server) -> Client<TcpStream> {
    let stream = TcpStream::connect(server.addr()).expect("loopback connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    Client::connect(stream).expect("handshake")
}

fn infer_frame(client: &Client<TcpStream>, tag: u64, model: usize) -> ClientFrame {
    let m = &client.models()[model];
    let shape = oxbar_nn::TensorShape::new(m.input_h, m.input_w, m.input_c);
    ClientFrame::Infer {
        tag,
        model,
        arrival: 0,
        deadline: None,
        input: synthetic::activations(shape, 6, tag),
    }
}

/// Asserts the server still answers a fresh, well-formed session — the
/// "not wedged, not panicked" probe every robustness test ends with.
fn assert_still_serving(server: &Server) {
    let mut client = connect(server);
    let frame = infer_frame(&client, 7777, 0);
    client.send(&frame).expect("send");
    match client.wait_completion(7777).expect("completion") {
        ServerFrame::Completion { tag, .. } => assert_eq!(tag, 7777),
        other => panic!("expected a completion, got {other:?}"),
    }
}

#[test]
fn truncated_length_prefix_closes_cleanly() {
    let server = start_server(ServerConfig::default());
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        // Two bytes of a four-byte prefix, then a hard close.
        stream.write_all(&[0u8, 0]).expect("partial prefix");
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn truncated_payload_closes_cleanly() {
    let server = start_server(ServerConfig::default());
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        // A prefix promising 100 bytes, followed by only 3.
        stream
            .write_all(&u32::to_be_bytes(100))
            .expect("full prefix");
        stream.write_all(b"abc").expect("short payload");
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn oversized_frame_is_refused_and_session_closed() {
    let server = start_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    // Drain the greeting first so the next frame we read is the error.
    let hello: ServerFrame = protocol::read_message(&mut stream).expect("hello");
    assert!(matches!(hello, ServerFrame::Hello { .. }));
    // A length prefix far past MAX_FRAME_BYTES; no payload needed.
    stream
        .write_all(&u32::to_be_bytes(u32::MAX))
        .expect("hostile prefix");
    match protocol::read_message::<ServerFrame>(&mut stream).expect("error frame") {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("expected a framing error, got {other:?}"),
    }
    // After framing damage the server closes the session.
    assert_eq!(
        protocol::read_message::<ServerFrame>(&mut stream),
        Err(FrameError::Closed)
    );
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn malformed_json_draws_an_error_and_the_session_continues() {
    let server = start_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let hello: ServerFrame = protocol::read_message(&mut stream).expect("hello");
    let ServerFrame::Hello { models, .. } = hello else {
        panic!("expected Hello");
    };
    // A perfectly delimited frame of garbage.
    protocol::write_frame(&mut stream, b"{{{ not json").expect("garbage frame");
    match protocol::read_message::<ServerFrame>(&mut stream).expect("error frame") {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("expected a malformed-frame error, got {other:?}"),
    }
    // The frame boundary was intact, so the same session keeps working.
    let shape = oxbar_nn::TensorShape::new(models[0].input_h, models[0].input_w, models[0].input_c);
    let frame = ClientFrame::Infer {
        tag: 1,
        model: 0,
        arrival: 0,
        deadline: None,
        input: synthetic::activations(shape, 6, 1),
    };
    protocol::write_message(&mut stream, &frame).expect("valid infer");
    match protocol::read_message::<ServerFrame>(&mut stream).expect("completion") {
        ServerFrame::Completion { tag, .. } => assert_eq!(tag, 1),
        other => panic!("expected a completion, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_model_and_bad_tensors_are_wire_errors() {
    let server = start_server(ServerConfig::default());
    let mut client = connect(&server);

    // Unknown model id.
    let mut frame = infer_frame(&client, 1, 0);
    if let ClientFrame::Infer { model, .. } = &mut frame {
        *model = 99;
    }
    client.send(&frame).expect("send");
    match client.wait_completion(1).expect("reply") {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected unknown-model, got {other:?}"),
    }

    // Wrong input shape.
    let wrong_shape = ClientFrame::Infer {
        tag: 2,
        model: 0,
        arrival: 0,
        deadline: None,
        input: synthetic::activations(oxbar_nn::TensorShape::new(1, 1, 1), 6, 2),
    };
    client.send(&wrong_shape).expect("send");
    match client.wait_completion(2).expect("reply") {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::BadInput),
        other => panic!("expected bad-input, got {other:?}"),
    }

    // Activation values outside the device range (would overflow a debug
    // build if they ever reached execution).
    let mut hostile = infer_frame(&client, 3, 0);
    if let ClientFrame::Infer { input, .. } = &mut hostile {
        let shape = input.shape();
        let mut data = input.data().to_vec();
        data[0] = i64::MAX / 2;
        *input = oxbar_nn::reference::Tensor3::new(shape, data);
    }
    client.send(&hostile).expect("send");
    match client.wait_completion(3).expect("reply") {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::BadInput),
        other => panic!("expected bad-input, got {other:?}"),
    }

    // The session still serves after every rejection.
    let ok = infer_frame(&client, 4, 0);
    client.send(&ok).expect("send");
    assert!(matches!(
        client.wait_completion(4).expect("reply"),
        ServerFrame::Completion { .. }
    ));
    server.shutdown();
}

#[test]
fn internally_inconsistent_tensor_is_a_wire_error() {
    let server = start_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let hello: ServerFrame = protocol::read_message(&mut stream).expect("hello");
    let ServerFrame::Hello { models, .. } = hello else {
        panic!("expected Hello");
    };
    // Hand-crafted JSON: the declared shape matches the model, but the
    // data array is one element short — impossible to build in-process
    // (Tensor3::new validates), possible on the wire (derive-based
    // deserialization bypasses the constructor).
    let m = &models[0];
    let payload = format!(
        "{{\"Infer\":{{\"tag\":5,\"model\":0,\"arrival\":0,\"deadline\":null,\
         \"input\":{{\"shape\":{{\"h\":{},\"w\":{},\"c\":{}}},\"data\":[1]}}}}}}",
        m.input_h, m.input_w, m.input_c
    );
    protocol::write_frame(&mut stream, payload.as_bytes()).expect("crafted frame");
    match protocol::read_message::<ServerFrame>(&mut stream).expect("reply") {
        ServerFrame::Error { tag, code, .. } => {
            assert_eq!(tag, Some(5));
            assert_eq!(code, ErrorCode::BadInput);
        }
        other => panic!("expected bad-input, got {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn mid_request_disconnect_does_not_wedge_the_server() {
    let server = start_server(ServerConfig::default());
    {
        let mut client = connect(&server);
        let frame = infer_frame(&client, 1, 0);
        client.send(&frame).expect("send");
        // Drop the connection with the request in flight.
    }
    // The request still executes; its reply lands on a dead socket and
    // is dropped. New sessions are unaffected.
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn deep_queue_draws_backpressure() {
    // Capacity 1 and a long coalescing window: the second submission
    // must be refused while the first is still queued.
    let server = start_server(ServerConfig {
        coalesce: Duration::from_millis(400),
        queue_capacity: 1,
    });
    let mut client = connect(&server);
    let first = infer_frame(&client, 1, 0);
    client.send(&first).expect("send");
    let second = infer_frame(&client, 2, 0);
    client.send(&second).expect("send");
    match client.wait_completion(2).expect("reply") {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::Backpressure),
        other => panic!("expected backpressure, got {other:?}"),
    }
    // The first request still completes once the window elapses.
    assert!(matches!(
        client.wait_completion(1).expect("reply"),
        ServerFrame::Completion { .. }
    ));
    server.shutdown();
}

#[test]
fn goodbye_flushes_and_acknowledges() {
    let server = start_server(ServerConfig::default());
    let mut client = connect(&server);
    let frame = infer_frame(&client, 1, 0);
    client.send(&frame).expect("send");
    client.send(&ClientFrame::Goodbye).expect("send goodbye");
    // The completion must arrive before (or be buffered alongside) Bye.
    let mut saw_completion = false;
    let mut saw_bye = false;
    loop {
        match client.recv() {
            Ok(ServerFrame::Completion { tag, .. }) => {
                assert_eq!(tag, 1);
                saw_completion = true;
            }
            Ok(ServerFrame::Bye) => {
                saw_bye = true;
                break;
            }
            Ok(other) => panic!("unexpected frame {other:?}"),
            Err(ClientError::Frame(FrameError::Closed)) => break,
            Err(e) => panic!("wire error {e}"),
        }
    }
    assert!(saw_completion, "Goodbye must flush in-flight completions");
    assert!(saw_bye, "Goodbye is acknowledged with Bye");
    server.shutdown();
}
