//! End-to-end loopback serving: ≥ 8 concurrent connections with
//! scrambled arrival ticks, responses byte-identical to an in-process
//! engine fed the same trace, plus admission control and clean shutdown.

use oxbar_nn::reference::Tensor3;
use oxbar_nn::synthetic::{self, small_network};
use oxbar_serve::protocol::{Client, ClientFrame, ErrorCode, ServerFrame};
use oxbar_serve::request::request_seed;
use oxbar_serve::{
    catalog, BatchPolicy, FaultPlan, ModelId, ModelSpec, PlacementPolicy, ServeConfig, ServeEngine,
    Server, ServerConfig,
};
use oxbar_sim::SimConfig;
use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

const CONNECTIONS: usize = 8;
const WAVES: usize = 3;

fn device() -> SimConfig {
    SimConfig::ideal(32, 16).with_threads(1)
}

fn specs() -> Vec<ModelSpec> {
    vec![
        catalog::spec_from_network(small_network(41), 0x61),
        catalog::spec_from_network(small_network(57), 0x62),
    ]
}

fn engine() -> ServeEngine {
    let mut engine = ServeEngine::new(ServeConfig::new(device()));
    for spec in specs() {
        engine.admit(spec).expect("model admits");
    }
    engine
}

/// The deterministic cross-connection trace: connection `c`, wave `w`
/// submits `(model, input, arrival)` where arrivals are deliberately
/// *decreasing* in `w`, so the server sees out-of-order ticks from every
/// session.
fn trace_entry(shapes: &[oxbar_nn::TensorShape], c: usize, w: usize) -> (usize, Tensor3, u64) {
    let model = (c + w) % shapes.len();
    let seed = request_seed(0xE2E, (c * WAVES + w) as u64);
    let input = synthetic::activations(shapes[model], 6, seed);
    let arrival = (WAVES - w) as u64;
    (model, input, arrival)
}

#[test]
fn concurrent_connections_match_the_in_process_engine() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server starts");
    let addr = server.addr();
    let shapes: Vec<oxbar_nn::TensorShape> = specs().iter().map(|s| s.network.input()).collect();

    // 8 concurrent client threads, each its own connection, each
    // pipelining WAVES requests with scrambled arrival ticks.
    let handles: Vec<std::thread::JoinHandle<Vec<Tensor3>>> = (0..CONNECTIONS)
        .map(|c| {
            let shapes = shapes.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("timeout");
                let mut client = Client::connect(stream).expect("handshake");
                assert_eq!(client.models().len(), 2);
                for w in 0..WAVES {
                    let (model, input, arrival) = trace_entry(&shapes, c, w);
                    client
                        .send(&ClientFrame::Infer {
                            tag: w as u64,
                            model,
                            arrival,
                            deadline: None,
                            input,
                        })
                        .expect("send");
                }
                (0..WAVES)
                    .map(
                        |w| match client.wait_completion(w as u64).expect("completion") {
                            ServerFrame::Completion { tag, output, .. } => {
                                assert_eq!(tag, w as u64);
                                output
                            }
                            other => panic!("expected completion, got {other:?}"),
                        },
                    )
                    .collect()
            })
        })
        .collect();
    let mut served: Vec<Vec<Tensor3>> = Vec::new();
    for handle in handles {
        served.push(handle.join().expect("client thread"));
    }
    server.shutdown();

    // Oracle: the in-process engine fed the same trace. Outputs depend
    // only on the model's admission seed and the input — never on
    // batching or interleaving — so per-request comparison is exact
    // whatever order the network delivered them in. RequestId counts
    // submission order, so sorting completions by id maps completion
    // `c * WAVES + w` back to connection `c`, wave `w`.
    let mut oracle_engine = engine();
    for c in 0..CONNECTIONS {
        for w in 0..WAVES {
            let (model, input, arrival) = trace_entry(&shapes, c, w);
            oracle_engine
                .try_submit(oxbar_serve::InferRequest {
                    model: ModelId(model),
                    input,
                    arrival,
                    deadline: None,
                })
                .expect("oracle submits");
        }
    }
    let mut oracle_done = oracle_engine.drain();
    assert_eq!(oracle_done.len(), CONNECTIONS * WAVES);
    oracle_done.sort_by_key(|d| d.id);
    let by_submission: HashMap<(usize, usize), &Tensor3> = oracle_done
        .iter()
        .enumerate()
        .map(|(i, d)| ((i / WAVES, i % WAVES), &d.output))
        .collect();
    for (c, outputs) in served.iter().enumerate() {
        for (w, output) in outputs.iter().enumerate() {
            assert_eq!(
                by_submission[&(c, w)],
                output,
                "connection {c} wave {w} diverged from the in-process engine"
            );
        }
    }
}

#[test]
fn strict_admission_refuses_an_oversubscribed_model() {
    // A budget too small for the stock dense head: Admit must refuse.
    let device = device();
    let engine = ServeEngine::new(ServeConfig::new(device).with_cache_budget(1_000));
    let server = Server::start(engine, ServerConfig::default()).expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut client = Client::connect(stream).expect("handshake");
    assert!(client.models().is_empty(), "nothing resident at start");
    client
        .send(&ClientFrame::Admit {
            name: "alexnet_fc_sample".to_string(),
        })
        .expect("send");
    match client.recv().expect("reply") {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::AdmissionRefused),
        other => panic!("expected admission refusal, got {other:?}"),
    }
    // Unknown catalog names are their own error.
    client
        .send(&ClientFrame::Admit {
            name: "resnet152".to_string(),
        })
        .expect("send");
    match client.recv().expect("reply") {
        ServerFrame::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownCatalogName),
        other => panic!("expected unknown-catalog-name, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn admit_is_idempotent_and_enables_serving() {
    let engine = ServeEngine::new(ServeConfig::new(device()));
    let server = Server::start(engine, ServerConfig::default()).expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut client = Client::connect(stream).expect("handshake");
    client
        .send(&ClientFrame::Admit {
            name: "lenet5".to_string(),
        })
        .expect("send");
    let first = match client.recv().expect("reply") {
        ServerFrame::Admitted { model, name } => {
            assert_eq!(name, "lenet5");
            model
        }
        other => panic!("expected admission, got {other:?}"),
    };
    // Re-admitting the same name answers with the existing id.
    client
        .send(&ClientFrame::Admit {
            name: "lenet5".to_string(),
        })
        .expect("send");
    match client.recv().expect("reply") {
        ServerFrame::Admitted { model, .. } => assert_eq!(model, first),
        other => panic!("expected idempotent admission, got {other:?}"),
    }
    // And the admitted model serves.
    let input = synthetic::activations(oxbar_nn::zoo::lenet5().input(), 6, 3);
    client
        .send(&ClientFrame::Infer {
            tag: 1,
            model: first,
            arrival: 0,
            deadline: None,
            input,
        })
        .expect("send");
    assert!(matches!(
        client.wait_completion(1).expect("reply"),
        ServerFrame::Completion { .. }
    ));
    server.shutdown();
}

#[test]
fn stats_reflect_served_requests() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut client = Client::connect(stream).expect("handshake");
    let shape = specs()[0].network.input();
    client
        .send(&ClientFrame::Infer {
            tag: 1,
            model: 0,
            arrival: 0,
            deadline: None,
            input: synthetic::activations(shape, 6, 9),
        })
        .expect("send");
    assert!(matches!(
        client.wait_completion(1).expect("reply"),
        ServerFrame::Completion { .. }
    ));
    client.send(&ClientFrame::Stats).expect("send");
    match client.recv().expect("reply") {
        ServerFrame::Stats {
            requests, queued, ..
        } => {
            assert_eq!(requests, 1);
            assert_eq!(queued, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn goodbye_during_failover_flushes_completions_before_bye() {
    // Chip 1 of a replicated pair is dead from the first dispatch, so
    // every odd-seq batch is retried onto its surviving replica. A
    // client that pipelines requests and says Goodbye must still see
    // every completion before Bye — failover never strands a request —
    // and may observe the Degraded broadcast in between.
    let mut engine = ServeEngine::new(
        ServeConfig::new(device())
            .with_policy(BatchPolicy::new(1, 0))
            .with_chips(vec![200_000, 200_000])
            .with_placement(PlacementPolicy::Replicated(2))
            .with_faults(FaultPlan::new().kill_chip(0, 1)),
    );
    for spec in specs() {
        engine.admit(spec).expect("model admits");
    }
    let server = Server::start(engine, ServerConfig::default()).expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut client = Client::connect(stream).expect("handshake");
    let shape = specs()[0].network.input();
    for tag in 0..3u64 {
        client
            .send(&ClientFrame::Infer {
                tag,
                model: 0,
                arrival: tag,
                deadline: None,
                input: synthetic::activations(shape, 6, tag),
            })
            .expect("send");
    }
    client.send(&ClientFrame::Goodbye).expect("send goodbye");
    let mut completions = 0u64;
    loop {
        match client.recv() {
            Ok(ServerFrame::Completion { .. }) => completions += 1,
            Ok(ServerFrame::Degraded { chip, health }) => {
                assert_eq!((chip, health.as_str()), (1, "failed"));
            }
            Ok(ServerFrame::Bye) => break,
            Ok(other) => panic!("unexpected frame {other:?}"),
            Err(e) => panic!("wire error {e}"),
        }
    }
    assert_eq!(completions, 3, "failover must not strand a request");

    // A fresh session's Stats reflect the fault: one failed chip, and
    // the odd-seq retries that failed over to the survivor.
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut probe = Client::connect(stream).expect("handshake");
    probe.send(&ClientFrame::Stats).expect("send");
    match probe.recv().expect("reply") {
        ServerFrame::Stats {
            retries,
            failed_chips,
            sheds,
            ..
        } => {
            assert!(retries >= 1, "odd-seq batches retried, got {retries}");
            assert_eq!(failed_chips, 1);
            assert_eq!(sheds, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn shed_requests_answer_with_a_structured_frame_and_goodbye_completes() {
    // The only chip is dead from the first dispatch: the request cannot
    // be served anywhere, so the client must get a tag-addressed Shed
    // frame (not silence), and Goodbye must still drain to Bye instead
    // of wedging on the never-coming completion.
    let mut engine = ServeEngine::new(
        ServeConfig::new(device())
            .with_chips(vec![200_000])
            .with_faults(FaultPlan::new().kill_chip(0, 0)),
    );
    for spec in specs() {
        engine.admit(spec).expect("model admits");
    }
    let server = Server::start(engine, ServerConfig::default()).expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut client = Client::connect(stream).expect("handshake");
    let shape = specs()[0].network.input();
    client
        .send(&ClientFrame::Infer {
            tag: 1,
            model: 0,
            arrival: 0,
            deadline: None,
            input: synthetic::activations(shape, 6, 1),
        })
        .expect("send");
    match client.wait_completion(1).expect("reply") {
        ServerFrame::Shed { tag, detail } => {
            assert_eq!(tag, 1);
            assert!(
                detail.contains("no healthy chip"),
                "shed names its cause: {detail}"
            );
        }
        other => panic!("expected a shed notice, got {other:?}"),
    }
    client.send(&ClientFrame::Goodbye).expect("send goodbye");
    loop {
        match client.recv() {
            Ok(ServerFrame::Bye) => break,
            Ok(ServerFrame::Degraded { .. }) => {}
            Ok(other) => panic!("unexpected frame {other:?}"),
            Err(e) => panic!("wire error {e}"),
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_is_clean_with_live_connections() {
    let server = Server::start(engine(), ServerConfig::default()).expect("server starts");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let client = Client::connect(stream).expect("handshake");
    // Shut down with the session idle-open; must not hang or panic.
    server.shutdown();
    drop(client);
}
