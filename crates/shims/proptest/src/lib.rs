//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest the `oxbar` workspace uses:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! [`Strategy`] for numeric ranges, tuples of strategies, `.prop_map`,
//! [`collection::vec`], and [`ProptestConfig::with_cases`].
//!
//! Sampling is plain seeded uniform randomness (no shrinking, no edge-case
//! bias, no failure persistence): each test body runs `cases` times with
//! deterministically generated inputs, and a failed `prop_assert!` reports
//! the case number and message. That is weaker than real proptest at
//! *finding* bugs but identical at *checking* properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use rand::rngs::StdRng;
pub use rand::SeedableRng;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::random_range(rng, self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The items `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// The `prop` module alias (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs `cases` deterministic random cases of a test body.
///
/// This is the engine behind the [`proptest!`] macro; the body closure
/// returns `Err` when a `prop_assert!` fails.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Seed differs per test (by name) but is stable across runs.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(u64::from(case)));
        if let Err(e) = body(&mut rng) {
            panic!("proptest case {case}/{} failed: {e}", config.cases);
        }
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..) {..}`
/// block becomes a normal `#[test]` running [`ProptestConfig::cases`]
/// random cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(#[test] fn $name:ident (
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with source location and optional formatted message) instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!(),
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = u32> {
        (1u32..100).prop_map(|x| 2 * x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 1u8..=12, y in -5i32..5, f in 0.0..=1.0f64) {
            prop_assert!((1..=12).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn map_and_tuples(pair in (doubled(), 0u8..4)) {
            prop_assert_eq!(pair.0 % 2, 0);
            prop_assert!(pair.1 < 4);
        }

        #[test]
        fn vec_sizes(fixed in prop::collection::vec(0.0..=1.0f64, 7),
                     ranged in prop::collection::vec(-10i64..10, 1..5)) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((1..5).contains(&ranged.len()));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        crate::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| -> Result<(), crate::TestCaseError> {
                prop_assert!(false, "forced failure");
                Ok(())
            },
        );
    }
}
