//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every binary prints the paper-style rows/series to stdout and mirrors
//! them as CSV (and JSON where structured) under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device_mvm;
pub mod figures;
pub mod serve;

/// Safe hooks for a counting global allocator.
///
/// The `bench_serve` binary registers a [`std::alloc::GlobalAlloc`]
/// wrapper (the `unsafe impl` lives in the binary — this library forbids
/// unsafe code) that calls [`alloc_counter::record`] on every allocation;
/// [`crate::serve`] then reports the allocation count of a warm serving
/// round in `BENCH_serve.json`. When no counting allocator is installed
/// (library tests, other binaries) the counter stays inactive and the
/// report carries `null`.
pub mod alloc_counter {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    /// Counts one allocation (called from the binary's allocator shim).
    pub fn record() {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the counting allocator as installed.
    pub fn activate() {
        ACTIVE.store(true, Ordering::Relaxed);
    }

    /// Whether a counting allocator is installed.
    #[must_use]
    pub fn active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Allocations recorded so far.
    #[must_use]
    pub fn count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

use std::fs;
use std::path::{Path, PathBuf};

/// Resolves the workspace root, looking upward from the current directory
/// (falls back to the current directory outside the repo).
#[must_use]
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("current dir");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().expect("current dir");
        }
    }
}

/// Resolves the repository `results/` directory (creating it).
#[must_use]
pub fn results_dir() -> PathBuf {
    let results = workspace_root().join("results");
    fs::create_dir_all(&results).expect("create results dir");
    results
}

/// Writes CSV rows (first row = header) to `results/<name>.csv` and echoes
/// the path.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out).expect("write csv");
    println!("[written] {}", path.display());
    path
}

/// Serializes a JSON report to `results/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize");
    fs::write(&path, json).expect("write json");
    println!("[written] {}", path.display());
    path
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Formats a float with the given precision, for CSV cells.
#[must_use]
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Returns `path` as a displayable string (for logs).
#[must_use]
pub fn display_path(path: &Path) -> String {
    path.display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        let dir = results_dir();
        assert!(dir.is_dir());
        assert!(dir.ends_with("results"));
    }

    #[test]
    fn csv_round_trip() {
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let path = write_csv("test_csv_round_trip", &["a", "b"], &rows);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
