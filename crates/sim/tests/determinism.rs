//! Parallel tile execution must be byte-identical to serial execution,
//! in both ideal and noisy modes (fixed per-tile seeds, order-preserving
//! accumulation).

use oxbar_nn::synthetic;
use oxbar_nn::zoo::lenet5;
use oxbar_sim::{device_forward, run_inference, SimConfig};

#[test]
fn parallel_equals_serial_ideal_mode() {
    let net = lenet5();
    let input = synthetic::activations(net.input(), 6, 3);
    let filters = synthetic::filter_banks(&net, 6, 4);
    let serial = device_forward(
        &net,
        &SimConfig::ideal(128, 128).with_threads(1),
        &input,
        &filters,
    )
    .unwrap();
    for threads in [2, 4, 0] {
        let parallel = device_forward(
            &net,
            &SimConfig::ideal(128, 128).with_threads(threads),
            &input,
            &filters,
        )
        .unwrap();
        assert_eq!(parallel, serial, "threads={threads}");
    }
}

#[test]
fn parallel_equals_serial_noisy_mode() {
    // The harder case: every tile draws phase errors and PCM programming
    // variation from its own seeded stream, so scheduling must not leak
    // into the numerics.
    let net = lenet5();
    let images = vec![synthetic::activations(net.input(), 6, 13)];
    let filters = synthetic::filter_banks(&net, 6, 14);
    let serial = run_inference(
        &net,
        &SimConfig::noisy(128, 128).with_threads(1),
        &images,
        &filters,
    )
    .unwrap();
    let parallel = run_inference(
        &net,
        &SimConfig::noisy(128, 128).with_threads(0),
        &images,
        &filters,
    )
    .unwrap();
    assert_eq!(parallel, serial);
    // Byte-identical through serialization as well.
    let a = serde_json::to_string(&serial).unwrap();
    let b = serde_json::to_string(&parallel).unwrap();
    assert_eq!(a, b);
}

#[test]
fn repeated_runs_are_reproducible() {
    let net = lenet5();
    let images = vec![synthetic::activations(net.input(), 6, 21)];
    let filters = synthetic::filter_banks(&net, 6, 22);
    let cfg = SimConfig::noisy(64, 64).with_seed(5);
    let a = run_inference(&net, &cfg, &images, &filters).unwrap();
    let b = run_inference(&net, &cfg, &images, &filters).unwrap();
    assert_eq!(a, b);
    // A different base seed draws different noise.
    let c = run_inference(&net, &cfg.clone().with_seed(6), &images, &filters).unwrap();
    assert_ne!(a, c);
}
