//! Compute-fidelity analysis: how PCM programming variation, phase errors,
//! and ADC resolution erode the crossbar's effective precision.
//!
//! The paper assumes INT6 end to end and notes that "precision and process
//! variation are major factors in all analog-based computers" (§I); this
//! module quantifies that statement for the proposed architecture with
//! seeded Monte-Carlo over the field-level simulator.

use oxbar_electronics::UnsignedQuantizer;
use oxbar_pcm::variation::DeviceVariation;
use oxbar_pcm::{LevelTable, PcmCell};
use oxbar_photonics::crossbar::{CrossbarConfig, CrossbarSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The non-idealities applied in one fidelity experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityKnobs {
    /// PCM cycle-to-cycle programming sigma (crystalline-fraction units).
    pub pcm_sigma: f64,
    /// Per-cell phase-error sigma (radians).
    pub phase_sigma_rad: f64,
    /// Thermal-trimmer quantization step (radians); 0 disables trimming.
    pub trim_resolution_rad: f64,
    /// ADC resolution digitizing the column output.
    pub adc_bits: u8,
    /// Whether component losses (and their compensation) are modeled.
    pub with_losses: bool,
}

impl Default for FidelityKnobs {
    fn default() -> Self {
        Self {
            pcm_sigma: 0.0,
            phase_sigma_rad: 0.0,
            trim_resolution_rad: 0.01,
            adc_bits: 12,
            with_losses: false,
        }
    }
}

/// Result of one Monte-Carlo fidelity run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Array rows used.
    pub rows: usize,
    /// Array columns used.
    pub cols: usize,
    /// Trials × columns MAC samples evaluated.
    pub samples: usize,
    /// RMS error of the normalized MAC (full scale 1.0).
    pub rms_error: f64,
    /// Worst absolute error observed.
    pub max_error: f64,
    /// Effective bits: `log2(full_scale / (rms_error·√12))`, the uniform-
    /// quantization equivalent of the observed noise.
    pub effective_bits: f64,
}

/// Runs a seeded Monte-Carlo fidelity experiment on an `rows × cols`
/// crossbar.
///
/// Each trial draws uniform inputs and signed-uniform weights, applies the
/// PCM level table (with programming variation), propagates fields with
/// the configured phase errors/losses, digitizes with the ADC, and
/// compares against the exact normalized MAC `Σ v·w / rows`.
///
/// # Examples
///
/// ```
/// use oxbar_core::fidelity::{run_fidelity, FidelityKnobs};
///
/// let clean = run_fidelity(32, 8, 10, 1, &FidelityKnobs::default());
/// assert!(clean.effective_bits > 6.0);
/// ```
#[must_use]
pub fn run_fidelity(
    rows: usize,
    cols: usize,
    trials: usize,
    seed: u64,
    knobs: &FidelityKnobs,
) -> FidelityReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let table = LevelTable::int6(PcmCell::pristine());
    let t_max = PcmCell::pristine().max_transmission();
    let variation = DeviceVariation::new(knobs.pcm_sigma, 0.0);
    let adc = UnsignedQuantizer::new(knobs.adc_bits, 1.0).expect("valid ADC");

    let mut config = CrossbarConfig::new(rows, cols)
        .with_phase_error_sigma(knobs.phase_sigma_rad)
        .with_phase_error_seed(seed.wrapping_mul(31).wrapping_add(7))
        .with_trim_resolution(knobs.trim_resolution_rad);
    if knobs.with_losses {
        config = config.with_losses(true).with_path_loss_compensation(true);
    }
    let sim = CrossbarSimulator::new(config);

    let mut se = 0.0f64;
    let mut max_error = 0.0f64;
    let mut samples = 0usize;
    for _ in 0..trials {
        let inputs: Vec<f64> = (0..rows).map(|_| rng.random()).collect();
        // Ideal weights in [0, 1] and their physically-programmed versions.
        let ideal: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.random()).collect())
            .collect();
        let programmed: Vec<Vec<f64>> = ideal
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&w| {
                        let code = table.quantize_weight(w);
                        let target = table.fraction_for_code(code);
                        let achieved = variation.apply_program(target, 0.0, &mut rng);
                        let mut cell = PcmCell::pristine();
                        cell.set_crystalline_fraction(achieved);
                        (cell.transmission() / t_max).min(1.0)
                    })
                    .collect()
            })
            .collect();
        let ys = sim.run_normalized(&inputs, &programmed);
        for (j, y) in ys.iter().enumerate() {
            let digitized = adc.reconstruct(y.clamp(0.0, 1.0));
            let exact: f64 = (0..rows).map(|i| inputs[i] * ideal[i][j]).sum::<f64>() / rows as f64;
            let err = (digitized - exact).abs();
            se += err * err;
            max_error = max_error.max(err);
            samples += 1;
        }
    }
    let rms_error = (se / samples as f64).sqrt();
    let effective_bits = if rms_error > 0.0 {
        (1.0 / (rms_error * 12f64.sqrt())).log2()
    } else {
        f64::from(knobs.adc_bits)
    };
    FidelityReport {
        rows,
        cols,
        samples,
        rms_error,
        max_error,
        effective_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIALS: usize = 6;

    #[test]
    fn ideal_stack_reaches_int6_precision() {
        let report = run_fidelity(64, 8, TRIALS, 1, &FidelityKnobs::default());
        assert!(
            report.effective_bits >= 6.0,
            "effective bits {}",
            report.effective_bits
        );
    }

    #[test]
    fn pcm_variation_costs_bits() {
        let clean = run_fidelity(32, 8, TRIALS, 2, &FidelityKnobs::default());
        let noisy = run_fidelity(
            32,
            8,
            TRIALS,
            2,
            &FidelityKnobs {
                pcm_sigma: 0.02,
                ..FidelityKnobs::default()
            },
        );
        assert!(noisy.rms_error > clean.rms_error);
        assert!(noisy.effective_bits < clean.effective_bits);
    }

    #[test]
    fn trimming_restores_phase_error_loss() {
        let untrimmed = run_fidelity(
            32,
            8,
            TRIALS,
            3,
            &FidelityKnobs {
                phase_sigma_rad: 0.1,
                trim_resolution_rad: 0.0,
                ..FidelityKnobs::default()
            },
        );
        let trimmed = run_fidelity(
            32,
            8,
            TRIALS,
            3,
            &FidelityKnobs {
                phase_sigma_rad: 0.1,
                trim_resolution_rad: 0.01,
                ..FidelityKnobs::default()
            },
        );
        assert!(
            trimmed.effective_bits > untrimmed.effective_bits,
            "trimmed {} vs untrimmed {}",
            trimmed.effective_bits,
            untrimmed.effective_bits
        );
    }

    #[test]
    fn adc_resolution_bounds_precision() {
        let coarse = run_fidelity(
            32,
            8,
            TRIALS,
            4,
            &FidelityKnobs {
                adc_bits: 6,
                ..FidelityKnobs::default()
            },
        );
        let fine = run_fidelity(
            32,
            8,
            TRIALS,
            4,
            &FidelityKnobs {
                adc_bits: 12,
                ..FidelityKnobs::default()
            },
        );
        assert!(coarse.rms_error > fine.rms_error);
        // A 6-bit ADC cannot deliver more than ~6 effective bits.
        assert!(coarse.effective_bits <= 6.5);
    }

    #[test]
    fn compensated_losses_cost_little() {
        let lossless = run_fidelity(32, 8, TRIALS, 5, &FidelityKnobs::default());
        let lossy = run_fidelity(
            32,
            8,
            TRIALS,
            5,
            &FidelityKnobs {
                with_losses: true,
                ..FidelityKnobs::default()
            },
        );
        assert!(
            (lossless.effective_bits - lossy.effective_bits).abs() < 1.0,
            "lossless {} vs lossy-compensated {}",
            lossless.effective_bits,
            lossy.effective_bits
        );
    }

    #[test]
    fn reproducible_with_seed() {
        let knobs = FidelityKnobs {
            pcm_sigma: 0.01,
            phase_sigma_rad: 0.05,
            ..FidelityKnobs::default()
        };
        let a = run_fidelity(16, 4, 3, 9, &knobs);
        let b = run_fidelity(16, 4, 3, 9, &knobs);
        assert_eq!(a, b);
    }
}
