//! Cross-model consistency: the analytic engine, the cycle-level replay,
//! and the power/perf accounting must agree with each other.

use oxbar::dataflow::cycle::{CorePolicy, CycleSimulator};
use oxbar::nn::zoo::{all_networks, resnet50_v1_5};
use oxbar::prelude::*;
use proptest::prelude::*;

#[test]
fn analytic_and_cycle_compute_cycles_agree_across_zoo() {
    for net in all_networks() {
        let spec = DataflowEngine::paper_default(128, 128, 8).analyze(&net);
        let report = CycleSimulator::new(1000).run(&spec, CorePolicy::SingleCore);
        assert_eq!(
            report.compute_cycles,
            spec.total_compute_cycles,
            "{}",
            net.name()
        );
        // Single-core closed form: compute + folds × bubble.
        assert_eq!(
            report.total_cycles,
            spec.total_compute_cycles + spec.total_program_events * 1000,
            "{}",
            net.name()
        );
    }
}

#[test]
fn power_equals_energy_over_time_everywhere() {
    use oxbar::core::perf::PerfModel;
    use oxbar::core::power::PowerModel;
    let net = resnet50_v1_5();
    for batch in [1usize, 16, 64] {
        let cfg = ChipConfig::paper_optimal().with_batch(batch);
        let perf = PerfModel::new(cfg.clone()).evaluate(&net);
        let model = PowerModel::new(cfg);
        let energy = model.evaluate(&perf).total();
        let power = model.average_power(&perf);
        let reconstructed = energy.as_joules() / perf.batch_time.as_seconds();
        assert!(
            (power.as_watts() - reconstructed).abs() / reconstructed < 1e-12,
            "batch {batch}"
        );
    }
}

#[test]
fn utilization_macs_cycles_triangle() {
    // total_macs = utilization × cycles × N × M must hold by definition.
    let spec = DataflowEngine::paper_default(128, 128, 32).analyze(&resnet50_v1_5());
    let reconstructed =
        spec.average_utilization() * spec.total_compute_cycles as f64 * 128.0 * 128.0;
    let relative = (reconstructed - spec.total_macs as f64).abs() / spec.total_macs as f64;
    assert!(relative < 1e-12);
}

#[test]
fn macs_invariant_across_array_sizes() {
    // Folding changes cycles, never the algorithmic work.
    let net = resnet50_v1_5();
    let m32 = DataflowEngine::paper_default(32, 32, 4)
        .analyze(&net)
        .total_macs;
    let m128 = DataflowEngine::paper_default(128, 128, 4)
        .analyze(&net)
        .total_macs;
    let m512 = DataflowEngine::paper_default(512, 256, 4)
        .analyze(&net)
        .total_macs;
    assert_eq!(m32, m128);
    assert_eq!(m128, m512);
    assert_eq!(m128, net.total_macs() * 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dual_never_slower_and_ipsw_invariant(
        batch in 1usize..64,
        rows_exp in 5u32..9,
        cols_exp in 5u32..8,
    ) {
        use oxbar::core::perf::PerfModel;
        use oxbar::core::power::PowerModel;
        let net = oxbar::nn::zoo::lenet5();
        let rows = 1usize << rows_exp;
        let cols = 1usize << cols_exp;
        let mut ipsw = Vec::new();
        let mut ips = Vec::new();
        for cores in [CoreCount::Single, CoreCount::Dual] {
            let cfg = ChipConfig::paper_optimal()
                .with_array(rows, cols)
                .with_batch(batch)
                .with_cores(cores);
            let perf = PerfModel::new(cfg.clone()).evaluate(&net);
            let energy = PowerModel::new(cfg).evaluate(&perf).total();
            ips.push(perf.ips);
            ipsw.push(batch as f64 / energy.as_joules());
        }
        prop_assert!(ips[1] >= ips[0] * (1.0 - 1e-9));
        prop_assert!((ipsw[0] - ipsw[1]).abs() / ipsw[0] < 1e-9);
    }

    #[test]
    fn cycles_bounded_below_by_ideal(batch in 1usize..16) {
        let net = oxbar::nn::zoo::resnet18();
        let spec = DataflowEngine::paper_default(128, 128, batch).analyze(&net);
        let ideal = (net.total_macs() * batch as u64) as f64 / (128.0 * 128.0);
        prop_assert!(spec.total_compute_cycles as f64 >= ideal);
    }

    #[test]
    fn traffic_nonnegative_and_additive(batch in 1usize..32) {
        let net = oxbar::nn::zoo::alexnet();
        let spec = DataflowEngine::paper_default(128, 128, batch).analyze(&net);
        let mut acc = 0.0;
        for layer in &spec.layers {
            prop_assert!(layer.traffic.dram_reads >= 0.0);
            prop_assert!(layer.traffic.sram_total().as_bits() >= 0.0);
            acc += layer.traffic.dram_reads;
        }
        prop_assert!((acc - spec.traffic.dram_reads).abs() < 1e-6);
    }
}
