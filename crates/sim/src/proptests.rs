//! Cross-crate property test: for random small networks, the ideal-mode
//! device pipeline (PCM → photonics → readout) equals the exact integer
//! reference executor, exactly.

use crate::{run_inference, SimConfig};
use oxbar_nn::mapping::WeightMapping;
use oxbar_nn::reference::Executor;
use oxbar_nn::synthetic::{self, small_network};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn ideal_pipeline_equals_reference_on_random_networks(seed in 0u64..10_000) {
        let net = small_network(seed);
        let input = synthetic::activations(net.input(), 6, seed ^ 0x55);
        let filters = synthetic::filter_banks(&net, 6, seed ^ 0xAA);

        // Vary the physical configuration with the seed too: array size
        // (forcing different fold counts) and both weight mappings.
        let rows = [16, 32, 64][(seed % 3) as usize];
        let cols = [8, 16, 32][((seed / 3) % 3) as usize];
        let mapping = if seed % 2 == 0 {
            WeightMapping::Offset
        } else {
            WeightMapping::Differential
        };
        let config = SimConfig::ideal(rows, cols)
            .with_mapping(mapping)
            .with_seed(seed);

        let (ref_out, _) = Executor::new(6)
            .forward(&net, &input, &filters)
            .expect("small networks are sequential");
        let report = run_inference(&net, &config, std::slice::from_ref(&input), &filters)
            .expect("small networks are sequential");
        prop_assert!(
            report.exact,
            "seed {} ({}x{} {:?}): {:?}",
            seed,
            rows,
            cols,
            mapping,
            report
        );
        prop_assert_eq!(report.output_max_abs_delta, 0);

        // And the device forward output itself is the reference tensor.
        let fwd = crate::device_forward(&net, &config, &input, &filters).unwrap();
        prop_assert_eq!(fwd.output, ref_out);
    }
}
