//! Design-space exploration: sweep array geometries, extract the Pareto
//! front, and run the paper's §VI.B optimization flow.
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use oxbar::core::dse::{array_grid, pareto_front, sweep};
use oxbar::core::optimizer::{optimize, OptimizerSettings};
use oxbar::nn::zoo::resnet50_v1_5;

fn main() {
    let network = resnet50_v1_5();

    // Fig. 6-style grid sweep.
    let rows = [32usize, 64, 128, 256, 512];
    let cols = [32usize, 64, 128, 256];
    let points = sweep(&network, array_grid(&rows, &cols));

    println!("evaluated {} design points", points.len());
    println!(
        "{:>6} {:>6} {:>10} {:>9} {:>9} {:>9}",
        "rows", "cols", "IPS", "IPS/W", "power[W]", "area[mm²]"
    );
    for p in &points {
        println!(
            "{:>6} {:>6} {:>10.0} {:>9.0} {:>9.2} {:>9.1}",
            p.rows, p.cols, p.ips, p.ips_per_watt, p.power_w, p.area_mm2
        );
    }

    let front = pareto_front(&points);
    println!(
        "\nPareto front (maximize IPS and IPS/W): {} points",
        front.len()
    );
    for p in &front {
        println!(
            "  {:>3}x{:<3}  IPS {:>8.0}  IPS/W {:>6.0}",
            p.rows, p.cols, p.ips, p.ips_per_watt
        );
    }

    // The paper's three-step flow.
    let result = optimize(&network, &OptimizerSettings::default());
    println!("\noptimization flow outcome:");
    println!(
        "  batch {}  input SRAM {:.1} MB  array {}x{}",
        result.batch,
        result.input_sram.as_megabytes(),
        result.array.0,
        result.array.1
    );
    println!(
        "  -> {:.0} IPS at {:.0} IPS/W, {:.1} mm²",
        result.report.ips,
        result.report.ips_per_watt,
        result.report.area.total().as_square_millimeters()
    );
}
