//! Regenerates Fig. 7a (chip power and DRAM energy vs batch size).
use oxbar_bench::figures::fig7;
fn main() {
    fig7::render_7a(&fig7::run_7a());
}
