//! **Batched multi-model inference serving** for the `oxbar` coherent
//! optical crossbar — the engine layer above the device-level simulator.
//!
//! [`oxbar_sim::DeviceExecutor`] runs one network on one image,
//! synchronously. Real photonic-accelerator deployments are *serving*
//! systems: many concurrent requests against several resident models,
//! with the non-volatile PCM crossbars acting as a weight-stationary
//! cache — programming a tile is expensive, reusing it is nearly free.
//! This crate builds that layer:
//!
//! ```text
//! clients        InferRequest { model, input, arrival, deadline }
//!    │                    │ submit()
//! ServeEngine    submission queue (tick-ordered)
//!    │                    │ drain()
//! batcher        form_batches(): same-model coalescing, size + window caps
//!    │                    │
//! scheduler      route_rounds(): chip-aware rounds, order-preserving
//!    │           parallel_map dispatch + pipelined per-chip prewarm
//!    │                    │
//! cluster        model→chip placement, per-chip cell budgets (LRU model
//!    │           eviction; snapshot migration before evicting); a 1-chip
//!    │           cluster IS the classic single-registry engine
//!    │                    │
//! oxbar-sim      device-level forward per request (PCM → photonics → ADC)
//!    └──────────▶ Completion { output, batch_seq, batch_size }
//! ```
//!
//! # Determinism
//!
//! The engine is deterministic end to end: time is abstract ticks, every
//! stochastic quantity hangs off a stable key (model admission seeds for
//! device noise, [`request::request_seed`] for trace synthesis), and
//! caching/eviction/batching change only *work*, never results. A
//! concurrent drain with any worker count and batch policy is
//! byte-identical to a serial one-request-at-a-time replay — including
//! under [`SimConfig::noisy`] device physics. `tests/determinism.rs` and
//! the proptest in `tests/oracle.rs` pin this down.
//!
//! # Examples
//!
//! Serve a two-model mix and inspect the weight-stationary behavior:
//!
//! ```
//! use oxbar_serve::loadgen::{MixEntry, OpenLoop};
//! use oxbar_serve::{catalog, ServeConfig, ServeEngine};
//! use oxbar_sim::SimConfig;
//!
//! let mut engine = ServeEngine::new(ServeConfig::new(SimConfig::ideal(64, 64)));
//! let lenet = engine.admit(catalog::lenet5_model()).unwrap();
//! let mobile = engine.admit(catalog::mobilenet_sample()).unwrap();
//!
//! let load = OpenLoop {
//!     mix: vec![
//!         MixEntry { model: lenet, weight: 1 },
//!         MixEntry { model: mobile, weight: 1 },
//!     ],
//!     requests: 8,
//!     interarrival: 1,
//!     seed: 7,
//!     deadline_slack: None,
//! };
//! for request in load.trace(|m| engine.input_shape(m)) {
//!     engine.submit(request);
//! }
//! let completions = engine.drain();
//! assert_eq!(completions.len(), 8);
//!
//! let stats = engine.stats();
//! assert_eq!(stats.requests, 8);
//! assert!(stats.mean_batch_size() > 1.0, "same-model requests coalesced");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod catalog;
pub mod cluster;
pub mod engine;
pub mod loadgen;
pub mod protocol;
pub mod registry;
pub mod request;
pub mod server;
mod session;

pub use batcher::{form_batches, route_rounds, Batch, BatchPolicy};
pub use cluster::{ChipHealth, ChipId, ChipRegistry, ChipStats, Cluster, PlacementPolicy};
pub use engine::{
    DrainTrace, EngineStats, ServeConfig, ServeEngine, ShedNotice, SubmitError, MAX_SEQUENCE_STEPS,
};
pub use loadgen::{ClosedLoop, LatencySummary, MixEntry, OpenLoop};
pub use protocol::{
    Client, ClientError, ClientFrame, DeadlineStream, ErrorCode, FrameError, ServerFrame,
    WireModel, WireToken,
};
pub use registry::{AdmitError, ModelCacheStats, ModelRegistry, ModelSpec};
pub use request::{Completion, InferRequest, ModelId, RequestId, SequenceId, TokenCompletion};
pub use server::{Server, ServerConfig};

// Re-exported so doctests and downstream callers can name the device
// configuration and fault plans without importing `oxbar-sim`
// separately.
pub use oxbar_sim::{ExecError, FaultEvent, FaultPlan, SimConfig};
