//! Batched multi-model serving quickstart: admit the stock catalog,
//! replay an open-loop trace, and read the weight-stationary cache
//! behavior off the engine stats.
//!
//! Run with: `cargo run --release --example serving`

use oxbar::serve::loadgen::{MixEntry, OpenLoop};
use oxbar::serve::{catalog, BatchPolicy, ServeConfig, ServeEngine};
use oxbar::sim::SimConfig;

fn main() {
    // A batched engine over the noisy device model: up to 8 requests per
    // batch, coalesced within a 4-tick arrival window, all models sharing
    // a 4M-cell weight-stationary budget.
    let device = SimConfig::noisy(128, 128).with_threads(1);
    let mut engine = ServeEngine::new(
        ServeConfig::new(device)
            .with_policy(BatchPolicy::new(8, 4))
            .with_cache_budget(4_000_000),
    );

    // Admit LeNet-5 plus the sampled AlexNet/VGG/MobileNet layer models.
    let models: Vec<_> = catalog::stock_catalog()
        .into_iter()
        .map(|spec| {
            let name = spec.name.clone();
            (engine.admit(spec).expect("catalog admits"), name)
        })
        .collect();

    // An open-loop trace: 32 requests, one arrival per tick, equal mix.
    let load = OpenLoop {
        mix: models
            .iter()
            .map(|&(model, _)| MixEntry { model, weight: 1 })
            .collect(),
        requests: 32,
        interarrival: 1,
        seed: 7,
        deadline_slack: Some(64),
    };
    for request in load.trace(|m| engine.input_shape(m)) {
        engine.submit(request);
    }

    let completions = engine.drain();
    println!("served {} requests", completions.len());
    for (model, name) in &models {
        let count = completions.iter().filter(|c| c.model == *model).count();
        println!("  {name:<24} {count:>3} requests");
    }

    let stats = engine.stats();
    println!(
        "batches: {} (mean size {:.1}), tile-cache hit rate {:.0}%, \
         occupancy {} / {} cells, evictions {}",
        stats.batches,
        stats.mean_batch_size(),
        stats.hit_rate() * 100.0,
        stats.occupancy_cells,
        stats.budget_cells,
        stats.evictions,
    );
}
