//! Compiled transfer-matrix fast path for the crossbar MVM (Eq. (1)).
//!
//! Once a tile is programmed, the crossbar is a *fixed linear operator*:
//! every per-cell element the field walk applies — splitter, coupler taps,
//! crossing/waveguide losses, PCM transmission, path-loss compensation,
//! residual trimmed phase, bus pickup phase — is input-independent, so the
//! whole walk collapses into one complex gain per cell. This module
//! precomputes that gain matrix from a [`CrossbarSimulator`] and replays
//! inference as a dense (batched) matrix–vector product, which is what
//! turns the device-level pipeline's dominant `O(pixels × N × M)` field-ops
//! cost into one `O(N × M)` compile per tile plus a dense MVM per pixel.
//!
//! # Gain factorization
//!
//! Follow one unit of row drive `v_in[i] = 1` through
//! [`CrossbarSimulator::run`]. With `t = √(1−κ)` and `k = √κ` the field
//! amplitudes of each directional coupler, `c`/`s` the per-crossing and
//! per-cell-pitch attenuation factors, `w̃[i][j]` the effective
//! (compensation-boosted) PCM transmission, and `φ[i][j]` the residual
//! trimmed phase, the cell `(i, j)` tap is reached via
//!
//! ```text
//! row side:    (1/√N) · Π_{l<j} (t_in[l]·c·s) · (j·k_in[j])
//! cell:        w̃[i][j] · s · e^{jφ[i][j]}
//! column side: (j·k_out[i]) · Π_{l>i} (t_out[l]·c·s)
//! ```
//!
//! Multiplying the three factors (the two coupler `j`s contribute the 180°
//! propagation phase of Eq. (1)) gives the per-cell gain
//!
//! ```text
//! G[i][j] = −(1/√N) · A[j] · B[i] · w̃[i][j] · e^{jφ[i][j]}
//!   A[j]  = Π_{l<j} (t_in[l]·c·s) · k_in[j] · s
//!   B[i]  = k_out[i] · Π_{l>i} (t_out[l]·c·s)
//! ```
//!
//! and the column output of Eq. (1) is the linear combination
//! `E_c[j] = Σ_i G[i][j] · v_in[i]` — for the equalizing coupling plan in
//! the lossless case `A[j]·B[i] = 1/√(NM)`, which recovers the paper's
//! `E_c[j] = (1/(N√M)) Σ_i v[i]·w[i][j]` exactly.
//!
//! When every residual phase is zero (ideal, lossy, or fully trimmed
//! configurations) the gains are purely real and the MVM runs on `f64`
//! accumulators; otherwise gains and accumulators are complex.
//!
//! # Examples
//!
//! ```
//! use oxbar_photonics::crossbar::{CrossbarConfig, CrossbarSimulator};
//! use oxbar_photonics::transfer::CompiledCrossbar;
//!
//! let sim = CrossbarSimulator::new(CrossbarConfig::new(8, 4).with_losses(true));
//! let weights = vec![vec![0.5; 4]; 8];
//! let compiled = CompiledCrossbar::new(&sim, &weights);
//! let inputs = vec![0.25; 8];
//! let walk = sim.run(&inputs, &weights);
//! let fast = compiled.mvm(&inputs);
//! for (a, b) in walk.iter().zip(&fast) {
//!     assert!((a.envelope().re - b.envelope().re).abs() < 1e-12);
//!     assert!((a.envelope().im - b.envelope().im).abs() < 1e-12);
//! }
//! ```

use crate::crossbar::CrossbarSimulator;
use crate::{Complex, Field};

/// The precompiled per-cell gain matrix of a programmed crossbar tile.
///
/// Plain immutable data (`Send + Sync`), so executors can compile once
/// and share the operator across worker threads and forward passes.
///
/// See the [module docs](self) for the derivation and an example.
#[derive(Debug, Clone)]
pub struct CompiledCrossbar {
    rows: usize,
    cols: usize,
    gains: Gains,
    /// `√M`, the prefactor `run_normalized` multiplies amplitudes by.
    sqrt_cols: f64,
    /// The compensation divisor of `run_normalized` (worst-path
    /// attenuation when compensated losses are on, else 1).
    norm_scale: f64,
}

/// Row-major per-cell gains (`gain[i * cols + j]`).
#[derive(Debug, Clone)]
enum Gains {
    /// Every residual phase is zero: gains lie on the real axis, exactly
    /// like the field walk's outputs, so the MVM runs on `f64`.
    Real(Vec<f64>),
    /// At least one non-zero residual phase. Stored as separate re/im
    /// planes (structure-of-arrays): a drive vector is real, so the
    /// complex MVM is two independent real accumulations that vectorize
    /// like the real path, joined by one magnitude pass at the end.
    Complex {
        /// Real parts, `gain[i * cols + j].re`.
        re: Vec<f64>,
        /// Imaginary parts, `gain[i * cols + j].im`.
        im: Vec<f64>,
    },
}

/// Reusable accumulator storage for [`CompiledCrossbar::run_normalized_batch_with`].
///
/// The complex-gain kernel needs `8 × cols` scratch lanes (four blocked
/// windows × re/im planes); holding them in a caller-owned pool makes a
/// warm batched MVM allocation-free. The buffer grows to the largest tile
/// it has served and is reused verbatim afterwards.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    acc: Vec<f64>,
}

impl CompiledCrossbar {
    /// Compiles the transfer matrix of `sim` for one programmed weight
    /// (transmission) matrix.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not match the array dimensions or any
    /// value is outside `[0, 1]` — the same contract as
    /// [`CrossbarSimulator::run`].
    #[must_use]
    pub fn new(sim: &CrossbarSimulator, weights: &[Vec<f64>]) -> Self {
        let (n, m) = (sim.config().rows(), sim.config().cols());
        assert_eq!(weights.len(), n, "expected {n} weight rows");
        for (i, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), m, "weight row {i} must have {m} columns");
        }
        assert!(
            weights.iter().flatten().all(|w| (0.0..=1.0).contains(w)),
            "weights must lie in [0, 1]"
        );

        let (crossing, segment) = sim.unit_loss_factors();
        let plan = sim.plan();

        // A[j]: splitter share + input-coupler cascade + routing losses up
        // to the tap, + the tapped light's own cell pitch of routing.
        let mut col_tap = vec![0.0; m];
        let mut prefix = 1.0 / (n as f64).sqrt();
        for (j, tap) in col_tap.iter_mut().enumerate() {
            let dc = plan.input_coupler(j);
            *tap = prefix * dc.cross_amplitude() * segment;
            prefix *= dc.through_amplitude() * crossing * segment;
        }
        // B[i]: bus pickup + the bus's descent through the rows below.
        let mut row_pick = vec![0.0; n];
        let mut suffix = 1.0;
        for i in (0..n).rev() {
            let dc = plan.output_coupler(i);
            row_pick[i] = dc.cross_amplitude() * suffix;
            suffix *= dc.through_amplitude() * crossing * segment;
        }

        let gains = if sim.has_phase_errors() {
            let mut re = Vec::with_capacity(n * m);
            let mut im = Vec::with_capacity(n * m);
            for (i, row) in weights.iter().enumerate() {
                let pick = row_pick[i];
                for (j, (&w, &tap)) in row.iter().zip(&col_tap).enumerate() {
                    let mag = tap * pick * sim.effective_weight(i, j, w);
                    // The two coupler `j`s give the 180° propagation phase.
                    let g = Complex::from_polar(mag, sim.residual_phase(i, j)).scale(-1.0);
                    re.push(g.re);
                    im.push(g.im);
                }
            }
            Gains::Complex { re, im }
        } else {
            let mut g = Vec::with_capacity(n * m);
            for (i, row) in weights.iter().enumerate() {
                let pick = row_pick[i];
                for (j, (&w, &tap)) in row.iter().zip(&col_tap).enumerate() {
                    g.push(-(tap * pick * sim.effective_weight(i, j, w)));
                }
            }
            Gains::Real(g)
        };
        Self {
            rows: n,
            cols: m,
            gains,
            sqrt_cols: (m as f64).sqrt(),
            norm_scale: sim.normalization_scale(),
        }
    }

    /// Number of rows (N).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (M).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the gain matrix is purely real (no residual phases).
    #[must_use]
    pub fn is_real(&self) -> bool {
        matches!(self.gains, Gains::Real(_))
    }

    /// The compiled complex gain of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn gain(&self, row: usize, col: usize) -> Complex {
        let idx = row * self.cols + col;
        match &self.gains {
            Gains::Real(g) => Complex::new(g[idx], 0.0),
            Gains::Complex { re, im } => Complex::new(re[idx], im[idx]),
        }
    }

    fn check_inputs(&self, inputs: &[f64]) {
        assert_eq!(inputs.len(), self.rows, "expected {} row inputs", self.rows);
        assert!(
            inputs.iter().all(|v| (0.0..=1.0).contains(v)),
            "inputs must lie in [0, 1]"
        );
    }

    /// The column output fields for one drive vector — the fast-path
    /// equivalent of [`CrossbarSimulator::run`] (matches it to machine
    /// precision).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the row count or any value is
    /// outside `[0, 1]`.
    #[must_use]
    pub fn mvm(&self, inputs: &[f64]) -> Vec<Field> {
        self.check_inputs(inputs);
        match &self.gains {
            Gains::Real(g) => {
                let mut acc = vec![0.0f64; self.cols];
                accumulate_real(g, self.cols, inputs, &mut acc);
                acc.into_iter()
                    .map(|re| Field::new(Complex::new(re, 0.0)))
                    .collect()
            }
            Gains::Complex { re, im } => {
                let mut acc = vec![0.0f64; 2 * self.cols];
                let (acc_re, acc_im) = acc.split_at_mut(self.cols);
                accumulate_real(re, self.cols, inputs, acc_re);
                accumulate_real(im, self.cols, inputs, acc_im);
                acc_re
                    .iter()
                    .zip(acc_im.iter())
                    .map(|(&r, &i)| Field::new(Complex::new(r, i)))
                    .collect()
            }
        }
    }

    /// Normalized MAC results for one drive vector, written into `out` —
    /// the allocation-free fast-path equivalent of
    /// [`CrossbarSimulator::run_normalized`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or out-of-range inputs.
    pub fn run_normalized_into(&self, inputs: &[f64], out: &mut [f64]) {
        self.check_inputs(inputs);
        assert_eq!(out.len(), self.cols, "expected {} outputs", self.cols);
        match &self.gains {
            Gains::Real(g) => {
                out.fill(0.0);
                accumulate_real(g, self.cols, inputs, out);
                for y in out.iter_mut() {
                    *y = y.abs() * self.sqrt_cols / self.norm_scale;
                }
            }
            Gains::Complex { re, im } => {
                let mut acc = vec![0.0f64; 2 * self.cols];
                let (acc_re, acc_im) = acc.split_at_mut(self.cols);
                accumulate_real(re, self.cols, inputs, acc_re);
                accumulate_real(im, self.cols, inputs, acc_im);
                for (y, (&r, &i)) in out.iter_mut().zip(acc_re.iter().zip(acc_im.iter())) {
                    *y = Complex::new(r, i).abs() * self.sqrt_cols / self.norm_scale;
                }
            }
        }
    }

    /// Normalized MAC results for one drive vector (allocating variant of
    /// [`Self::run_normalized_into`]).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or out-of-range inputs.
    #[must_use]
    pub fn run_normalized(&self, inputs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.run_normalized_into(inputs, &mut out);
        out
    }

    /// Batched normalized MVM: `drives` is a flat row-major drive matrix
    /// (`batch × rows`) and `out` the flat output matrix (`batch × cols`).
    ///
    /// Allocates a fresh [`BatchScratch`] per call; hot paths should hold
    /// one and use [`Self::run_normalized_batch_with`].
    ///
    /// # Panics
    ///
    /// Panics if `drives` is not a whole number of drive vectors, `out`
    /// does not hold `batch × cols` values, or any drive is out of range.
    pub fn run_normalized_batch(&self, drives: &[f64], out: &mut [f64]) {
        self.run_normalized_batch_with(drives, out, &mut BatchScratch::default());
    }

    /// [`Self::run_normalized_batch`] with caller-owned scratch — the
    /// allocation-free variant batched executors use.
    ///
    /// Both gain representations run four windows per pass so each gain
    /// row is loaded once per four drives (the complex planes run as two
    /// real accumulations); per-window results are bit-identical to
    /// [`Self::run_normalized_into`] (each window keeps its own
    /// accumulator and accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if `drives` is not a whole number of drive vectors, `out`
    /// does not hold `batch × cols` values, or any drive is out of range.
    pub fn run_normalized_batch_with(
        &self,
        drives: &[f64],
        out: &mut [f64],
        scratch: &mut BatchScratch,
    ) {
        assert_eq!(
            drives.len() % self.rows,
            0,
            "drive matrix must be batch × {} row-major",
            self.rows
        );
        let batch = drives.len() / self.rows;
        assert_eq!(
            out.len(),
            batch * self.cols,
            "expected {} × {} outputs",
            batch,
            self.cols
        );
        for drive in drives.chunks_exact(self.rows) {
            self.check_inputs(drive);
        }
        let quads = batch / 4;
        let (block_in, rest_in) = drives.split_at(quads * 4 * self.rows);
        let (block_out, rest_out) = out.split_at_mut(quads * 4 * self.cols);
        match &self.gains {
            Gains::Real(gains) => {
                for (quad, ys) in block_in
                    .chunks_exact(4 * self.rows)
                    .zip(block_out.chunks_exact_mut(4 * self.cols))
                {
                    self.quad_real(gains, quad, ys);
                    for o in ys.chunks_exact_mut(self.cols) {
                        for y in o.iter_mut() {
                            *y = y.abs() * self.sqrt_cols / self.norm_scale;
                        }
                    }
                }
                for (drive, ys) in rest_in
                    .chunks_exact(self.rows)
                    .zip(rest_out.chunks_exact_mut(self.cols))
                {
                    ys.fill(0.0);
                    accumulate_real(gains, self.cols, drive, ys);
                    for y in ys.iter_mut() {
                        *y = y.abs() * self.sqrt_cols / self.norm_scale;
                    }
                }
            }
            Gains::Complex { re, im } => {
                // 4 windows × (re, im) accumulator planes.
                scratch.acc.clear();
                scratch.acc.resize(8 * self.cols, 0.0);
                let (acc_re, acc_im) = scratch.acc.split_at_mut(4 * self.cols);
                for (quad, ys) in block_in
                    .chunks_exact(4 * self.rows)
                    .zip(block_out.chunks_exact_mut(4 * self.cols))
                {
                    self.quad_complex(re, im, quad, acc_re, acc_im);
                    for ((o, r), i) in ys
                        .chunks_exact_mut(self.cols)
                        .zip(acc_re.chunks_exact(self.cols))
                        .zip(acc_im.chunks_exact(self.cols))
                    {
                        for (y, (&r, &i)) in o.iter_mut().zip(r.iter().zip(i)) {
                            *y = Complex::new(r, i).abs() * self.sqrt_cols / self.norm_scale;
                        }
                    }
                }
                for (drive, ys) in rest_in
                    .chunks_exact(self.rows)
                    .zip(rest_out.chunks_exact_mut(self.cols))
                {
                    let (r, i) = (&mut acc_re[..self.cols], &mut acc_im[..self.cols]);
                    r.fill(0.0);
                    i.fill(0.0);
                    accumulate_real(re, self.cols, drive, r);
                    accumulate_real(im, self.cols, drive, i);
                    for (y, (&r, &i)) in ys.iter_mut().zip(r.iter().zip(i.iter())) {
                        *y = Complex::new(r, i).abs() * self.sqrt_cols / self.norm_scale;
                    }
                }
            }
        }
    }

    /// Accumulates four windows against a real gain plane: `ys` holds the
    /// four raw accumulator rows (`4 × cols`, zeroed here). Each window
    /// keeps its own accumulator and row order, so per-window sums are
    /// bit-identical to [`accumulate_real`] (a skipped `v = 0` row adds
    /// exactly `±0.0`, which never moves an accumulator).
    fn quad_real(&self, gains: &[f64], quad: &[f64], ys: &mut [f64]) {
        ys.fill(0.0);
        let (d0, d123) = quad.split_at(self.rows);
        let (d1, d23) = d123.split_at(self.rows);
        let (d2, d3) = d23.split_at(self.rows);
        let (o0, o123) = ys.split_at_mut(self.cols);
        let (o1, o23) = o123.split_at_mut(self.cols);
        let (o2, o3) = o23.split_at_mut(self.cols);
        for (i, row) in gains.chunks_exact(self.cols).enumerate() {
            let (v0, v1, v2, v3) = (d0[i], d1[i], d2[i], d3[i]);
            if v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0 {
                continue;
            }
            for ((((&g, o0), o1), o2), o3) in row
                .iter()
                .zip(o0.iter_mut())
                .zip(o1.iter_mut())
                .zip(o2.iter_mut())
                .zip(o3.iter_mut())
            {
                *o0 += g * v0;
                *o1 += g * v1;
                *o2 += g * v2;
                *o3 += g * v3;
            }
        }
    }

    /// Complex-plane variant of [`Self::quad_real`]: one pass over both
    /// gain planes feeds the re/im accumulators of all four windows, so
    /// each complex gain row is loaded once per four drives.
    fn quad_complex(
        &self,
        re: &[f64],
        im: &[f64],
        quad: &[f64],
        acc_re: &mut [f64],
        acc_im: &mut [f64],
    ) {
        acc_re.fill(0.0);
        acc_im.fill(0.0);
        let (d0, d123) = quad.split_at(self.rows);
        let (d1, d23) = d123.split_at(self.rows);
        let (d2, d3) = d23.split_at(self.rows);
        let (r0, r123) = acc_re.split_at_mut(self.cols);
        let (r1, r23) = r123.split_at_mut(self.cols);
        let (r2, r3) = r23.split_at_mut(self.cols);
        let (i0, i123) = acc_im.split_at_mut(self.cols);
        let (i1, i23) = i123.split_at_mut(self.cols);
        let (i2, i3) = i23.split_at_mut(self.cols);
        for (i, (row_re, row_im)) in re
            .chunks_exact(self.cols)
            .zip(im.chunks_exact(self.cols))
            .enumerate()
        {
            let (v0, v1, v2, v3) = (d0[i], d1[i], d2[i], d3[i]);
            if v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0 {
                continue;
            }
            for (j, (&gr, &gi)) in row_re.iter().zip(row_im).enumerate() {
                r0[j] += gr * v0;
                i0[j] += gi * v0;
                r1[j] += gr * v1;
                i1[j] += gi * v1;
                r2[j] += gr * v2;
                i2[j] += gi * v2;
                r3[j] += gr * v3;
                i3[j] += gi * v3;
            }
        }
    }
}

/// K wavelength channels sharing one programmed crossbar array.
///
/// Wavelength-division multiplexing reuses the PCM weight array for K
/// simultaneous MVMs: every channel sees the *same* programmed
/// transmissions (the cells are wavelength-broadband over the WDM grid)
/// but its own residual phase landscape (coupler splitting ratios and
/// trimmed phase errors are wavelength-dependent), so each channel
/// compiles to an independent gain matrix with its own readout chain.
/// K is therefore mostly a batching dimension: one electrical drive
/// vector enters the modulators once and produces K column-output
/// vectors, one per wavelength.
///
/// The type is a pure composition over [`CompiledCrossbar`] — channel `k`
/// holds exactly the gain planes an independent single-channel compile of
/// the same `(simulator, weights)` pair produces, and execution delegates
/// to the same quad-blocked real/complex kernels. Consequently a K=1 WDM
/// crossbar is bit-identical to a plain [`CompiledCrossbar`], and a K>1
/// crossbar is bit-identical to K independent single-channel compiles —
/// the property the tests in this module pin.
#[derive(Debug, Clone)]
pub struct WdmCrossbar {
    /// Per-wavelength compiled operators, channel-major.
    channels: Vec<CompiledCrossbar>,
}

impl WdmCrossbar {
    /// Compiles one channel per simulator against a shared weight
    /// (transmission) matrix — the simulators model the per-wavelength
    /// phase/loss landscapes of one physical array.
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty, the simulators disagree on the array
    /// geometry, or `weights` violates the [`CompiledCrossbar::new`]
    /// contract.
    #[must_use]
    pub fn new(sims: &[CrossbarSimulator], weights: &[Vec<f64>]) -> Self {
        assert!(
            !sims.is_empty(),
            "a WDM crossbar needs at least one channel"
        );
        Self::from_channels(
            sims.iter()
                .map(|sim| CompiledCrossbar::new(sim, weights))
                .collect(),
        )
    }

    /// Wraps independently compiled per-channel operators.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty or the channels disagree on the
    /// array geometry.
    #[must_use]
    pub fn from_channels(channels: Vec<CompiledCrossbar>) -> Self {
        assert!(
            !channels.is_empty(),
            "a WDM crossbar needs at least one channel"
        );
        let (rows, cols) = (channels[0].rows(), channels[0].cols());
        assert!(
            channels
                .iter()
                .all(|c| c.rows() == rows && c.cols() == cols),
            "every channel must share the array geometry"
        );
        Self { channels }
    }

    /// Number of wavelength channels (K).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The compiled operator of channel `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn channel(&self, k: usize) -> &CompiledCrossbar {
        &self.channels[k]
    }

    /// Number of rows (N) of the shared array.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.channels[0].rows()
    }

    /// Number of columns (M) of the shared array.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.channels[0].cols()
    }

    /// Batched normalized MVM across every channel: one shared flat drive
    /// matrix (`batch × rows`, the electrical input is
    /// wavelength-independent) produces a channel-major output matrix
    /// (`channels × batch × cols`). Channel `k`'s output block is
    /// bit-identical to
    /// `self.channel(k).run_normalized_batch_with(drives, …)`.
    ///
    /// # Panics
    ///
    /// Panics if `drives` is not a whole number of drive vectors, `out`
    /// does not hold `channels × batch × cols` values, or any drive is
    /// out of range.
    pub fn run_normalized_batch_all(
        &self,
        drives: &[f64],
        out: &mut [f64],
        scratch: &mut BatchScratch,
    ) {
        let batch = drives.len() / self.rows();
        assert_eq!(
            out.len(),
            self.channels.len() * batch * self.cols(),
            "expected {} × {} × {} outputs",
            self.channels.len(),
            batch,
            self.cols()
        );
        for (channel, block) in self
            .channels
            .iter()
            .zip(out.chunks_exact_mut(batch * self.cols()))
        {
            channel.run_normalized_batch_with(drives, block, scratch);
        }
    }
}

/// `acc[j] += Σ_i g[i][j] · v[i]` over row-major real gains, skipping dark
/// rows (`v = 0`), which im2col padding and ReLU sparsity make common.
fn accumulate_real(gains: &[f64], cols: usize, inputs: &[f64], acc: &mut [f64]) {
    for (row, &v) in gains.chunks_exact(cols).zip(inputs) {
        if v == 0.0 {
            continue;
        }
        for (a, &g) in acc.iter_mut().zip(row) {
            *a += g * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::CrossbarConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_case(n: usize, m: usize, seed: u64) -> (Vec<f64>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = (0..n).map(|_| rng.random::<f64>()).collect();
        let weights = (0..n)
            .map(|_| (0..m).map(|_| rng.random::<f64>()).collect())
            .collect();
        (inputs, weights)
    }

    fn assert_matches_walk(sim: &CrossbarSimulator, inputs: &[f64], weights: &[Vec<f64>]) {
        let compiled = CompiledCrossbar::new(sim, weights);
        let walk = sim.run(inputs, weights);
        let fast = compiled.mvm(inputs);
        for (j, (a, b)) in walk.iter().zip(&fast).enumerate() {
            assert!(
                (a.envelope().re - b.envelope().re).abs() < 1e-12
                    && (a.envelope().im - b.envelope().im).abs() < 1e-12,
                "col {j}: walk {} vs compiled {}",
                a.envelope(),
                b.envelope()
            );
        }
        let walk_norm = sim.run_normalized(inputs, weights);
        let fast_norm = compiled.run_normalized(inputs);
        for (j, (a, b)) in walk_norm.iter().zip(&fast_norm).enumerate() {
            assert!((a - b).abs() < 1e-12, "normalized col {j}: {a} vs {b}");
        }
    }

    #[test]
    fn ideal_gains_reproduce_equation_one_prefactor() {
        let (n, m) = (8, 4);
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
        let weights = vec![vec![1.0; m]; n];
        let compiled = CompiledCrossbar::new(&sim, &weights);
        assert!(compiled.is_real());
        let expected = -1.0 / (n as f64 * (m as f64).sqrt());
        for i in 0..n {
            for j in 0..m {
                let g = compiled.gain(i, j);
                assert!((g.re - expected).abs() < 1e-12, "({i},{j}): {g}");
                assert_eq!(g.im, 0.0);
            }
        }
    }

    #[test]
    fn matches_walk_ideal() {
        for (n, m) in [(1, 1), (2, 3), (8, 8), (16, 5), (32, 32)] {
            let sim = CrossbarSimulator::ideal(CrossbarConfig::new(n, m));
            let (inputs, weights) = random_case(n, m, 7 + n as u64);
            assert_matches_walk(&sim, &inputs, &weights);
        }
    }

    #[test]
    fn matches_walk_lossy_and_compensated() {
        for compensate in [false, true] {
            let sim = CrossbarSimulator::new(
                CrossbarConfig::new(16, 12)
                    .with_losses(true)
                    .with_path_loss_compensation(compensate),
            );
            let (inputs, weights) = random_case(16, 12, 11);
            assert_matches_walk(&sim, &inputs, &weights);
        }
    }

    #[test]
    fn matches_walk_with_phase_errors_and_trims() {
        for trim in [0.0, 0.01] {
            let sim = CrossbarSimulator::new(
                CrossbarConfig::new(12, 6)
                    .with_phase_error_sigma(0.15)
                    .with_phase_error_seed(5)
                    .with_trim_resolution(trim),
            );
            let (inputs, weights) = random_case(12, 6, 13);
            let compiled = CompiledCrossbar::new(&sim, &weights);
            assert!(!compiled.is_real(), "residual phases force complex gains");
            assert_matches_walk(&sim, &inputs, &weights);
        }
    }

    #[test]
    fn batch_equals_per_vector() {
        // Real and complex gains, batch sizes that exercise both the
        // 4-window blocked kernel and the remainder path, with zero rows
        // sprinkled in (k % 7 == 0 drives).
        let real = CrossbarSimulator::new(CrossbarConfig::new(8, 8).with_losses(true));
        let complex = CrossbarSimulator::new(
            CrossbarConfig::new(8, 8)
                .with_phase_error_sigma(0.1)
                .with_phase_error_seed(9)
                .with_trim_resolution(0.01),
        );
        for (name, sim) in [("real", real), ("complex", complex)] {
            let (_, weights) = random_case(8, 8, 3);
            let compiled = CompiledCrossbar::new(&sim, &weights);
            assert_eq!(compiled.is_real(), name == "real");
            for batch in [1, 3, 4, 7, 12] {
                let drives: Vec<f64> = (0..batch * 8).map(|k| (k % 7) as f64 / 7.0).collect();
                let mut batched = vec![0.0; batch * 8];
                compiled.run_normalized_batch(&drives, &mut batched);
                let mut scratched = vec![0.0; batch * 8];
                let mut scratch = BatchScratch::default();
                compiled.run_normalized_batch_with(&drives, &mut scratched, &mut scratch);
                assert_eq!(batched, scratched, "{name} batch {batch}: scratch reuse");
                // A second pass through the same warm scratch is identical.
                compiled.run_normalized_batch_with(&drives, &mut scratched, &mut scratch);
                assert_eq!(batched, scratched, "{name} batch {batch}: warm scratch");
                for (b, drive) in drives.chunks_exact(8).enumerate() {
                    let single = compiled.run_normalized(drive);
                    assert_eq!(
                        &batched[b * 8..(b + 1) * 8],
                        single.as_slice(),
                        "{name} batch {batch} window {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn dark_drive_is_exactly_zero() {
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(4, 4));
        let weights = vec![vec![0.7; 4]; 4];
        let compiled = CompiledCrossbar::new(&sim, &weights);
        assert_eq!(compiled.run_normalized(&[0.0; 4]), vec![0.0; 4]);
    }

    /// Per-channel crossbar simulators modelling the wavelength-dependent
    /// phase landscapes of one shared array: distinct phase-error seeds
    /// per channel, identical geometry and losses.
    fn wdm_sims(k: usize) -> Vec<CrossbarSimulator> {
        (0..k)
            .map(|c| {
                CrossbarSimulator::new(
                    CrossbarConfig::new(8, 8)
                        .with_phase_error_sigma(0.1)
                        .with_phase_error_seed(40 + c as u64)
                        .with_trim_resolution(0.01)
                        .with_losses(true)
                        .with_path_loss_compensation(true),
                )
            })
            .collect()
    }

    #[test]
    fn wdm_single_channel_is_bit_identical_to_compiled() {
        for sim in [
            CrossbarSimulator::ideal(CrossbarConfig::new(8, 8)),
            wdm_sims(1).remove(0),
        ] {
            let (_, weights) = random_case(8, 8, 17);
            let single = CompiledCrossbar::new(&sim, &weights);
            let wdm = WdmCrossbar::new(std::slice::from_ref(&sim), &weights);
            assert_eq!(wdm.channels(), 1);
            assert_eq!((wdm.rows(), wdm.cols()), (8, 8));
            for i in 0..8 {
                for j in 0..8 {
                    let (a, b) = (single.gain(i, j), wdm.channel(0).gain(i, j));
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "({i},{j}) re");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "({i},{j}) im");
                }
            }
            let drives: Vec<f64> = (0..5 * 8).map(|k| (k % 9) as f64 / 9.0).collect();
            let mut expect = vec![0.0; 5 * 8];
            single.run_normalized_batch(&drives, &mut expect);
            let mut got = vec![0.0; 5 * 8];
            wdm.run_normalized_batch_all(&drives, &mut got, &mut BatchScratch::default());
            assert_eq!(expect, got, "K=1 must be bit-identical to the plain kernel");
        }
    }

    #[test]
    fn wdm_channels_match_independent_single_channel_compiles() {
        let sims = wdm_sims(3);
        let (_, weights) = random_case(8, 8, 23);
        let wdm = WdmCrossbar::new(&sims, &weights);
        assert_eq!(wdm.channels(), 3);
        // Batch sizes exercising both the quad-blocked kernel and the
        // remainder path, with dark drives sprinkled in.
        for batch in [1, 4, 6] {
            let drives: Vec<f64> = (0..batch * 8).map(|k| (k % 5) as f64 / 5.0).collect();
            let mut all = vec![0.0; 3 * batch * 8];
            let mut scratch = BatchScratch::default();
            wdm.run_normalized_batch_all(&drives, &mut all, &mut scratch);
            // A second pass through the warm scratch is identical.
            let mut again = vec![0.0; 3 * batch * 8];
            wdm.run_normalized_batch_all(&drives, &mut again, &mut scratch);
            assert_eq!(all, again, "batch {batch}: warm scratch");
            for (k, sim) in sims.iter().enumerate() {
                let independent = CompiledCrossbar::new(sim, &weights);
                let mut expect = vec![0.0; batch * 8];
                independent.run_normalized_batch(&drives, &mut expect);
                assert_eq!(
                    &all[k * batch * 8..(k + 1) * batch * 8],
                    expect.as_slice(),
                    "batch {batch} channel {k}: must equal an independent compile"
                );
            }
        }
        // Channels genuinely differ (per-wavelength phase landscapes).
        let probe: Vec<f64> = (0..8).map(|k| k as f64 / 8.0).collect();
        let a = wdm.channel(0).run_normalized(&probe);
        let b = wdm.channel(1).run_normalized(&probe);
        assert_ne!(a, b, "distinct channels see distinct residual phases");
    }

    #[test]
    #[should_panic(expected = "share the array geometry")]
    fn wdm_mismatched_channels_panic() {
        let a = CompiledCrossbar::new(
            &CrossbarSimulator::ideal(CrossbarConfig::new(4, 4)),
            &vec![vec![0.5; 4]; 4],
        );
        let b = CompiledCrossbar::new(
            &CrossbarSimulator::ideal(CrossbarConfig::new(4, 2)),
            &vec![vec![0.5; 2]; 4],
        );
        let _ = WdmCrossbar::from_channels(vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "inputs must lie in [0, 1]")]
    fn out_of_range_input_panics() {
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(2, 2));
        let compiled = CompiledCrossbar::new(&sim, &vec![vec![0.5; 2]; 2]);
        let _ = compiled.mvm(&[1.5, 0.0]);
    }

    #[test]
    #[should_panic(expected = "weights must lie in [0, 1]")]
    fn out_of_range_weight_panics() {
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(2, 2));
        let _ = CompiledCrossbar::new(&sim, &vec![vec![1.5; 2]; 2]);
    }
}
