//! Internal macro generating the shared newtype boilerplate for quantities.

/// Defines a `Copy` newtype over `f64` with ordering, scalar arithmetic,
/// additive arithmetic, iterator summation, and serde support.
///
/// Per-quantity constructors, getters, and cross-quantity operators are
/// implemented next to each type, where the physics is visible.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $base_ctor:ident, $base_getter:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd,
                 serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates the quantity from its SI base unit.
            #[must_use]
            pub const fn $base_ctor(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in the SI base unit.
            #[must_use]
            pub const fn $base_getter(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dividing two like quantities yields a dimensionless ratio.
        impl core::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                crate::fmt::engineering(f, self.0, $unit)
            }
        }
    };
}
