//! Exhaustive design-space exploration (the sweeps behind Figs. 6 and 7).

use crate::chip::Chip;
use crate::config::ChipConfig;
use oxbar_nn::Network;
use serde::{Deserialize, Serialize};

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Batch size.
    pub batch: usize,
    /// Input SRAM (MB).
    pub input_sram_mb: f64,
    /// Inferences per second.
    pub ips: f64,
    /// IPS per watt.
    pub ips_per_watt: f64,
    /// Chip power (W).
    pub power_w: f64,
    /// Chip area (mm²).
    pub area_mm2: f64,
}

impl DesignPoint {
    fn from_report(cfg: &ChipConfig, report: &crate::report::ChipReport) -> Self {
        Self {
            rows: cfg.rows,
            cols: cfg.cols,
            batch: cfg.batch,
            input_sram_mb: cfg.sram.input.as_megabytes(),
            ips: report.ips,
            ips_per_watt: report.ips_per_watt,
            power_w: report.power.as_watts(),
            area_mm2: report.area.total().as_square_millimeters(),
        }
    }
}

/// Order-preserving parallel map over a slice with `std::thread::scope`.
///
/// Items are split into contiguous chunks, one scoped thread per chunk;
/// `f(index, item)` must therefore be independent per item (seed any
/// randomness from `index`, never from shared state). The output vector
/// keeps the input order exactly, so a parallel run is byte-identical to
/// the serial `items.iter().enumerate().map(f)` — the property the
/// determinism tests pin down.
///
/// With `threads == 1` (or a single item) the closure runs on the calling
/// thread without spawning.
///
/// # Examples
///
/// ```
/// use oxbar_core::dse::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], 0, |i, &x| x * x + i as u64);
/// assert_eq!(squares, vec![1, 5, 11, 19]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        threads
    }
    .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut results: Vec<Option<U>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, (slot_chunk, item_chunk)) in results
            .chunks_mut(chunk)
            .zip(items.chunks(chunk))
            .enumerate()
        {
            let f = &f;
            scope.spawn(move || {
                let base = chunk_idx * chunk;
                for (offset, (slot, item)) in slot_chunk.iter_mut().zip(item_chunk).enumerate() {
                    *slot = Some(f(base + offset, item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|p| p.expect("every slot filled"))
        .collect()
}

/// Evaluates every configuration in the cartesian sweep, in parallel.
///
/// Each entry of `configs` is evaluated independently with
/// [`parallel_map`]; results keep the input order.
///
/// # Examples
///
/// ```
/// use oxbar_core::config::ChipConfig;
/// use oxbar_core::dse::sweep;
/// use oxbar_nn::zoo::lenet5;
///
/// let configs = vec![
///     ChipConfig::paper_optimal().with_array(32, 32),
///     ChipConfig::paper_optimal().with_array(64, 64),
/// ];
/// let points = sweep(&lenet5(), configs);
/// assert_eq!(points.len(), 2);
/// ```
#[must_use]
pub fn sweep(network: &Network, configs: Vec<ChipConfig>) -> Vec<DesignPoint> {
    parallel_map(&configs, 0, |_, cfg| {
        let report = Chip::new(cfg.clone()).evaluate(network);
        DesignPoint::from_report(cfg, &report)
    })
}

/// Builds the Fig. 6 grid: all `rows × cols` combinations at fixed batch
/// and SRAM.
#[must_use]
pub fn array_grid(rows: &[usize], cols: &[usize]) -> Vec<ChipConfig> {
    let base = ChipConfig::paper_optimal();
    let mut configs = Vec::with_capacity(rows.len() * cols.len());
    for &r in rows {
        for &c in cols {
            configs.push(base.clone().with_array(r, c));
        }
    }
    configs
}

/// Extracts the Pareto-optimal points under (maximize IPS, maximize IPS/W).
#[must_use]
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut front: Vec<DesignPoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.ips > p.ips && q.ips_per_watt >= p.ips_per_watt)
                || (q.ips >= p.ips && q.ips_per_watt > p.ips_per_watt)
        });
        if !dominated {
            front.push(p.clone());
        }
    }
    front.sort_by(|a, b| a.ips.partial_cmp(&b.ips).expect("finite"));
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_nn::zoo::resnet50_v1_5;

    #[test]
    fn parallel_map_matches_serial_map() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = parallel_map(&items, threads, |i, &x| x * 3 + i as u64);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = parallel_map(&[], 4, |_, x: &u32| *x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(&[9u32], 4, |i, &x| x + i as u32), vec![9]);
    }

    #[test]
    fn sweep_preserves_order_and_length() {
        let configs = array_grid(&[32, 64], &[32, 64]);
        let points = sweep(&oxbar_nn::zoo::lenet5(), configs.clone());
        assert_eq!(points.len(), 4);
        for (p, c) in points.iter().zip(&configs) {
            assert_eq!((p.rows, p.cols), (c.rows, c.cols));
        }
    }

    #[test]
    fn fig6_peak_in_paper_band() {
        // Peak IPS/W at 128-256 rows × 64-128 cols (paper Fig. 6).
        let rows = [32usize, 64, 128, 256, 512];
        let cols = [32usize, 64, 128, 256];
        let points = sweep(&resnet50_v1_5(), array_grid(&rows, &cols));
        let best = points
            .iter()
            .max_by(|a, b| a.ips_per_watt.partial_cmp(&b.ips_per_watt).unwrap())
            .unwrap();
        assert!(
            (128..=256).contains(&best.rows),
            "peak rows {} (IPS/W {})",
            best.rows,
            best.ips_per_watt
        );
        assert!(
            (64..=128).contains(&best.cols),
            "peak cols {} (IPS/W {})",
            best.cols,
            best.ips_per_watt
        );
    }

    #[test]
    fn ips_increases_with_array_size_along_diagonal() {
        let points = sweep(&resnet50_v1_5(), array_grid(&[32, 64, 128], &[32, 64, 128]));
        let diag: Vec<&DesignPoint> = points.iter().filter(|p| p.rows == p.cols).collect();
        assert!(diag[0].ips < diag[1].ips && diag[1].ips < diag[2].ips);
    }

    #[test]
    fn pareto_front_is_nondominated_and_sorted() {
        let points = sweep(
            &resnet50_v1_5(),
            array_grid(&[32, 64, 128, 256], &[32, 64, 128]),
        );
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].ips <= w[1].ips);
            assert!(w[0].ips_per_watt >= w[1].ips_per_watt);
        }
    }
}
