//! The §VI.B optimization flow: batch size → SRAM size → array size.

use crate::chip::Chip;
use crate::config::ChipConfig;
use crate::report::ChipReport;
use oxbar_nn::Network;
use oxbar_units::{Area, DataVolume};
use serde::{Deserialize, Serialize};

/// Search-space bounds for the optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerSettings {
    /// Candidate batch sizes (ascending).
    pub batches: Vec<usize>,
    /// Candidate input-SRAM sizes in MB (ascending).
    pub input_sram_mb: Vec<f64>,
    /// Candidate row counts.
    pub rows: Vec<usize>,
    /// Candidate column counts.
    pub cols: Vec<usize>,
    /// Practical chip-area ceiling (the paper uses ~1 cm², relaxed a bit
    /// to admit its own 121 mm² optimum).
    pub area_budget: Area,
    /// IPS/W ties within this fraction are broken toward higher IPS.
    pub tie_tolerance: f64,
}

impl Default for OptimizerSettings {
    fn default() -> Self {
        Self {
            batches: vec![1, 2, 4, 8, 16, 32, 64, 128, 256],
            input_sram_mb: vec![1.0, 2.0, 4.0, 8.0, 16.0, 20.0, 26.3, 32.0, 48.0, 64.0],
            rows: vec![32, 64, 128, 256, 512],
            cols: vec![32, 64, 128, 256],
            area_budget: Area::from_square_millimeters(130.0),
            tie_tolerance: 0.03,
        }
    }
}

/// The decisions the flow makes, in order, with the final evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationResult {
    /// Step 1: chosen batch size.
    pub batch: usize,
    /// Step 2: chosen input SRAM size.
    pub input_sram: DataVolume,
    /// Step 3: chosen array geometry.
    pub array: (usize, usize),
    /// The final configuration.
    pub config: ChipConfig,
    /// The final evaluation.
    pub report: ChipReport,
}

/// Runs the paper's three-step flow for a network.
///
/// 1. **Batch**: the smallest candidate for which every conv layer's
///    per-fold compute (`output_pixels × batch`) covers the PCM
///    programming bubble, so the dual core hides programming (§VI.B).
///    FC layers (one output pixel) can never hide it and are excluded, as
///    are layers that do not recur (see EXPERIMENTS.md).
/// 2. **Input SRAM**: the smallest candidate whose IPS/W is within 1% of
///    the largest candidate's (the "critical size" of Fig. 7b), subject to
///    the area budget.
/// 3. **Array**: the geometry maximizing IPS/W, ties broken toward the
///    larger array (higher IPS), within the area budget.
///
/// # Examples
///
/// ```no_run
/// use oxbar_core::optimizer::{optimize, OptimizerSettings};
/// use oxbar_nn::zoo::resnet50_v1_5;
///
/// let result = optimize(&resnet50_v1_5(), &OptimizerSettings::default());
/// assert_eq!(result.batch, 32);
/// ```
#[must_use]
pub fn optimize(network: &Network, settings: &OptimizerSettings) -> OptimizationResult {
    let base = ChipConfig::paper_optimal();

    // --- Step 1: smallest programming-hiding batch --------------------
    let program_cycles = base.tech.program_cycles();
    let min_pixels = network
        .conv_like_layers()
        .map(|c| {
            let out = c.output_shape();
            out.h * out.w
        })
        .filter(|&pixels| pixels > 1)
        .min()
        .unwrap_or(1);
    let batch = settings
        .batches
        .iter()
        .copied()
        .find(|&b| (min_pixels * b) as u64 >= program_cycles)
        .unwrap_or_else(|| *settings.batches.last().expect("non-empty batches"));

    // --- Step 2: critical input SRAM size ------------------------------
    let ipsw_for = |input_mb: f64, rows: usize, cols: usize, batch: usize| -> f64 {
        let cfg = base
            .clone()
            .with_array(rows, cols)
            .with_batch(batch)
            .with_input_sram(DataVolume::from_megabytes(input_mb));
        Chip::new(cfg).evaluate(network).ips_per_watt
    };
    let reference_mb = *settings
        .input_sram_mb
        .last()
        .expect("non-empty SRAM candidates");
    let reference_ipsw = ipsw_for(reference_mb, base.rows, base.cols, batch);
    let input_mb = settings
        .input_sram_mb
        .iter()
        .copied()
        .find(|&mb| ipsw_for(mb, base.rows, base.cols, batch) >= 0.99 * reference_ipsw)
        .unwrap_or(reference_mb);
    let input_sram = DataVolume::from_megabytes(input_mb);

    // --- Step 3: array geometry maximizing IPS/W -----------------------
    let mut best: Option<(usize, usize, f64, f64)> = None; // rows, cols, ipsw, ips
    for &rows in &settings.rows {
        for &cols in &settings.cols {
            let cfg = base
                .clone()
                .with_array(rows, cols)
                .with_batch(batch)
                .with_input_sram(input_sram);
            let report = Chip::new(cfg).evaluate(network);
            if report.area.total() > settings.area_budget {
                continue;
            }
            let candidate = (rows, cols, report.ips_per_watt, report.ips);
            best = Some(match best {
                None => candidate,
                Some(current) => {
                    let (_, _, best_ipsw, best_ips) = current;
                    let within_tie = candidate.2 >= best_ipsw * (1.0 - settings.tie_tolerance);
                    let strictly_better = candidate.2 > best_ipsw && candidate.3 >= best_ips;
                    let faster_at_tie = within_tie && candidate.3 > best_ips;
                    if strictly_better || faster_at_tie {
                        candidate
                    } else {
                        current
                    }
                }
            });
        }
    }
    let (rows, cols, _, _) = best.expect("at least one geometry fits the budget");

    let config = base
        .with_array(rows, cols)
        .with_batch(batch)
        .with_input_sram(input_sram);
    let report = Chip::new(config.clone()).evaluate(network);
    OptimizationResult {
        batch,
        input_sram,
        array: (rows, cols),
        config,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_nn::zoo::resnet50_v1_5;

    #[test]
    fn flow_reproduces_paper_choices() {
        let result = optimize(&resnet50_v1_5(), &OptimizerSettings::default());
        // Paper §VII: batch 32, 26.3 MB input SRAM, 128×128 array.
        assert_eq!(result.batch, 32, "batch");
        let mb = result.input_sram.as_megabytes();
        assert!(
            (20.0..=32.0).contains(&mb),
            "critical input SRAM {mb} MB (paper: 26.3)"
        );
        let (rows, cols) = result.array;
        assert!(
            (128..=256).contains(&rows),
            "rows {rows} (paper band: 128-256)"
        );
        assert!(
            (64..=128).contains(&cols),
            "cols {cols} (paper band: 64-128)"
        );
    }

    #[test]
    fn chosen_config_fits_area_budget() {
        let settings = OptimizerSettings::default();
        let result = optimize(&resnet50_v1_5(), &settings);
        assert!(result.report.area.total() <= settings.area_budget);
    }

    #[test]
    fn batch_step_matches_min_layer_analysis() {
        // ResNet-50's smallest recurring conv output is 7×7 = 49 pixels;
        // 49·b ≥ 1000 ⇒ b ≥ 20.4 ⇒ first power of two is 32.
        let result = optimize(&resnet50_v1_5(), &OptimizerSettings::default());
        assert_eq!(result.batch, 32);
    }
}
