//! Regenerates every table and figure in one run.
//!
//! Each artifact runs under panic isolation: a failing figure reports its
//! error and the run continues with the next one, so one broken model
//! never hides the remaining artifacts. The exit code is non-zero if any
//! figure failed.

use std::panic::{catch_unwind, AssertUnwindSafe};

fn main() {
    let mut failures: Vec<(&'static str, String)> = Vec::new();
    let figures = oxbar_bench::figures::all();
    let total = figures.len();
    for (name, run) in figures {
        println!("\n================ {name} ================\n");
        match catch_unwind(AssertUnwindSafe(run)) {
            Ok(()) => {}
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                eprintln!("[FAILED] {name}: {msg}");
                failures.push((name, msg));
            }
        }
    }
    println!();
    if failures.is_empty() {
        println!("All {total} artifacts regenerated under results/.");
    } else {
        eprintln!(
            "{} of {total} artifacts FAILED (the rest regenerated under results/):",
            failures.len()
        );
        for (name, msg) in &failures {
            eprintln!("  - {name}: {msg}");
        }
        std::process::exit(1);
    }
}
