//! Coupling-coefficient design for uniform power distribution (§III.A).
//!
//! The crossbar needs every unit cell in a row to tap an equal share of the
//! row's field, and every cell in a column to contribute an equal weight to
//! the coherent column sum. Both are achieved with position-dependent
//! directional-coupler ratios:
//!
//! * input (row) couplers:  `κ_in[j]  = 1 / (M − j)` for column `j`
//! * output (column) couplers: `κ_out[i] = 1 / (i + 1)` for row `i` (row 0 at
//!   the top of the column, farthest from the output)
//!
//! With these, each cell receives field `v_i·E/√(NM)` and contributes with
//! uniform weight `1/√N`, which yields the paper's Eq. (1).

use crate::coupler::DirectionalCoupler;
use serde::{Deserialize, Serialize};

/// The designed coupler ratios for an N×M array.
///
/// # Examples
///
/// ```
/// use oxbar_photonics::coupling::CouplingPlan;
///
/// let plan = CouplingPlan::equalizing(4, 4);
/// // First input coupler taps 1/M of the power, last taps everything left.
/// assert!((plan.kappa_in(0) - 0.25).abs() < 1e-12);
/// assert!((plan.kappa_in(3) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CouplingPlan {
    kappa_in: Vec<f64>,
    kappa_out: Vec<f64>,
}

impl CouplingPlan {
    /// Designs the equal-tap plan for an `n_rows × m_cols` array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn equalizing(n_rows: usize, m_cols: usize) -> Self {
        assert!(
            n_rows > 0 && m_cols > 0,
            "array dimensions must be non-zero"
        );
        let kappa_in = (0..m_cols).map(|j| 1.0 / (m_cols - j) as f64).collect();
        let kappa_out = (0..n_rows).map(|i| 1.0 / (i + 1) as f64).collect();
        Self {
            kappa_in,
            kappa_out,
        }
    }

    /// Number of columns in the plan.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.kappa_in.len()
    }

    /// Number of rows in the plan.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.kappa_out.len()
    }

    /// The input coupler power ratio at column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn kappa_in(&self, j: usize) -> f64 {
        self.kappa_in[j]
    }

    /// The output coupler power ratio at row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn kappa_out(&self, i: usize) -> f64 {
        self.kappa_out[i]
    }

    /// Builds the input [`DirectionalCoupler`] for column `j`.
    #[must_use]
    pub fn input_coupler(&self, j: usize) -> DirectionalCoupler {
        DirectionalCoupler::new(self.kappa_in[j]).expect("designed ratio is valid")
    }

    /// Builds the output [`DirectionalCoupler`] for row `i`.
    #[must_use]
    pub fn output_coupler(&self, i: usize) -> DirectionalCoupler {
        DirectionalCoupler::new(self.kappa_out[i]).expect("designed ratio is valid")
    }

    /// The effective field tap amplitude of each cell along a row.
    ///
    /// For the equalizing design this is `1/√M` for every column: the
    /// product of the through-amplitudes of couplers `0..j` times the cross
    /// amplitude of coupler `j`.
    #[must_use]
    pub fn row_tap_amplitudes(&self) -> Vec<f64> {
        let mut remaining = 1.0f64; // running through-amplitude product
        let mut taps = Vec::with_capacity(self.cols());
        for &kappa in &self.kappa_in {
            taps.push(remaining * kappa.sqrt());
            remaining *= (1.0 - kappa).sqrt();
        }
        taps
    }

    /// The effective field weight of each row's contribution at the column
    /// output: `√κ_out[i] · Π_{l>i} √(1−κ_out[l])`, which is `1/√N` for the
    /// equalizing design.
    #[must_use]
    pub fn column_sum_weights(&self) -> Vec<f64> {
        let n = self.rows();
        let mut weights = vec![0.0; n];
        // Suffix product of through-amplitudes below row i.
        let mut suffix = 1.0f64;
        for i in (0..n).rev() {
            weights[i] = self.kappa_out[i].sqrt() * suffix;
            suffix *= (1.0 - self.kappa_out[i]).sqrt();
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_taps_are_uniform() {
        for m in [1usize, 2, 3, 8, 64, 128] {
            let plan = CouplingPlan::equalizing(4, m);
            let expected = 1.0 / (m as f64).sqrt();
            for (j, tap) in plan.row_tap_amplitudes().iter().enumerate() {
                assert!(
                    (tap - expected).abs() < 1e-12,
                    "m={m} j={j} tap={tap} expected={expected}"
                );
            }
        }
    }

    #[test]
    fn column_weights_are_uniform() {
        for n in [1usize, 2, 5, 32, 256] {
            let plan = CouplingPlan::equalizing(n, 4);
            let expected = 1.0 / (n as f64).sqrt();
            for (i, w) in plan.column_sum_weights().iter().enumerate() {
                assert!(
                    (w - expected).abs() < 1e-12,
                    "n={n} i={i} w={w} expected={expected}"
                );
            }
        }
    }

    #[test]
    fn boundary_couplers_fully_couple() {
        let plan = CouplingPlan::equalizing(8, 8);
        assert!((plan.kappa_in(7) - 1.0).abs() < 1e-12);
        assert!((plan.kappa_out(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_input_coupler_taps_one_over_m() {
        let plan = CouplingPlan::equalizing(8, 16);
        assert!((plan.kappa_in(0) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn bottom_output_coupler_is_one_over_n() {
        let plan = CouplingPlan::equalizing(16, 8);
        assert!((plan.kappa_out(15) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "array dimensions must be non-zero")]
    fn zero_dimension_panics() {
        let _ = CouplingPlan::equalizing(0, 4);
    }
}
