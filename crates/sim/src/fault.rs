//! Deterministic fault injection for device executors.
//!
//! Real PCM crossbar fleets run with partial failure as the steady
//! state: a chip's control plane dies, a tile execute glitches
//! transiently, or accumulated drift degrades a chip's accuracy until it
//! is re-programmed. This module models those events **deterministically**
//! — every fault is keyed on the serving scheduler's *dispatch round*
//! (a logical tick), never on wall clock — so a fixed [`FaultPlan`]
//! produces the same failure sequence on every run, across worker
//! counts, and in CI.
//!
//! The fault layer deliberately separates *what fails* from *when*:
//!
//! * [`FaultPlan`] is the schedule: a list of [`FaultEvent`]s, each
//!   naming a dispatch round and a chip.
//! * [`InjectedFault`] is the hardware-level effect a scheduler applies
//!   to one [`crate::DeviceExecutor`] when an event's round arrives.
//! * [`ExecError`] is the structured result surface: a faulted execute
//!   returns an error instead of panicking or silently corrupting
//!   output, so serving layers can retry, fail over, or shed.
//!
//! PCM non-volatility matters here: a **killed** chip's programmed
//! array state survives (only forward execution is refused), so
//! [`crate::DeviceExecutor::snapshot`] still works on a dead chip and a
//! serving layer can recover its resident models onto healthy hardware
//! via [`crate::DeviceExecutor::restore`].

use serde::{Deserialize, Serialize};

/// Structured failure of one device execute.
///
/// Returned by [`crate::DeviceExecutor::try_forward`]; serving layers
/// match on this to decide between retry (transient), failover
/// (chip-level), and refusal (model-level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The chip's control plane is down: no execute can make progress.
    /// The programmed (non-volatile) array state is still readable via
    /// snapshot, so the model can be recovered elsewhere.
    ChipFailed,
    /// A single tile execute glitched transiently; an immediate retry
    /// of the same execute on the same chip succeeds and is
    /// byte-identical to an unfaulted run.
    TileFault {
        /// Network layer index of the faulted tile.
        layer: usize,
        /// Fold-tile index within the layer.
        tile: usize,
    },
    /// The network itself cannot run on the device (pre-existing
    /// model-level refusal, unrelated to injected faults).
    Unsupported(oxbar_nn::reference::UnsupportedLayer),
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ChipFailed => write!(f, "chip control plane is down; execute refused"),
            Self::TileFault { layer, tile } => {
                write!(
                    f,
                    "transient fault executing tile (layer {layer}, tile {tile})"
                )
            }
            Self::Unsupported(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The hardware-level effect applied to one executor when a fault
/// event's dispatch round arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Permanently refuse forward execution (control-plane death). The
    /// non-volatile programmed state stays snapshot-readable.
    Kill,
    /// Arm a one-shot transient: the **next** execute on this chip
    /// returns [`ExecError::TileFault`] once, then the chip behaves
    /// normally again.
    TileTransient {
        /// Network layer index reported by the fault.
        layer: usize,
        /// Fold-tile index reported by the fault.
        tile: usize,
    },
    /// Mark the chip drift-degraded: executes still succeed (and stay
    /// deterministic), but the scheduler should prefer healthy replicas.
    Drift,
}

/// One scheduled fault: what happens, to which chip, at which dispatch
/// round. Rounds are the serving engine's global dispatch counter —
/// round `r` is the `r`-th batch round dispatched since the engine was
/// built, across all drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Kill chip `chip` just before round `round` dispatches.
    ChipKill {
        /// Dispatch round the kill lands on.
        round: u64,
        /// Cluster chip index.
        chip: usize,
    },
    /// Arm a one-shot transient tile fault on chip `chip` for round
    /// `round`: the first execute of that round on the chip fails once
    /// and succeeds on retry.
    TileTransient {
        /// Dispatch round the transient is armed for.
        round: u64,
        /// Cluster chip index.
        chip: usize,
    },
    /// Mark chip `chip` drift-degraded from round `round` onward.
    Drift {
        /// Dispatch round the degradation lands on.
        round: u64,
        /// Cluster chip index.
        chip: usize,
    },
}

impl FaultEvent {
    /// The dispatch round this event fires on.
    #[must_use]
    pub fn round(&self) -> u64 {
        match self {
            Self::ChipKill { round, .. }
            | Self::TileTransient { round, .. }
            | Self::Drift { round, .. } => *round,
        }
    }

    /// The chip this event targets.
    #[must_use]
    pub fn chip(&self) -> usize {
        match self {
            Self::ChipKill { chip, .. }
            | Self::TileTransient { chip, .. }
            | Self::Drift { chip, .. } => *chip,
        }
    }
}

/// A deterministic fault schedule: the full list of failures a run will
/// experience, keyed on dispatch rounds.
///
/// An empty plan (the [`Default`]) injects nothing — engines built
/// without faults behave byte-identically to engines that predate the
/// fault layer.
///
/// # Examples
///
/// ```
/// use oxbar_sim::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .kill_chip(3, 1)        // round 3: chip 1 dies
///     .tile_transient(5, 0)   // round 5: one execute on chip 0 glitches
///     .drift(7, 2);           // round 7: chip 2 marked degraded
/// assert_eq!(plan.events().len(), 3);
/// assert_eq!(plan.events_at(5).count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one event.
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Schedules a chip kill just before round `round` dispatches.
    #[must_use]
    pub fn kill_chip(self, round: u64, chip: usize) -> Self {
        self.with(FaultEvent::ChipKill { round, chip })
    }

    /// Schedules a one-shot transient tile fault on `chip` for `round`.
    #[must_use]
    pub fn tile_transient(self, round: u64, chip: usize) -> Self {
        self.with(FaultEvent::TileTransient { round, chip })
    }

    /// Marks `chip` drift-degraded from `round` onward.
    #[must_use]
    pub fn drift(self, round: u64, chip: usize) -> Self {
        self.with(FaultEvent::Drift { round, chip })
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every scheduled event, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events that fire on dispatch round `round`, in insertion
    /// order (kill/degrade/transient application order is up to the
    /// scheduler, which applies them at a single-threaded round
    /// boundary).
    pub fn events_at(&self, round: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.round() == round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_fires_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.events_at(0).count(), 0);
    }

    #[test]
    fn events_filter_by_round() {
        let plan = FaultPlan::new()
            .kill_chip(2, 0)
            .tile_transient(2, 1)
            .drift(4, 0);
        assert_eq!(plan.events_at(2).count(), 2);
        assert_eq!(plan.events_at(3).count(), 0);
        assert_eq!(plan.events_at(4).count(), 1);
        assert_eq!(plan.events().iter().map(FaultEvent::chip).max(), Some(1));
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::new().kill_chip(7, 3).drift(9, 1);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
    }
}
