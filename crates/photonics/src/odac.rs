//! Ring-resonator optical DAC (ODAC).

use crate::Field;
use oxbar_units::Decibel;
use serde::{Deserialize, Serialize};

/// A ring-resonator-based optical DAC that maps a digital code onto the
/// field amplitude.
///
/// Based on the 45 nm SOI ODAC of Moazeni et al. (JSSC 2017, the paper's
/// ref. \[15\]): up to 6-bit amplitude resolution at 20 GS/s. Two non-ideal
/// effects are modeled:
///
/// * **OMA penalty** — the ring cannot swing between perfect transmission
///   and perfect extinction; the paper budgets an effective 4 dB loss for
///   the optical modulation amplitude.
/// * **Phase chirp** — detuning a single ring modulates phase along with
///   amplitude. The [`ramzi`](crate::ramzi) transmitter cancels this by
///   push-pull operation; a bare `RingOdac` exposes it.
///
/// # Examples
///
/// ```
/// use oxbar_photonics::odac::RingOdac;
/// use oxbar_photonics::Field;
///
/// let odac = RingOdac::new(6).unwrap();
/// let full = odac.modulate(Field::from_amplitude(1.0), 63);
/// let half = odac.modulate(Field::from_amplitude(1.0), 32);
/// assert!(full.amplitude() > half.amplitude());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingOdac {
    bits: u8,
    oma_penalty: Decibel,
    phase_chirp_rad: f64,
}

/// Error returned for unsupported ODAC resolutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidOdacResolution {
    /// The rejected bit width.
    pub bits: u8,
}

impl core::fmt::Display for InvalidOdacResolution {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ODAC resolution must be between 1 and 8 bits, got {}",
            self.bits
        )
    }
}

impl std::error::Error for InvalidOdacResolution {}

impl RingOdac {
    /// The paper's effective OMA loss.
    pub const DEFAULT_OMA_PENALTY_DB: f64 = 4.0;
    /// Peak-to-peak phase chirp of a bare ring modulator across full swing.
    pub const DEFAULT_PHASE_CHIRP_RAD: f64 = 0.35;

    /// Creates an ODAC with `bits` of amplitude resolution.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidOdacResolution`] unless `1 ≤ bits ≤ 8` (ref. \[15\]
    /// demonstrates up to 6).
    pub fn new(bits: u8) -> Result<Self, InvalidOdacResolution> {
        if bits == 0 || bits > 8 {
            return Err(InvalidOdacResolution { bits });
        }
        Ok(Self {
            bits,
            oma_penalty: Decibel::new(Self::DEFAULT_OMA_PENALTY_DB),
            phase_chirp_rad: Self::DEFAULT_PHASE_CHIRP_RAD,
        })
    }

    /// Overrides the OMA penalty.
    #[must_use]
    pub fn with_oma_penalty(mut self, penalty: Decibel) -> Self {
        self.oma_penalty = penalty;
        self
    }

    /// Overrides the full-swing phase chirp.
    #[must_use]
    pub fn with_phase_chirp(mut self, chirp_rad: f64) -> Self {
        self.phase_chirp_rad = chirp_rad;
        self
    }

    /// Amplitude resolution in bits.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// The largest valid code, `2^bits − 1`.
    #[must_use]
    pub fn max_code(self) -> u16 {
        (1u16 << self.bits) - 1
    }

    /// OMA penalty.
    #[must_use]
    pub fn oma_penalty(self) -> Decibel {
        self.oma_penalty
    }

    /// Normalized amplitude for a code, in `[0, 1]` before the OMA penalty.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds [`max_code`](Self::max_code).
    #[must_use]
    pub fn code_to_amplitude(self, code: u16) -> f64 {
        assert!(
            code <= self.max_code(),
            "code {code} exceeds {}-bit ODAC range",
            self.bits
        );
        f64::from(code) / f64::from(self.max_code())
    }

    /// Modulates the input field with `code`, applying the OMA penalty and
    /// the bare-ring phase chirp.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds [`max_code`](Self::max_code).
    #[must_use]
    pub fn modulate(self, input: Field, code: u16) -> Field {
        let a = self.code_to_amplitude(code);
        input
            .attenuate(a * self.oma_penalty.attenuation_field())
            .shift_phase(self.phase_chirp_rad * a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_is_linear_in_code() {
        let odac = RingOdac::new(6).unwrap();
        let a16 = odac.code_to_amplitude(16);
        let a32 = odac.code_to_amplitude(32);
        assert!((a32 / a16 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_code_extinguishes() {
        let odac = RingOdac::new(6).unwrap();
        let out = odac.modulate(Field::from_amplitude(1.0), 0);
        assert_eq!(out.power().as_watts(), 0.0);
    }

    #[test]
    fn full_code_has_oma_penalty() {
        let odac = RingOdac::new(6).unwrap();
        let out = odac.modulate(Field::from_amplitude(1.0), 63);
        // 4 dB power penalty at full swing.
        assert!((out.power().as_watts() - 10f64.powf(-0.4)).abs() < 1e-9);
    }

    #[test]
    fn bare_ring_chirps_phase() {
        let odac = RingOdac::new(6).unwrap();
        let lo = odac.modulate(Field::from_amplitude(1.0), 16);
        let hi = odac.modulate(Field::from_amplitude(1.0), 63);
        assert!((hi.phase() - lo.phase()).abs() > 0.1);
    }

    #[test]
    #[should_panic(expected = "exceeds 6-bit ODAC range")]
    fn overrange_code_panics() {
        let odac = RingOdac::new(6).unwrap();
        let _ = odac.modulate(Field::from_amplitude(1.0), 64);
    }

    #[test]
    fn invalid_resolution_rejected() {
        assert!(RingOdac::new(0).is_err());
        assert!(RingOdac::new(9).is_err());
        assert_eq!(
            RingOdac::new(0).unwrap_err().to_string(),
            "ODAC resolution must be between 1 and 8 bits, got 0"
        );
    }

    #[test]
    fn max_code_for_six_bits() {
        assert_eq!(RingOdac::new(6).unwrap().max_code(), 63);
    }
}
