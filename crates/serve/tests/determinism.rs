//! The engine's acceptance property: a concurrent, batched drain is
//! byte-identical to a serial one-request-at-a-time replay of the same
//! trace — under full noisy device physics, with and without cache
//! eviction pressure.

use oxbar_nn::synthetic;
use oxbar_serve::loadgen::{MixEntry, OpenLoop};
use oxbar_serve::{catalog, BatchPolicy, Completion, ServeConfig, ServeEngine};
use oxbar_sim::{DeviceExecutor, SimConfig};

/// Runs the shared noisy trace through an engine built with `configure`,
/// returning completions sorted by request id.
fn run_trace(configure: impl FnOnce(ServeConfig) -> ServeConfig) -> Vec<Completion> {
    let device = SimConfig::noisy(64, 64).with_seed(77).with_threads(1);
    let mut engine = ServeEngine::new(configure(ServeConfig::new(device)));
    let lenet = engine.admit(catalog::lenet5_model()).unwrap();
    let vgg = engine.admit(catalog::vgg16_conv_sample()).unwrap();
    let mobile = engine.admit(catalog::mobilenet_sample()).unwrap();
    let load = OpenLoop {
        mix: vec![
            MixEntry {
                model: lenet,
                weight: 1,
            },
            MixEntry {
                model: vgg,
                weight: 1,
            },
            MixEntry {
                model: mobile,
                weight: 2,
            },
        ],
        requests: 10,
        interarrival: 1,
        seed: 5,
        deadline_slack: Some(64),
    };
    for request in load.trace(|m| engine.input_shape(m)) {
        engine.submit(request);
    }
    let mut done = engine.drain();
    done.sort_by_key(|c| c.id);
    done
}

/// Strips scheduling metadata, keeping the functional result.
fn outputs(completions: &[Completion]) -> Vec<(u64, Vec<i64>)> {
    completions
        .iter()
        .map(|c| (c.id.0, c.output.data().to_vec()))
        .collect()
}

#[test]
fn concurrent_batched_equals_serial_replay_noisy() {
    let serial = run_trace(|c| {
        c.with_policy(BatchPolicy::SINGLE)
            .with_workers(1)
            .with_prewarm(false)
    });
    for (workers, max_batch, max_wait) in [(1, 16, 8), (2, 4, 2), (4, 16, 16), (0, 8, 4)] {
        for prewarm in [false, true] {
            let concurrent = run_trace(|c| {
                c.with_policy(BatchPolicy::new(max_batch, max_wait))
                    .with_workers(workers)
                    .with_prewarm(prewarm)
            });
            assert_eq!(
                outputs(&concurrent),
                outputs(&serial),
                "workers={workers} batch={max_batch} wait={max_wait} prewarm={prewarm}"
            );
        }
    }
}

#[test]
fn eviction_pressure_never_changes_results() {
    let roomy = run_trace(|c| c.with_workers(2));
    // 80k cells hold roughly one resident model of the three: every model
    // switch evicts and reprograms, results must not move — with the
    // pipelined prewarm stage on or off, serial or concurrent.
    for prewarm in [false, true] {
        for workers in [1, 2] {
            let tight = run_trace(|c| {
                c.with_workers(workers)
                    .with_cache_budget(80_000)
                    .with_prewarm(prewarm)
            });
            assert_eq!(
                outputs(&tight),
                outputs(&roomy),
                "workers={workers} prewarm={prewarm}"
            );
        }
    }
}

/// The pipelined prewarm stage may only move programming work off the
/// execution path — the engine's eviction sequence (count and final
/// occupancy) must be identical with it on or off, for roomy and tight
/// budgets alike.
#[test]
fn prewarm_preserves_eviction_sequence() {
    for budget in [usize::MAX, 200_000, 80_000] {
        let mut evictions = Vec::new();
        let mut occupancy = Vec::new();
        for prewarm in [false, true] {
            let device = SimConfig::noisy(64, 64).with_seed(77).with_threads(1);
            let mut engine = ServeEngine::new(
                ServeConfig::new(device)
                    .with_cache_budget(budget)
                    .with_prewarm(prewarm)
                    .with_workers(1),
            );
            let lenet = engine.admit(catalog::lenet5_model()).unwrap();
            let vgg = engine.admit(catalog::vgg16_conv_sample()).unwrap();
            let mobile = engine.admit(catalog::mobilenet_sample()).unwrap();
            let load = OpenLoop {
                mix: vec![
                    MixEntry {
                        model: lenet,
                        weight: 1,
                    },
                    MixEntry {
                        model: vgg,
                        weight: 1,
                    },
                    MixEntry {
                        model: mobile,
                        weight: 2,
                    },
                ],
                requests: 12,
                interarrival: 1,
                seed: 5,
                deadline_slack: None,
            };
            for request in load.trace(|m| engine.input_shape(m)) {
                engine.submit(request);
            }
            engine.drain();
            let stats = engine.stats();
            evictions.push(stats.evictions);
            occupancy.push(stats.occupancy_cells);
        }
        assert_eq!(
            evictions[0], evictions[1],
            "budget={budget}: prewarm changed the eviction count"
        );
        assert_eq!(
            occupancy[0], occupancy[1],
            "budget={budget}: prewarm changed the final occupancy"
        );
    }
}

#[test]
fn engine_equals_fresh_executor_per_request() {
    // The strongest serial oracle: no engine, no shared cache — each
    // request through its own just-built executor (the model's admission
    // seed reproduces the same programmed device).
    let engine_out = run_trace(|c| c.with_workers(4));
    let device = SimConfig::noisy(64, 64).with_seed(77).with_threads(1);
    let specs = [
        catalog::lenet5_model(),
        catalog::vgg16_conv_sample(),
        catalog::mobilenet_sample(),
    ];
    for completion in &engine_out {
        let spec = &specs[completion.model.0];
        let config = device.clone().with_seed(oxbar_serve::request::request_seed(
            device.seed,
            completion.model.0 as u64,
        ));
        let input = synthetic::activations(
            spec.network.input(),
            6,
            oxbar_serve::request::request_seed(5 ^ 0x1a9d, completion.id.0),
        );
        let fresh = DeviceExecutor::new(config)
            .forward(&spec.network, &input, &spec.filters)
            .unwrap();
        assert_eq!(
            fresh.output, completion.output,
            "request {:?} diverged from the fresh-executor oracle",
            completion.id
        );
    }
}

#[test]
fn serialized_completions_are_byte_identical() {
    let a = serde_json::to_string(&run_trace(|c| c.with_workers(1))).unwrap();
    let b = serde_json::to_string(&run_trace(|c| c.with_workers(4))).unwrap();
    assert_eq!(a, b);
}
