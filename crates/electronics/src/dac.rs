//! ODAC driver electronics (the electrical half of the optical DAC).

use oxbar_units::{Area, Energy, Frequency, Power};
use serde::{Deserialize, Serialize};

/// The CMOS driver for one row's ring-resonator ODAC pair.
///
/// Ref. \[15\] (Moazeni et al., JSSC 2017): **168 fJ per sample and
/// 0.0012 mm² at 10 GS/s**, plus **0.72 mW of thermal tuning per ring
/// resonator** to hold the rings on resonance. A RAMZI transmitter uses two
/// rings (one per arm).
///
/// # Examples
///
/// ```
/// use oxbar_electronics::OdacDriver;
/// use oxbar_units::Frequency;
///
/// let drv = OdacDriver::paper_default(Frequency::from_gigahertz(10.0));
/// // 168 fJ × 10 GHz + 2 × 0.72 mW = 1.68 + 1.44 = 3.12 mW.
/// assert!((drv.power().as_milliwatts() - 3.12).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OdacDriver {
    sample_rate: Frequency,
    energy_per_sample: Energy,
    driver_area: Area,
    rings: u8,
    tuning_per_ring: Power,
}

impl OdacDriver {
    /// Driver energy per sample (ref. \[15\]).
    pub const ENERGY_PER_SAMPLE_FJ: f64 = 168.0;
    /// Driver area (ref. \[15\]).
    pub const AREA_MM2: f64 = 0.0012;
    /// Thermal tuning power per ring (ref. \[15\]).
    pub const TUNING_PER_RING_MW: f64 = 0.72;
    /// Rings per RAMZI transmitter.
    pub const DEFAULT_RINGS: u8 = 2;

    /// The paper's driver at the given sample rate.
    ///
    /// # Panics
    ///
    /// Panics if the sample rate is not positive.
    #[must_use]
    pub fn paper_default(sample_rate: Frequency) -> Self {
        assert!(sample_rate.as_hertz() > 0.0, "sample rate must be positive");
        Self {
            sample_rate,
            energy_per_sample: Energy::from_femtojoules(Self::ENERGY_PER_SAMPLE_FJ),
            driver_area: Area::from_square_millimeters(Self::AREA_MM2),
            rings: Self::DEFAULT_RINGS,
            tuning_per_ring: Power::from_milliwatts(Self::TUNING_PER_RING_MW),
        }
    }

    /// Overrides the ring count (e.g. 1 for a bare ODAC).
    #[must_use]
    pub fn with_rings(mut self, rings: u8) -> Self {
        self.rings = rings;
        self
    }

    /// Sample rate.
    #[must_use]
    pub fn sample_rate(self) -> Frequency {
        self.sample_rate
    }

    /// Dynamic driver power (excludes tuning).
    #[must_use]
    pub fn dynamic_power(self) -> Power {
        self.energy_per_sample * self.sample_rate
    }

    /// Thermal tuning power for all rings.
    #[must_use]
    pub fn tuning_power(self) -> Power {
        self.tuning_per_ring * f64::from(self.rings)
    }

    /// Total power (driver + tuning).
    #[must_use]
    pub fn power(self) -> Power {
        self.dynamic_power() + self.tuning_power()
    }

    /// Layout area of the driver.
    #[must_use]
    pub fn area(self) -> Area {
        self.driver_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_power_at_10ghz() {
        let drv = OdacDriver::paper_default(Frequency::from_gigahertz(10.0));
        assert!((drv.dynamic_power().as_milliwatts() - 1.68).abs() < 1e-12);
    }

    #[test]
    fn tuning_power_scales_with_rings() {
        let drv = OdacDriver::paper_default(Frequency::from_gigahertz(10.0)).with_rings(1);
        assert!((drv.tuning_power().as_milliwatts() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn power_scales_with_rate() {
        let slow = OdacDriver::paper_default(Frequency::from_gigahertz(5.0));
        let fast = OdacDriver::paper_default(Frequency::from_gigahertz(10.0));
        assert!(fast.dynamic_power() > slow.dynamic_power());
        // Tuning power is rate-independent.
        assert_eq!(fast.tuning_power(), slow.tuning_power());
    }

    #[test]
    fn area_matches_reference() {
        let drv = OdacDriver::paper_default(Frequency::from_gigahertz(10.0));
        assert!((drv.area().as_square_millimeters() - 0.0012).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn zero_rate_panics() {
        let _ = OdacDriver::paper_default(Frequency::ZERO);
    }
}
