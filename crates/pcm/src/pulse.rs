//! Electrical programming pulses.

use oxbar_units::{Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// The kind of programming pulse applied to a PCM cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PulseKind {
    /// Melt-quench: amorphizes (erases toward transparency).
    Reset,
    /// Anneal: crystallizes (writes toward absorption).
    Set,
    /// Partial anneal used for multi-level trims.
    PartialSet,
}

/// One electrical programming pulse.
///
/// The paper estimates ~100 pJ per programming event and ~100 ns programming
/// time (§III.A.1, §IV, refs. \[7\], \[8\]).
///
/// # Examples
///
/// ```
/// use oxbar_pcm::pulse::ProgramPulse;
///
/// let p = ProgramPulse::paper_default();
/// assert!((p.energy().as_picojoules() - 100.0).abs() < 1e-9);
/// assert!((p.peak_power().as_milliwatts() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramPulse {
    kind: PulseKind,
    energy: Energy,
    duration: Time,
}

impl ProgramPulse {
    /// Paper-default programming energy.
    pub const DEFAULT_ENERGY_PJ: f64 = 100.0;
    /// Paper-default programming time.
    pub const DEFAULT_DURATION_NS: f64 = 100.0;

    /// Creates a pulse.
    ///
    /// # Panics
    ///
    /// Panics if energy or duration is non-positive.
    #[must_use]
    pub fn new(kind: PulseKind, energy: Energy, duration: Time) -> Self {
        assert!(energy.as_joules() > 0.0, "pulse energy must be positive");
        assert!(
            duration.as_seconds() > 0.0,
            "pulse duration must be positive"
        );
        Self {
            kind,
            energy,
            duration,
        }
    }

    /// The paper's default 100 pJ / 100 ns SET pulse.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            PulseKind::Set,
            Energy::from_picojoules(Self::DEFAULT_ENERGY_PJ),
            Time::from_nanoseconds(Self::DEFAULT_DURATION_NS),
        )
    }

    /// Pulse kind.
    #[must_use]
    pub fn kind(self) -> PulseKind {
        self.kind
    }

    /// Pulse energy.
    #[must_use]
    pub fn energy(self) -> Energy {
        self.energy
    }

    /// Pulse duration.
    #[must_use]
    pub fn duration(self) -> Time {
        self.duration
    }

    /// Peak electrical power during the pulse.
    #[must_use]
    pub fn peak_power(self) -> Power {
        self.energy / self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pulse_numbers() {
        let p = ProgramPulse::paper_default();
        assert_eq!(p.kind(), PulseKind::Set);
        assert!((p.duration().as_nanoseconds() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn peak_power_is_energy_over_duration() {
        let p = ProgramPulse::new(
            PulseKind::Reset,
            Energy::from_picojoules(50.0),
            Time::from_nanoseconds(25.0),
        );
        assert!((p.peak_power().as_milliwatts() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pulse energy must be positive")]
    fn zero_energy_panics() {
        let _ = ProgramPulse::new(PulseKind::Set, Energy::ZERO, Time::from_nanoseconds(1.0));
    }

    #[test]
    #[should_panic(expected = "pulse duration must be positive")]
    fn zero_duration_panics() {
        let _ = ProgramPulse::new(PulseKind::Set, Energy::from_picojoules(1.0), Time::ZERO);
    }
}
