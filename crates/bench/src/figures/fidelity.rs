//! Fidelity sweep — the paper's §I precision/variation caveat, quantified.
//!
//! Not a numbered figure in the paper; this is the supporting study for
//! its INT6 assumption: how much PCM programming variation and phase error
//! the architecture tolerates while still delivering 6 effective bits.

use crate::{fmt, write_csv};
use oxbar_core::fidelity::{run_fidelity, FidelityKnobs};

/// PCM programming sigma axis.
pub const PCM_SIGMAS: [f64; 4] = [0.0, 0.005, 0.01, 0.02];
/// Phase-error sigma axis (radians).
pub const PHASE_SIGMAS: [f64; 4] = [0.0, 0.02, 0.05, 0.1];

/// Prints the sweep and writes `results/fidelity_sweep.csv`.
pub fn run() {
    println!("# Fidelity sweep — effective bits vs PCM variation and phase error");
    println!("(64x16 array, 12-bit ADC, trimmers at 0.01 rad, 20 Monte-Carlo trials)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "pcm_sigma", "phase[rad]", "rms_err", "max_err", "eff.bits"
    );
    let mut rows = Vec::new();
    for &pcm_sigma in &PCM_SIGMAS {
        for &phase_sigma in &PHASE_SIGMAS {
            let knobs = FidelityKnobs {
                pcm_sigma,
                phase_sigma_rad: phase_sigma,
                ..FidelityKnobs::default()
            };
            let report = run_fidelity(64, 16, 20, 42, &knobs);
            println!(
                "{:>10.3} {:>12.3} {:>12.6} {:>12.6} {:>10.2}",
                pcm_sigma, phase_sigma, report.rms_error, report.max_error, report.effective_bits
            );
            rows.push(vec![
                fmt(pcm_sigma, 4),
                fmt(phase_sigma, 4),
                fmt(report.rms_error, 8),
                fmt(report.max_error, 8),
                fmt(report.effective_bits, 3),
            ]);
        }
    }
    println!("\n(INT6 viability requires ≥6 effective bits — top-left region)");
    write_csv(
        "fidelity_sweep",
        &[
            "pcm_sigma",
            "phase_sigma_rad",
            "rms_error",
            "max_error",
            "effective_bits",
        ],
        &rows,
    );
}
