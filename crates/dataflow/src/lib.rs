//! SCALE-sim-equivalent dataflow engine for the `oxbar` crossbar (step 1 of
//! the paper's simulation framework, §V).
//!
//! For a CNN and a chip parameter set (array size, batch, SRAM sizing) this
//! crate counts, per layer and per network:
//!
//! * **compute cycles** — weight-stationary im2col folding of each layer
//!   onto the N×M array (`⌈K·K·C/N⌉ × ⌈F/M⌉` folds × output pixels ×
//!   batch);
//! * **programming events** — one PCM array write per fold;
//! * **SRAM and DRAM accesses** — with the paper's three SCALE-sim
//!   modifications: non-unity batch, a partial-sum accumulator, and
//!   output→input SRAM reuse (§V).
//!
//! An event-driven [`cycle::CycleSimulator`] replays the fold stream
//! explicitly (including dual-core programming/compute overlap) and is
//! cross-checked against the analytic counters in tests.
//!
//! # Examples
//!
//! ```
//! use oxbar_dataflow::engine::DataflowEngine;
//! use oxbar_nn::zoo::resnet50_v1_5;
//!
//! let engine = DataflowEngine::paper_default(128, 128, 32);
//! let spec = engine.analyze(&resnet50_v1_5());
//! // ≈4.1 GMACs on a 16k-MAC array: a few hundred k-cycles per image.
//! let cycles_per_image = spec.total_compute_cycles as f64 / 32.0;
//! assert!(cycles_per_image > 2.0e5 && cycles_per_image < 6.0e5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycle;
pub mod engine;
pub mod fold;
pub mod matmul;
pub mod spec;
pub mod stall;
pub mod tiles;
pub mod trace;

#[cfg(test)]
mod proptests;

pub use engine::{DataflowEngine, ModelOptions};
pub use fold::FoldPlan;
pub use spec::{LayerSpec, NetworkSpec};
