//! Criterion benches for the compiled transfer-matrix fast path vs the
//! cell-by-cell field walk: raw crossbar MVM kernels, compile cost, and a
//! full tile (PCM programming + batched MVM + readout) on both engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oxbar_dataflow::tiles::WeightTiles;
use oxbar_dataflow::FoldPlan;
use oxbar_nn::synthetic;
use oxbar_nn::{Conv2d, TensorShape};
use oxbar_photonics::crossbar::{CrossbarConfig, CrossbarSimulator};
use oxbar_photonics::transfer::CompiledCrossbar;
use oxbar_sim::tile::{run_tile_with, MvmEngine, TileDrive};
use oxbar_sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_case(n: usize, m: usize, seed: u64) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = (0..n).map(|_| rng.random()).collect();
    let weights = (0..n)
        .map(|_| (0..m).map(|_| rng.random()).collect())
        .collect();
    (inputs, weights)
}

fn bench_mvm_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_mvm/kernel");
    group.sample_size(20);
    for size in [32usize, 64, 128] {
        let sim = CrossbarSimulator::ideal(CrossbarConfig::new(size, size));
        let (inputs, weights) = random_case(size, size, 1);
        let compiled = CompiledCrossbar::new(&sim, &weights);
        let mut out = vec![0.0; size];
        group.bench_with_input(BenchmarkId::new("field_walk", size), &size, |b, _| {
            b.iter(|| black_box(sim.run_normalized(black_box(&inputs), black_box(&weights))));
        });
        group.bench_with_input(BenchmarkId::new("compiled", size), &size, |b, _| {
            b.iter(|| {
                compiled.run_normalized_into(black_box(&inputs), &mut out);
                black_box(&out);
            });
        });
        group.bench_with_input(BenchmarkId::new("compile_cost", size), &size, |b, _| {
            b.iter(|| black_box(CompiledCrossbar::new(&sim, black_box(&weights))));
        });
    }
    group.finish();
}

fn bench_full_tile(c: &mut Criterion) {
    // One fold tile of a padded conv, driven at every output pixel —
    // PCM programming + crossbar MVM batch + readout + recovery.
    let conv = Conv2d::new("c", TensorShape::new(12, 12, 3), 3, 3, 8, 1, 1);
    let bank = synthetic::filter_bank(&conv, 6, 3);
    let plan = FoldPlan::plan(&conv, 32, 8, 1);
    let tile = WeightTiles::new(&conv, &bank.weights, &plan)
        .next()
        .expect("at least one tile");
    let out = conv.output_shape();
    let positive: Vec<u8> = (0..out.h * out.w)
        .flat_map(|p| (0..tile.rows()).map(move |r| ((p * 31 + r * 7) % 64) as u8))
        .collect();
    let drive = TileDrive::new(tile.rows(), positive, None);
    let config = SimConfig::noisy(32, 8);
    let mut group = c.benchmark_group("device_mvm/tile_noisy");
    group.sample_size(10);
    for (label, engine) in [
        ("field_walk", MvmEngine::FieldWalk),
        ("compiled", MvmEngine::Compiled),
        ("compiled_no_cache", MvmEngine::CompiledNoCache),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(run_tile_with(&tile, &drive, &config, 9, engine)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mvm_kernels, bench_full_tile);
criterion_main!(benches);
