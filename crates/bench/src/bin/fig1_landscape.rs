//! Regenerates Fig. 1 (the AI/ML processor landscape).
use oxbar_bench::figures::fig1;
fn main() {
    fig1::render(&fig1::run());
}
