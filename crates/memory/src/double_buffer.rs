//! Double-buffering state machine used to overlap prefetch with compute.

use oxbar_units::DataVolume;
use serde::{Deserialize, Serialize};

/// A ping-pong buffer pair.
///
/// While the consumer drains the *active* half, the producer fills the
/// *shadow* half; [`DoubleBuffer::swap`] flips them. The dual-core PCM
/// programming scheme (§IV) and the filter-staging path both follow this
/// pattern.
///
/// # Examples
///
/// ```
/// use oxbar_memory::double_buffer::DoubleBuffer;
/// use oxbar_units::DataVolume;
///
/// let mut buf = DoubleBuffer::new(DataVolume::from_kilobytes(64.0));
/// buf.fill_shadow(DataVolume::from_kilobytes(64.0)).unwrap();
/// assert!(buf.shadow_ready());
/// buf.swap();
/// assert!(!buf.shadow_ready());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoubleBuffer {
    half_capacity: DataVolume,
    shadow_fill: f64,
    swaps: u64,
}

/// Error returned when a fill exceeds the shadow half's capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferOverflow {
    /// Bits that did not fit.
    pub excess_bits: f64,
}

impl core::fmt::Display for BufferOverflow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "double-buffer overflow by {} bits", self.excess_bits)
    }
}

impl std::error::Error for BufferOverflow {}

impl DoubleBuffer {
    /// Creates a buffer whose halves each hold `half_capacity`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive.
    #[must_use]
    pub fn new(half_capacity: DataVolume) -> Self {
        assert!(
            half_capacity.as_bits() > 0.0,
            "buffer capacity must be positive"
        );
        Self {
            half_capacity,
            shadow_fill: 0.0,
            swaps: 0,
        }
    }

    /// Capacity of each half.
    #[must_use]
    pub fn half_capacity(self) -> DataVolume {
        self.half_capacity
    }

    /// Adds `volume` to the shadow half.
    ///
    /// # Errors
    ///
    /// Returns [`BufferOverflow`] if the shadow half would exceed capacity;
    /// the fill is not applied.
    pub fn fill_shadow(&mut self, volume: DataVolume) -> Result<(), BufferOverflow> {
        let new_fill = self.shadow_fill + volume.as_bits();
        if new_fill > self.half_capacity.as_bits() {
            return Err(BufferOverflow {
                excess_bits: new_fill - self.half_capacity.as_bits(),
            });
        }
        self.shadow_fill = new_fill;
        Ok(())
    }

    /// `true` when the shadow half is completely filled.
    #[must_use]
    pub fn shadow_ready(self) -> bool {
        self.shadow_fill >= self.half_capacity.as_bits()
    }

    /// Current shadow fill level.
    #[must_use]
    pub fn shadow_fill(self) -> DataVolume {
        DataVolume::from_bits(self.shadow_fill)
    }

    /// Flips active and shadow halves, emptying the new shadow.
    pub fn swap(&mut self) {
        self.shadow_fill = 0.0;
        self.swaps += 1;
    }

    /// Number of swaps so far.
    #[must_use]
    pub fn swaps(self) -> u64 {
        self.swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_swap_cycle() {
        let mut buf = DoubleBuffer::new(DataVolume::from_bit_count(100));
        buf.fill_shadow(DataVolume::from_bit_count(60)).unwrap();
        assert!(!buf.shadow_ready());
        buf.fill_shadow(DataVolume::from_bit_count(40)).unwrap();
        assert!(buf.shadow_ready());
        buf.swap();
        assert_eq!(buf.shadow_fill().as_bits(), 0.0);
        assert_eq!(buf.swaps(), 1);
    }

    #[test]
    fn overflow_rejected_without_side_effect() {
        let mut buf = DoubleBuffer::new(DataVolume::from_bit_count(100));
        buf.fill_shadow(DataVolume::from_bit_count(80)).unwrap();
        let err = buf.fill_shadow(DataVolume::from_bit_count(30)).unwrap_err();
        assert_eq!(err.excess_bits, 10.0);
        assert_eq!(buf.shadow_fill().as_bits(), 80.0);
    }

    #[test]
    fn overflow_message() {
        let mut buf = DoubleBuffer::new(DataVolume::from_bit_count(10));
        let err = buf.fill_shadow(DataVolume::from_bit_count(11)).unwrap_err();
        assert_eq!(err.to_string(), "double-buffer overflow by 1 bits");
    }

    #[test]
    #[should_panic(expected = "buffer capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = DoubleBuffer::new(DataVolume::ZERO);
    }
}
