//! Seeded synthetic tensors — substitutes for trained ImageNet weights.
//!
//! Runtime specs (cycles, accesses) depend only on layer shapes, and the
//! functional validation needs *any* exactly-known integer tensors, so
//! reproducible pseudo-random data is a faithful substitute (DESIGN.md §4).

use crate::layer::{Activation, Conv2d, Dense, Layer, Pool, PoolKind};
use crate::reference::{FilterBank, Tensor3};
use crate::shape::TensorShape;
use crate::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an unsigned activation tensor with values in
/// `[0, 2^bits − 1]`.
///
/// # Examples
///
/// ```
/// use oxbar_nn::synthetic::activations;
/// use oxbar_nn::TensorShape;
///
/// let t = activations(TensorShape::new(8, 8, 3), 6, 42);
/// assert!(t.data().iter().all(|&v| (0..64).contains(&v)));
/// ```
#[must_use]
pub fn activations(shape: TensorShape, bits: u8, seed: u64) -> Tensor3 {
    let mut rng = StdRng::seed_from_u64(seed);
    let max = (1i64 << bits) - 1;
    let data = (0..shape.elements())
        .map(|_| rng.random_range(0..=max))
        .collect();
    Tensor3::new(shape, data)
}

/// Generates a signed filter bank for one conv layer with codes in
/// `[-(2^(bits−1)−1), +(2^(bits−1)−1)]`.
#[must_use]
pub fn filter_bank(conv: &crate::layer::Conv2d, bits: u8, seed: u64) -> FilterBank {
    let mut rng = StdRng::seed_from_u64(seed);
    let q = (1i16 << (bits - 1)) - 1;
    let weights = (0..conv.out_c)
        .map(|_| {
            (0..conv.filter_rows())
                .map(|_| rng.random_range(-q..=q) as i8)
                .collect()
        })
        .collect();
    FilterBank { weights }
}

/// Generates filter banks for every conv-like layer of a network, seeded
/// per layer so banks are independent yet reproducible.
#[must_use]
pub fn filter_banks(network: &Network, bits: u8, seed: u64) -> Vec<FilterBank> {
    network
        .conv_like_layers()
        .enumerate()
        .map(|(idx, conv)| filter_bank(&conv, bits, seed.wrapping_add(idx as u64)))
        .collect()
}

/// Generates a seeded random *small sequential* network: a short stack of
/// convolutions (with occasional pooling and mixed activations) closed by a
/// dense classifier.
///
/// Every network passes [`Network::audit_shapes`] and contains no residual
/// `Add` layers, so both the exact reference executor and the device-level
/// pipeline can run it — the cross-crate equivalence property tests sample
/// from this generator.
///
/// # Examples
///
/// ```
/// use oxbar_nn::synthetic::small_network;
///
/// let net = small_network(7);
/// assert_eq!(net.audit_shapes(), None);
/// assert!(net.conv_like_layers().count() >= 2);
/// ```
#[must_use]
pub fn small_network(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = rng.random_range(5..=9usize);
    let channels = rng.random_range(1..=3usize);
    let mut shape = TensorShape::new(side, side, channels);
    let mut net = Network::new(format!("synthetic_{seed}"), shape);

    let stages = rng.random_range(1..=2usize);
    for stage in 0..stages {
        let k = if rng.random_range(0..2u8) == 0 { 1 } else { 3 };
        let out_c = rng.random_range(2..=5usize);
        let padding = if k == 3 && rng.random_range(0..2u8) == 0 {
            1
        } else {
            0
        };
        // Keep the spatial extent legal for the kernel.
        if shape.h < k {
            break;
        }
        let activation = if rng.random_range(0..3u8) == 0 {
            Activation::None
        } else {
            Activation::Relu
        };
        let conv = Conv2d::new(format!("conv{stage}"), shape, k, k, out_c, 1, padding)
            .with_activation(activation);
        shape = conv.output_shape();
        net.push(Layer::Conv2d(conv));

        if shape.h >= 2 && shape.w >= 2 && rng.random_range(0..2u8) == 0 {
            let kind = if rng.random_range(0..2u8) == 0 {
                PoolKind::Max
            } else {
                PoolKind::Average
            };
            let pool = Pool::new(format!("pool{stage}"), shape, kind, 2, 2, 0);
            shape = pool.output_shape();
            net.push(Layer::Pool(pool));
        }
    }

    let classes = rng.random_range(2..=6usize);
    net.push(Layer::Dense(Dense::new("fc", shape.elements(), classes)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::lenet5;

    #[test]
    fn activations_reproducible() {
        let a = activations(TensorShape::new(4, 4, 2), 6, 9);
        let b = activations(TensorShape::new(4, 4, 2), 6, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = activations(TensorShape::new(8, 8, 4), 6, 1);
        let b = activations(TensorShape::new(8, 8, 4), 6, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn filter_codes_in_signed_range() {
        let net = lenet5();
        for bank in filter_banks(&net, 6, 3) {
            for w in &bank.weights {
                assert!(w.iter().all(|&c| (-31..=31).contains(&c)));
            }
        }
    }

    #[test]
    fn small_networks_are_consistent_and_executable() {
        for seed in 0..40 {
            let net = small_network(seed);
            assert_eq!(net.audit_shapes(), None, "seed {seed}");
            // No residual adds: the sequential executors must accept it.
            let input = activations(net.input(), 6, seed);
            let filters = filter_banks(&net, 6, seed ^ 0xABCD);
            let (out, _) = crate::reference::Executor::new(6)
                .forward(&net, &input, &filters)
                .expect("sequential");
            assert_eq!(out.shape(), net.output_shape());
        }
    }

    #[test]
    fn small_network_reproducible_per_seed() {
        assert_eq!(small_network(11), small_network(11));
        assert_ne!(small_network(11), small_network(12));
    }

    #[test]
    fn banks_cover_all_conv_layers() {
        let net = lenet5();
        assert_eq!(
            filter_banks(&net, 6, 0).len(),
            net.conv_like_layers().count()
        );
    }
}
