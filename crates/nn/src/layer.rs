//! Layer descriptors.

use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};

/// The non-linearity fused after a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// No non-linearity.
    None,
    /// Rectified linear unit.
    Relu,
}

/// A 2-D convolution (BatchNorm assumed folded into the weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    /// Layer name (unique within a network).
    pub name: String,
    /// Input activation shape.
    pub input: TensorShape,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Output channels.
    pub out_c: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Channel groups (1 = dense conv, `input.c` = depthwise).
    pub groups: usize,
    /// Fused activation.
    pub activation: Activation,
}

impl Conv2d {
    /// Creates a dense (groups = 1) convolution.
    ///
    /// # Panics
    ///
    /// Panics on zero kernel/stride/channels or if groups do not divide the
    /// channel counts.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        input: TensorShape,
        k_h: usize,
        k_w: usize,
        out_c: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        let conv = Self {
            name: name.into(),
            input,
            k_h,
            k_w,
            out_c,
            stride,
            padding,
            groups: 1,
            activation: Activation::Relu,
        };
        conv.validate();
        conv
    }

    /// Sets the group count (e.g. depthwise).
    ///
    /// # Panics
    ///
    /// Panics if groups do not divide both channel counts.
    #[must_use]
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self.validate();
        self
    }

    /// Sets the fused activation.
    #[must_use]
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    fn validate(&self) {
        assert!(
            self.k_h > 0 && self.k_w > 0 && self.out_c > 0 && self.stride > 0,
            "conv `{}`: kernel, stride and channels must be non-zero",
            self.name
        );
        assert!(
            self.groups > 0
                && self.input.c.is_multiple_of(self.groups)
                && self.out_c.is_multiple_of(self.groups),
            "conv `{}`: groups ({}) must divide in_c ({}) and out_c ({})",
            self.name,
            self.groups,
            self.input.c,
            self.out_c
        );
        // Forces the panic in TensorShape::conv_output for bad geometry.
        let _ = self.output_shape();
    }

    /// Output activation shape.
    #[must_use]
    pub fn output_shape(&self) -> TensorShape {
        let (h, w) = self
            .input
            .conv_output(self.k_h, self.k_w, self.stride, self.padding);
        TensorShape::new(h, w, self.out_c)
    }

    /// Input channels per group.
    #[must_use]
    pub fn in_c_per_group(&self) -> usize {
        self.input.c / self.groups
    }

    /// Output channels per group.
    #[must_use]
    pub fn out_c_per_group(&self) -> usize {
        self.out_c / self.groups
    }

    /// The flattened filter length per output channel (the crossbar's row
    /// dimension): `k_h · k_w · in_c / groups`.
    #[must_use]
    pub fn filter_rows(&self) -> usize {
        self.k_h * self.k_w * self.in_c_per_group()
    }

    /// Weight count.
    #[must_use]
    pub fn params(&self) -> u64 {
        (self.filter_rows() * self.out_c) as u64
    }

    /// Multiply-accumulate count for one input image.
    #[must_use]
    pub fn macs(&self) -> u64 {
        let out = self.output_shape();
        (out.h * out.w) as u64 * self.params()
    }
}

/// A fully-connected layer (mapped as a 1×1 convolution on 1×1 spatial).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Layer name.
    pub name: String,
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Whether a bias vector is added (digitally).
    pub bias: bool,
    /// Fused activation.
    pub activation: Activation,
}

impl Dense {
    /// Creates a dense layer with bias.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, in_features: usize, out_features: usize) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dense layer features must be non-zero"
        );
        Self {
            name: name.into(),
            in_features,
            out_features,
            bias: true,
            activation: Activation::None,
        }
    }

    /// Weight + bias count.
    #[must_use]
    pub fn params(&self) -> u64 {
        (self.in_features * self.out_features) as u64
            + if self.bias {
                self.out_features as u64
            } else {
                0
            }
    }

    /// MAC count for one input.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.in_features * self.out_features) as u64
    }

    /// The equivalent 1×1 convolution view used by the dataflow mapper.
    #[must_use]
    pub fn as_conv(&self) -> Conv2d {
        Conv2d::new(
            self.name.clone(),
            TensorShape::flat(self.in_features),
            1,
            1,
            self.out_features,
            1,
            0,
        )
        .with_activation(self.activation)
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum pooling.
    Max,
    /// Average pooling (global when the kernel equals the input extent).
    Average,
}

/// A pooling layer (no MACs on the crossbar; executed digitally).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pool {
    /// Layer name.
    pub name: String,
    /// Input shape.
    pub input: TensorShape,
    /// Pooling flavor.
    pub kind: PoolKind,
    /// Kernel size (square).
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
}

impl Pool {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics on zero kernel/stride.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        input: TensorShape,
        kind: PoolKind,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            k > 0 && stride > 0,
            "pool kernel and stride must be non-zero"
        );
        let pool = Self {
            name: name.into(),
            input,
            kind,
            k,
            stride,
            padding,
        };
        let _ = pool.output_shape();
        pool
    }

    /// Output shape.
    #[must_use]
    pub fn output_shape(&self) -> TensorShape {
        let (h, w) = self
            .input
            .conv_output(self.k, self.k, self.stride, self.padding);
        TensorShape::new(h, w, self.input.c)
    }
}

/// An element-wise residual addition (digital; tracked for energy/shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementwiseAdd {
    /// Layer name.
    pub name: String,
    /// Operand shape (both operands share it).
    pub shape: TensorShape,
    /// Fused activation after the addition.
    pub activation: Activation,
}

/// Any layer the accelerator executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Convolution on the crossbar.
    Conv2d(Conv2d),
    /// Fully-connected on the crossbar.
    Dense(Dense),
    /// Pooling (digital).
    Pool(Pool),
    /// Residual addition (digital).
    Add(ElementwiseAdd),
}

impl Layer {
    /// The layer's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Layer::Conv2d(c) => &c.name,
            Layer::Dense(d) => &d.name,
            Layer::Pool(p) => &p.name,
            Layer::Add(a) => &a.name,
        }
    }

    /// Output activation shape.
    #[must_use]
    pub fn output_shape(&self) -> TensorShape {
        match self {
            Layer::Conv2d(c) => c.output_shape(),
            Layer::Dense(d) => TensorShape::flat(d.out_features),
            Layer::Pool(p) => p.output_shape(),
            Layer::Add(a) => a.shape,
        }
    }

    /// MAC count for one input image (zero for digital layers).
    #[must_use]
    pub fn macs(&self) -> u64 {
        match self {
            Layer::Conv2d(c) => c.macs(),
            Layer::Dense(d) => d.macs(),
            Layer::Pool(_) | Layer::Add(_) => 0,
        }
    }

    /// Parameter count.
    #[must_use]
    pub fn params(&self) -> u64 {
        match self {
            Layer::Conv2d(c) => c.params(),
            Layer::Dense(d) => d.params(),
            Layer::Pool(_) | Layer::Add(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_stem_macs() {
        let conv = Conv2d::new("conv1", TensorShape::new(224, 224, 3), 7, 7, 64, 2, 3);
        assert_eq!(conv.macs(), 118_013_952);
        assert_eq!(conv.params(), 9_408);
    }

    #[test]
    fn bottleneck_1x1_shapes() {
        let conv = Conv2d::new("c", TensorShape::new(56, 56, 256), 1, 1, 64, 1, 0);
        assert_eq!(conv.output_shape(), TensorShape::new(56, 56, 64));
        assert_eq!(conv.filter_rows(), 256);
    }

    #[test]
    fn depthwise_groups() {
        let conv =
            Conv2d::new("dw", TensorShape::new(14, 14, 512), 3, 3, 512, 1, 1).with_groups(512);
        assert_eq!(conv.filter_rows(), 9);
        assert_eq!(conv.params(), 9 * 512);
        assert_eq!(conv.macs(), 14 * 14 * 9 * 512);
    }

    #[test]
    fn dense_as_conv_round_trip() {
        let fc = Dense::new("fc", 2048, 1000);
        assert_eq!(fc.params(), 2_049_000);
        let conv = fc.as_conv();
        assert_eq!(conv.filter_rows(), 2048);
        assert_eq!(conv.macs(), fc.macs());
    }

    #[test]
    fn pool_output() {
        let pool = Pool::new(
            "maxpool",
            TensorShape::new(112, 112, 64),
            PoolKind::Max,
            3,
            2,
            1,
        );
        assert_eq!(pool.output_shape(), TensorShape::new(56, 56, 64));
    }

    #[test]
    fn layer_enum_dispatch() {
        let layer = Layer::Conv2d(Conv2d::new("c", TensorShape::new(8, 8, 4), 3, 3, 8, 1, 1));
        assert_eq!(layer.name(), "c");
        assert_eq!(layer.output_shape(), TensorShape::new(8, 8, 8));
        assert!(layer.macs() > 0);
    }

    #[test]
    #[should_panic(expected = "groups (3) must divide")]
    fn bad_groups_panic() {
        let _ = Conv2d::new("g", TensorShape::new(8, 8, 4), 1, 1, 8, 1, 0).with_groups(3);
    }
}
