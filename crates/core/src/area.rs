//! Area model: per-component layout areas.

use crate::config::ChipConfig;
use oxbar_electronics::accumulator::Accumulator;
use oxbar_electronics::activation::ActivationUnit;
use oxbar_electronics::adc::Adc;
use oxbar_electronics::clocking::ClockDistribution;
use oxbar_electronics::dac::OdacDriver;
use oxbar_electronics::tia::Tia;
use oxbar_memory::system::MemorySystem;
use oxbar_units::Area;
use serde::{Deserialize, Serialize};

/// Chip area itemized by subsystem.
///
/// The dual-core design replicates the photonics and transceivers but
/// shares the SRAM, digital backend, and laser (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// The four SRAM blocks.
    pub sram: Area,
    /// Photonic crossbar cores (cells at the unit-cell pitch + routing).
    pub photonics: Area,
    /// Column ADCs.
    pub adc: Area,
    /// Row ODAC drivers.
    pub dac_drivers: Area,
    /// Column TIAs.
    pub tia: Area,
    /// Row/column clock distribution.
    pub clocking: Area,
    /// Digital backend (accumulator + activation lanes).
    pub digital: Area,
}

impl AreaBreakdown {
    /// Total chip area.
    #[must_use]
    pub fn total(&self) -> Area {
        self.sram
            + self.photonics
            + self.adc
            + self.dac_drivers
            + self.tia
            + self.clocking
            + self.digital
    }

    /// `(name, area)` pairs in a stable order (Fig. 8 rows).
    #[must_use]
    pub fn entries(&self) -> Vec<(&'static str, Area)> {
        vec![
            ("SRAM", self.sram),
            ("photonic cores", self.photonics),
            ("ADCs", self.adc),
            ("ODAC drivers", self.dac_drivers),
            ("TIAs", self.tia),
            ("clocking", self.clocking),
            ("digital (accum+activation)", self.digital),
        ]
    }

    /// The dominant component name.
    #[must_use]
    pub fn dominant(&self) -> &'static str {
        self.entries()
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("areas are finite"))
            .map(|(name, _)| name)
            .unwrap_or("none")
    }
}

/// The area model.
#[derive(Debug, Clone)]
pub struct AreaModel {
    config: ChipConfig,
}

impl AreaModel {
    /// Photonic routing overhead on top of the raw cell grid.
    pub const ROUTING_OVERHEAD: f64 = 1.2;

    /// Creates the model for a configuration.
    #[must_use]
    pub fn new(config: ChipConfig) -> Self {
        Self { config }
    }

    /// Computes the breakdown.
    ///
    /// # Examples
    ///
    /// ```
    /// use oxbar_core::area::AreaModel;
    /// use oxbar_core::config::ChipConfig;
    ///
    /// let area = AreaModel::new(ChipConfig::paper_optimal()).evaluate();
    /// let mm2 = area.total().as_square_millimeters();
    /// // The paper reports 121 mm² for this configuration.
    /// assert!(mm2 > 110.0 && mm2 < 135.0);
    /// ```
    #[must_use]
    pub fn evaluate(&self) -> AreaBreakdown {
        let cfg = &self.config;
        let replicas = cfg.cores.replicas() as f64;
        let clock = cfg.tech.clock;

        let sram = MemorySystem::new(cfg.sram, oxbar_memory::DramKind::Hbm).total_sram_area();
        let cell = Area::from_rect_um(cfg.tech.cell_pitch_um, cfg.tech.cell_pitch_um);
        let photonics = cell * cfg.cells_per_core() as f64 * Self::ROUTING_OVERHEAD * replicas;
        let adc = Adc::paper_default(clock).area() * cfg.cols as f64 * replicas;
        let dac_drivers = OdacDriver::paper_default(clock).area() * cfg.rows as f64 * replicas;
        let tia = Tia::paper_default().area() * cfg.cols as f64 * replicas;
        let clocking = ClockDistribution::paper_default(clock).area()
            * (cfg.rows + cfg.cols) as f64
            * replicas;
        // The digital backend is shared between cores.
        let digital =
            Accumulator::area_for_lanes(cfg.cols) + ActivationUnit::area_for_lanes(cfg.cols);

        AreaBreakdown {
            sram,
            photonics,
            adc,
            dac_drivers,
            tia,
            clocking,
            digital,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreCount;

    #[test]
    fn paper_optimum_reproduces_121mm2() {
        let area = AreaModel::new(ChipConfig::paper_optimal()).evaluate();
        let total = area.total().as_square_millimeters();
        assert!(
            (total - 121.0).abs() < 5.0,
            "total {total} mm² vs paper 121 mm²"
        );
    }

    #[test]
    fn sram_dominates_area() {
        // Fig. 8: area is dominated by the SRAM blocks.
        let area = AreaModel::new(ChipConfig::paper_optimal()).evaluate();
        assert_eq!(area.dominant(), "SRAM");
        let share = area.sram.as_square_meters() / area.total().as_square_meters();
        assert!(share > 0.5, "SRAM share {share}");
    }

    #[test]
    fn dual_core_doubles_photonics_not_sram() {
        let single =
            AreaModel::new(ChipConfig::paper_optimal().with_cores(CoreCount::Single)).evaluate();
        let dual =
            AreaModel::new(ChipConfig::paper_optimal().with_cores(CoreCount::Dual)).evaluate();
        assert!(
            (dual.photonics.as_square_meters() / single.photonics.as_square_meters() - 2.0).abs()
                < 1e-9
        );
        assert_eq!(dual.sram, single.sram);
        assert_eq!(dual.digital, single.digital);
    }

    #[test]
    fn entries_sum_to_total() {
        let area = AreaModel::new(ChipConfig::paper_optimal()).evaluate();
        let sum: Area = area.entries().into_iter().map(|(_, a)| a).sum();
        assert!((sum.as_square_meters() - area.total().as_square_meters()).abs() < 1e-18);
    }

    #[test]
    fn area_scales_with_array() {
        let small = AreaModel::new(ChipConfig::paper_optimal().with_array(32, 32)).evaluate();
        let large = AreaModel::new(ChipConfig::paper_optimal().with_array(256, 256)).evaluate();
        assert!(large.photonics > small.photonics);
        assert!(large.adc > small.adc);
        assert_eq!(large.sram, small.sram);
    }
}
