//! Chip snapshots reconstruct programmed tile state bit-exactly.
//!
//! A PCM chip's programmed state is non-volatile, so a serialized
//! snapshot of `{codes, per-tile seeds, config}` must rebuild an
//! executor whose forward passes are byte-identical to the source —
//! including every stochastic stream (programming variation, drift,
//! per-channel phase errors). This is the invariant that makes
//! snapshot-based model migration between serving chips sound.

use oxbar_nn::synthetic::{self, small_network};
use oxbar_nn::zoo::lenet5;
use oxbar_sim::{ChipSnapshot, DeviceExecutor, SimConfig};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::HashSet;

#[test]
fn snapshot_restore_forward_is_bit_exact_under_noise() {
    let net = lenet5();
    let input = synthetic::activations(net.input(), 6, 11);
    let filters = synthetic::filter_banks(&net, 6, 12);
    let config = SimConfig::noisy(128, 128).with_seed(909).with_threads(1);
    let exec = DeviceExecutor::new(config);
    let original = exec.forward(&net, &input, &filters).unwrap();

    // Serialize through the workspace serde shim and back: the snapshot
    // survives the wire format it would migrate over.
    let snap = exec.snapshot();
    assert!(!snap.tiles.is_empty(), "forward populates the cache");
    let json = serde_json::to_string(&snap).unwrap();
    let decoded: ChipSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(decoded, snap, "snapshot round-trips the serde shim");

    let restored = DeviceExecutor::restore(&decoded);
    let replay = restored.forward(&net, &input, &filters).unwrap();
    assert_eq!(replay, original, "restored chip must replay bit-exactly");

    // The restored cache holds exactly the snapshotted state: same
    // occupancy, same counters, and every replay execution was a hit.
    let before = exec.cache_stats();
    let after = restored.cache_stats();
    assert_eq!((after.entries, after.cells), (before.entries, before.cells));
    assert_eq!(snap.cells(), after.cells, "snapshot accounts its own cells");
    assert_eq!(
        after.misses, before.misses,
        "restore compiles are not misses"
    );
    assert_eq!(
        after.hits,
        before.hits + before.misses,
        "every restored tile serves the replay from the cache"
    );
}

/// A snapshot captured *while* the pipelined prewarm stage is
/// programming tiles on the same executor must still be a consistent
/// image: unique tile keys, cell accounting that matches what a restore
/// actually admits (never double-counted), and bit-exact replays. This
/// is the recovery scenario — a failed chip's snapshot is restored onto
/// a sibling whose prewarm pipeline is live.
fn check_snapshot_under_concurrent_prewarm(seed: u64) -> Result<(), TestCaseError> {
    let net_a = small_network(seed);
    let net_b = small_network(seed ^ 0x5A5A);
    let input_a = synthetic::activations(net_a.input(), 6, seed ^ 1);
    let input_b = synthetic::activations(net_b.input(), 6, seed ^ 2);
    let filters_a = synthetic::filter_banks(&net_a, 6, seed ^ 3);
    let filters_b = synthetic::filter_banks(&net_b, 6, seed ^ 4);
    let config = SimConfig::noisy(32, 16).with_seed(seed).with_threads(1);
    let exec = DeviceExecutor::new(config);

    // Model A is fully resident before the race starts.
    let out_a = exec.forward(&net_a, &input_a, &filters_a).unwrap();
    let snaps = std::thread::scope(|scope| {
        // The concurrent prewarm: model B's tile set programs in the
        // background while snapshots are being captured.
        let warmer = scope.spawn(|| exec.prewarm(&net_b, &filters_b));
        let mut snaps: Vec<ChipSnapshot> = Vec::new();
        while !warmer.is_finished() || snaps.is_empty() {
            snaps.push(exec.snapshot());
        }
        warmer.join().expect("prewarm thread");
        snaps
    });

    for snap in &snaps {
        // No tile appears twice, whatever instant the capture hit.
        let mut keys = HashSet::new();
        for t in &snap.tiles {
            prop_assert!(
                keys.insert((t.layer, t.tile, t.channel, t.seed)),
                "duplicate tile in a mid-prewarm snapshot"
            );
        }
        // The snapshot's own cell accounting is what a restore admits.
        let restored = DeviceExecutor::restore(snap);
        prop_assert_eq!(restored.cache_stats().cells, snap.cells());
        prop_assert_eq!(restored.cache_stats().entries, snap.tiles.len());
        // Model A was resident before the race: every capture replays it
        // bit-exactly (model B's missing tail lazily compiles to the
        // same seeded state, so it is bit-exact too).
        let replay_a = restored.forward(&net_a, &input_a, &filters_a).unwrap();
        prop_assert_eq!(&replay_a, &out_a);
    }
    let out_b = exec.forward(&net_b, &input_b, &filters_b).unwrap();
    let last = DeviceExecutor::restore(snaps.last().expect("at least one capture"));
    let replay_b = last.forward(&net_b, &input_b, &filters_b).unwrap();
    prop_assert_eq!(&replay_b, &out_b);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn snapshot_under_concurrent_prewarm_is_consistent(seed in 0u64..10_000) {
        check_snapshot_under_concurrent_prewarm(seed)?;
    }
}

#[test]
fn snapshot_of_cold_executor_restores_empty() {
    let config = SimConfig::noisy(64, 64).with_seed(3).with_threads(1);
    let exec = DeviceExecutor::new(config).with_cache_budget(0);
    let snap = exec.snapshot();
    assert!(snap.tiles.is_empty());
    assert_eq!(snap.cells(), 0);
    let restored = DeviceExecutor::restore(&snap);
    assert_eq!(restored.cache_stats().entries, 0);
    assert_eq!(restored.cache_stats().budget, 0);
}
