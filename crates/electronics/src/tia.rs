//! Trans-impedance amplifier (TIA) model.

use oxbar_units::{Area, Power};
use serde::{Deserialize, Serialize};

/// The TIA amplifying one column's balanced-photodiode current.
///
/// Ref. \[17\] (Mehta et al., VLSI 2019): a monolithic 45 nm coherent receiver
/// front-end at **2.25 mW per TIA**.
///
/// # Examples
///
/// ```
/// use oxbar_electronics::tia::Tia;
///
/// let tia = Tia::paper_default();
/// assert!((tia.power().as_milliwatts() - 2.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tia {
    power: Power,
    area: Area,
    transimpedance_ohms: f64,
}

impl Tia {
    /// Power per TIA (ref. \[17\]).
    pub const POWER_MW: f64 = 2.25;
    /// Estimated layout area (mm²) for a 45 nm TIA.
    pub const AREA_MM2: f64 = 0.0008;
    /// Typical transimpedance gain (Ω).
    pub const TRANSIMPEDANCE_OHMS: f64 = 5_000.0;

    /// The paper's TIA.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            power: Power::from_milliwatts(Self::POWER_MW),
            area: Area::from_square_millimeters(Self::AREA_MM2),
            transimpedance_ohms: Self::TRANSIMPEDANCE_OHMS,
        }
    }

    /// Power drawn.
    #[must_use]
    pub fn power(self) -> Power {
        self.power
    }

    /// Layout area.
    #[must_use]
    pub fn area(self) -> Area {
        self.area
    }

    /// Output voltage (V) for an input photocurrent (A).
    #[must_use]
    pub fn output_voltage(self, current_a: f64) -> f64 {
        current_a * self.transimpedance_ohms
    }
}

impl Default for Tia {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_converts_current_to_voltage() {
        let tia = Tia::paper_default();
        // 100 µA × 5 kΩ = 0.5 V.
        assert!((tia.output_voltage(100e-6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reference_power() {
        assert!((Tia::default().power().as_milliwatts() - 2.25).abs() < 1e-12);
    }
}
