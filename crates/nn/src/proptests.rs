//! Property-based tests for shapes, quantization, and weight mapping.

use crate::layer::Dense;
use crate::mapping::{MappedWeights, WeightMapping};
use crate::quant::SignedQuantizer;
use crate::shape::TensorShape;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random small signed weight matrices within the INT6 range.
fn signed_matrix() -> impl Strategy<Value = Vec<Vec<i8>>> {
    (1usize..8, 1usize..8, 0u64..1000).prop_map(|(rows, cols, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows)
            .map(|_| (0..cols).map(|_| rng.random_range(-31..=31i8)).collect())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn shape_elements_multiply(h in 1usize..64, w in 1usize..64, c in 1usize..32) {
        let shape = TensorShape::new(h, w, c);
        prop_assert_eq!(shape.elements(), h * w * c);
        prop_assert_eq!(TensorShape::flat(c).elements(), c);
    }

    #[test]
    fn quantizer_code_round_trip(bits in 2u8..=7, raw in -127i16..=127, scale in 0.001..10.0f64) {
        let q = SignedQuantizer::new(bits);
        let code = (raw % (i16::from(q.q_max()) + 1)) as i8;
        prop_assert_eq!(q.quantize(q.dequantize(code, scale), scale), code);
    }

    #[test]
    fn quantize_tensor_respects_q_max(
        values in prop::collection::vec(-10.0..10.0f64, 1..64),
        bits in 2u8..=7,
    ) {
        let q = SignedQuantizer::new(bits);
        let (codes, scale) = q.quantize_tensor(&values);
        prop_assert!(scale > 0.0);
        for &code in &codes {
            prop_assert!(code.abs() <= q.q_max());
        }
    }

    #[test]
    fn dense_as_conv_preserves_work(inf in 1usize..512, outf in 1usize..512) {
        let dense = Dense::new("fc", inf, outf);
        let conv = dense.as_conv();
        prop_assert_eq!(conv.macs(), dense.macs());
        prop_assert_eq!(conv.output_shape().elements(), outf);
    }

    #[test]
    fn weight_mapping_recovers_signed_macs(
        signed in signed_matrix(),
        seed in 0u64..1000,
        offset_mapping in 0u8..2,
    ) {
        let mapping = if offset_mapping == 0 {
            WeightMapping::Offset
        } else {
            WeightMapping::Differential
        };
        let rows = signed.len();
        let cols = signed[0].len();
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<u8> = (0..rows).map(|_| rng.random_range(0..=63u8)).collect();
        let mapped = MappedWeights::map(&signed, mapping, 31);
        prop_assert_eq!(
            mapped.physical_cols(),
            cols * mapping.columns_per_output()
        );
        let outputs = mapped.ideal_crossbar_outputs(&inputs);
        let recovered = mapped.recover(&outputs, &inputs);
        for (j, &got) in recovered.iter().enumerate() {
            let expected: i64 = (0..rows)
                .map(|i| i64::from(signed[i][j]) * i64::from(inputs[i]))
                .sum();
            prop_assert_eq!(got, expected);
        }
    }
}
