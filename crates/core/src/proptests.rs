//! Property-based tests over the assembled system model.

use crate::chip::Chip;
use crate::config::{ChipConfig, CoreCount};
use oxbar_nn::{Conv2d, Layer, Network, TensorShape};
use proptest::prelude::*;

/// Small networks: one conv feeding the crossbar.
fn tiny_network() -> impl Strategy<Value = Network> {
    (4usize..16, 1usize..8, 1usize..16).prop_map(|(hw, c, out_c)| {
        let mut net = Network::new("prop", TensorShape::new(hw, hw, c));
        net.push(Layer::Conv2d(Conv2d::new(
            "conv",
            TensorShape::new(hw, hw, c),
            3,
            3,
            out_c,
            1,
            1,
        )));
        net
    })
}

fn config(rows_exp: u32, cols_exp: u32, batch_exp: u32, dual: bool) -> ChipConfig {
    let cores = if dual {
        CoreCount::Dual
    } else {
        CoreCount::Single
    };
    ChipConfig::paper_optimal()
        .with_array(1 << rows_exp, 1 << cols_exp)
        .with_batch(1 << batch_exp)
        .with_cores(cores)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn report_metrics_are_self_consistent(
        net in tiny_network(),
        rows_exp in 4u32..8,
        cols_exp in 4u32..8,
        batch_exp in 0u32..4,
        dual in 0u8..2,
    ) {
        let chip = Chip::new(config(rows_exp, cols_exp, batch_exp, dual == 1));
        let report = chip.evaluate(&net);
        prop_assert!(report.ips > 0.0, "ips = {}", report.ips);
        prop_assert!(report.power.as_watts() > 0.0);
        // IPS/W must be IPS at the reported average power.
        let expected_ipsw = report.ips / report.power.as_watts();
        prop_assert!(
            (report.ips_per_watt - expected_ipsw).abs() / expected_ipsw < 1e-9,
            "ips/W {} vs {}", report.ips_per_watt, expected_ipsw
        );
        // Energy per inference must match power × time / batch throughput.
        let derived = report.power.as_watts() / report.ips;
        prop_assert!(
            (report.energy_per_inference.as_joules() - derived).abs() / derived < 1e-9
        );
        prop_assert!(report.utilization > 0.0 && report.utilization <= 1.0 + 1e-12);
        prop_assert_eq!(report.cores, chip.config().cores.replicas());
    }

    #[test]
    fn dual_core_never_slower(
        net in tiny_network(),
        rows_exp in 4u32..7,
        batch_exp in 0u32..3,
    ) {
        let single = Chip::new(config(rows_exp, rows_exp, batch_exp, false)).evaluate(&net);
        let dual = Chip::new(config(rows_exp, rows_exp, batch_exp, true)).evaluate(&net);
        prop_assert!(
            dual.ips + 1e-9 >= single.ips,
            "dual {} < single {}", dual.ips, single.ips
        );
    }

    #[test]
    fn config_builders_compose(rows_exp in 2u32..8, cols_exp in 2u32..8, batch in 1usize..64) {
        let cfg = ChipConfig::paper_optimal()
            .with_array(1 << rows_exp, 1 << cols_exp)
            .with_batch(batch);
        prop_assert_eq!(cfg.rows, 1usize << rows_exp);
        prop_assert_eq!(cfg.cols, 1usize << cols_exp);
        prop_assert_eq!(cfg.batch, batch);
        prop_assert_eq!(cfg.cells_per_core(), (1usize << rows_exp) * (1usize << cols_exp));
    }
}
