//! §VI.B optimization flow.

use crate::write_json;
use oxbar_core::optimizer::OptimizationResult;
use oxbar_core::optimizer::{optimize, OptimizerSettings};
use oxbar_nn::zoo::resnet50_v1_5;

/// Runs the three-step flow on ResNet-50.
#[must_use]
pub fn generate() -> OptimizationResult {
    optimize(&resnet50_v1_5(), &OptimizerSettings::default())
}

/// Prints each decision and the resulting chip.
pub fn render(result: &OptimizationResult) {
    println!("# Sec. VI.B — optimization flow (batch -> SRAM -> array)");
    println!("step 1  batch          : {}  (paper: 32)", result.batch);
    println!(
        "step 2  input SRAM     : {:.1} MB  (paper: 26.3 MB)",
        result.input_sram.as_megabytes()
    );
    println!(
        "step 3  array          : {}x{}  (paper: 128x128)",
        result.array.0, result.array.1
    );
    println!("\nresulting chip:");
    println!("{}", result.report);
}

/// Runs the flow and writes `results/optimize.json`.
pub fn run() -> OptimizationResult {
    let result = generate();
    write_json("optimize", &result);
    result
}
