//! Reusable execution scratch for the weight-stationary serving hot path.
//!
//! A warm tile execution touches half a dozen working buffers: the im2col
//! drive matrix, the duplicate-window dedupe index, the normalized drive
//! and column-output matrices of the batched MVM, the recovered signed
//! partials, and the digital accumulator lanes. Allocating them per call
//! put the heap allocator on the serving critical path; an [`ExecArena`]
//! owns all of them, grows each buffer to the largest tile it has served,
//! and is pooled per executor (checked out per tile job, returned after
//! accumulation), so a warm batch round performs **zero** heap
//! allocations in [`crate::tile::CompiledTile::execute_into`] — the
//! property `crates/sim/tests/alloc_regression.rs` pins with a counting
//! global allocator.
//!
//! Arenas carry no results across calls: every buffer is fully rewritten
//! by the execution that borrows it, so pooling can never change results
//! — only where the bytes live.

use crate::tile::TileDrive;
use oxbar_photonics::transfer::BatchScratch;

/// Reusable scratch for one tile execution (and, at the executor level,
/// one layer's digital accumulation).
///
/// See the [module docs](self) for the role each buffer plays. Obtain one
/// with [`ExecArena::default`] and pass it to
/// [`crate::tile::CompiledTile::execute_into`]; executors keep an
/// internal pool and never expose theirs.
#[derive(Debug)]
pub struct ExecArena {
    /// Per-window id into `uniques` (`window_count` long).
    pub(crate) unique_of: Vec<u32>,
    /// First-occurrence window index of each deduplicated window.
    pub(crate) uniques: Vec<u32>,
    /// Open-addressing dedupe table over window bytes (`u32::MAX` =
    /// empty; power-of-two sized, ≥ 2× the window count).
    pub(crate) table: Vec<u32>,
    /// Flat normalized drive matrix of the unique windows
    /// (`uniques × rows`).
    pub(crate) drives: Vec<f64>,
    /// Whether each unique window is all-dark (skips the analog chain).
    pub(crate) dark: Vec<bool>,
    /// Flat normalized column outputs (`uniques × physical cols`).
    pub(crate) ys: Vec<f64>,
    /// Accumulator planes for the blocked complex MVM kernel.
    pub(crate) scratch: BatchScratch,
    /// One window's digitized physical-column outputs.
    pub(crate) raw: Vec<i64>,
    /// Recovered signed partials of the unique windows
    /// (`uniques × logical cols`).
    pub(crate) recovered: Vec<i64>,
    /// The execution's output: per-pixel signed partials
    /// (`pixels × logical cols`, row-major).
    pub(crate) partials: Vec<i64>,
    /// Stacked per-channel partials of a WDM multi-channel execution
    /// (`channels × pixels × logical cols`, channel-major; see
    /// [`crate::tile::execute_channels_into`]).
    pub(crate) channel_partials: Vec<i64>,
    /// Reusable im2col drive buffers (executor-level).
    pub(crate) drive: TileDrive,
    /// Reusable `(ky, kx, channel)` row-decode taps for im2col gathering
    /// (executor-level).
    pub(crate) taps: Vec<(u32, u32, u32)>,
    /// Raw accumulator lanes for the executor's hot-path partial-sum
    /// reduction (`pixel_slots × out_channels`, saturated once at
    /// extraction; see
    /// [`oxbar_electronics::accumulator::Accumulator::saturation_limit`]).
    pub(crate) lanes: Vec<i64>,
}

impl Default for ExecArena {
    fn default() -> Self {
        Self {
            unique_of: Vec::new(),
            uniques: Vec::new(),
            table: Vec::new(),
            drives: Vec::new(),
            dark: Vec::new(),
            ys: Vec::new(),
            scratch: BatchScratch::default(),
            raw: Vec::new(),
            recovered: Vec::new(),
            partials: Vec::new(),
            channel_partials: Vec::new(),
            drive: TileDrive::empty(),
            taps: Vec::new(),
            lanes: Vec::new(),
        }
    }
}

impl ExecArena {
    /// The per-pixel signed partials the last
    /// [`crate::tile::CompiledTile::execute_into`] wrote, as a flat
    /// `pixels × cols` row-major matrix.
    #[must_use]
    pub fn partials(&self) -> &[i64] {
        &self.partials
    }

    /// Rows of [`Self::partials`], one `cols`-long slice per pixel.
    pub fn partial_rows(&self, cols: usize) -> impl Iterator<Item = &[i64]> {
        self.partials.chunks_exact(cols)
    }

    /// The stacked per-channel partials the last
    /// [`crate::tile::execute_channels_into`] wrote, as a flat
    /// channel-major `channels × pixels × cols` matrix.
    #[must_use]
    pub fn channel_partials(&self) -> &[i64] {
        &self.channel_partials
    }
}
