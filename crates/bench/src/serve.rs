//! `serve` perf snapshot: batched weight-stationary serving vs
//! one-request-at-a-time cold execution on the *same* request trace,
//! emitted as machine-readable `BENCH_serve.json` at the workspace root.
//!
//! Every case replays one deterministic open-loop trace over the stock
//! serving catalog through a differently configured [`ServeEngine`]; the
//! headline compares the batched engine (weight-stationary tile caches,
//! same-model coalescing) against the cold baseline (single-request
//! dispatch, zero cache budget — every request reprograms its PCM tiles
//! and recompiles its transfer matrices). A second pair of cases pins the
//! cache-thrash scenario: a budget that holds only some of the catalog,
//! served interleaved vs batched.
//!
//! Latencies come from [`replay_latencies`]: the engine measures each
//! batch's wall time, and the queueing timeline is replayed with the
//! trace's arrival ticks mapped to milliseconds so that the offered load
//! is ~80% of the case's own saturated throughput.
//!
//! The report also carries each catalog model's *analytic* throughput
//! ceiling from the paper's system model ([`oxbar_core::Chip`]), so the
//! measured simulator-level numbers sit next to the modeled
//! hardware-level IPS in one artifact.

use oxbar_core::{Chip, ChipConfig};
use oxbar_serve::loadgen::{replay_latencies, MixEntry, OpenLoop};
use oxbar_serve::protocol::{Client, ClientFrame, ServerFrame};
use oxbar_serve::request::request_seed;
use oxbar_serve::{
    catalog, BatchPolicy, ChipStats, FaultPlan, InferRequest, LatencySummary, ModelId,
    PlacementPolicy, RequestId, ServeConfig, ServeEngine, Server, ServerConfig,
};
use oxbar_sim::SimConfig;
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::time::Duration;

/// The headline speedup target (from the issue's acceptance criteria).
pub const TARGET_SPEEDUP: f64 = 5.0;

/// Offered load for latency replay, as a fraction of the case's own
/// saturated throughput.
const REPLAY_LOAD: f64 = 0.8;

/// One admitted model's static facts.
#[derive(Debug, Clone, Serialize)]
pub struct ModelReport {
    /// Model name (from the stock catalog).
    pub name: String,
    /// Weight-stationary tile footprint, in crossbar cells.
    pub footprint_cells: usize,
    /// Analytic inferences/s for this network on the paper's optimal
    /// chip configuration (`oxbar_core::Chip`), for context against the
    /// measured serving numbers.
    pub analytic_ips: f64,
}

/// One serving configuration replayed over the shared trace.
#[derive(Debug, Clone, Serialize)]
pub struct CaseResult {
    /// Case name.
    pub name: String,
    /// Requests in the trace.
    pub requests: usize,
    /// Batch-size cap of the policy.
    pub max_batch: usize,
    /// Coalescing window of the policy, in ticks.
    pub max_wait: u64,
    /// Global weight-stationary budget, in cells (summed over chips on a
    /// multi-chip cluster).
    pub budget_cells: usize,
    /// Per-chip cell budgets of the serving cluster; a single entry is
    /// the classic one-chip engine.
    pub chip_budgets: Vec<usize>,
    /// Whether the pipelined prewarm scheduler stage was on.
    pub prewarm: bool,
    /// Summed batch *execution* time of the drain (ms) — what the
    /// dispatch pipeline spends serving requests. With the pipelined
    /// scheduler on, PCM programming runs on the prewarm stage and is
    /// not on this path (see `elapsed_ms` for the end-to-end figure).
    pub wall_ms: f64,
    /// End-to-end drain time (ms), including off-path prewarm
    /// programming and scheduler overhead.
    pub elapsed_ms: f64,
    /// Saturated throughput: `requests / wall_ms`, in requests/s.
    pub throughput_rps: f64,
    /// Median request latency at 80% offered load (ms).
    pub p50_ms: f64,
    /// 99th-percentile request latency at 80% offered load (ms).
    pub p99_ms: f64,
    /// 99th-percentile latency over each model's *first* batch — the
    /// cold-start tail the pipelined prewarm stage exists to remove.
    pub p99_cold_start_ms: f64,
    /// Mean request latency at 80% offered load (ms).
    pub mean_ms: f64,
    /// Deadline misses during the replay.
    pub deadline_misses: usize,
    /// Tile-cache hit rate across all models.
    pub hit_rate: f64,
    /// Whole-model cache evictions forced by the budget.
    pub evictions: u64,
    /// Cross-chip snapshot migrations an over-budget chip made instead of
    /// evicting (always 0 on a single chip).
    pub migrations: u64,
    /// Prewarm stages dispatched by the pipelined scheduler.
    pub prewarms: u64,
    /// Tiles programmed + compiled off the critical path.
    pub prewarmed_tiles: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// `cold wall_ms / this wall_ms`; `null` for the cold baseline
    /// itself.
    pub speedup_vs_cold: Option<f64>,
    /// Per-chip occupancy / eviction / migration / hit breakdown, in
    /// chip-index order.
    pub per_chip: Vec<ChipStats>,
}

/// The closed-loop loopback section: the network front end driven over
/// real sockets by concurrent client threads, cross-checked for byte
/// identity against the in-process engine on the same trace.
#[derive(Debug, Clone, Serialize)]
pub struct ClosedLoopReport {
    /// Concurrent client connections (each its own socket + thread).
    pub connections: usize,
    /// Requests each connection served, one at a time (closed loop).
    pub waves: usize,
    /// Total requests over the wire (`connections × waves`).
    pub requests: usize,
    /// Whether every wire response matched the in-process engine fed the
    /// same trace, byte for byte. Anything but `true` is a correctness
    /// failure, not a perf regression.
    pub byte_identical: bool,
    /// End-to-end wall time of the client run (connect → last Bye), ms.
    pub wall_ms: f64,
    /// Median per-request latency measured at the clients (socket
    /// round-trip including batching delay), ms.
    pub wire_p50_ms: f64,
    /// 99th-percentile client-measured latency, ms.
    pub wire_p99_ms: f64,
    /// Mean client-measured latency, ms.
    pub wire_mean_ms: f64,
    /// Median latency from the round-aware queueing replay of the same
    /// trace (the engine-level figure, free of socket noise), ms.
    pub replay_p50_ms: f64,
    /// 99th-percentile round-aware replay latency, ms.
    pub replay_p99_ms: f64,
    /// Mean round-aware replay latency, ms.
    pub replay_mean_ms: f64,
}

/// One fault-injected replay of the shared trace: a chip killed at a
/// fixed dispatch sequence number, everything the failure surface must
/// account for.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCase {
    /// Requests that completed with an answer.
    pub completions: usize,
    /// Requests shed with a structured notice (deadline unreachable or
    /// no healthy chip).
    pub shed: u64,
    /// Requests that vanished without a completion *or* a shed notice.
    /// Anything but 0 is a correctness failure.
    pub lost: u64,
    /// Batches re-executed after a fault (failover + transient retries).
    pub retried: u64,
    /// Snapshot-restore recoveries of unreplicated models.
    pub recoveries: u64,
    /// Wall time spent restoring snapshots onto surviving chips (ms).
    pub recovery_ms: f64,
    /// 99th-percentile request latency at the no-fault case's offered
    /// load (ms) — directly comparable to `no_fault_p99_ms`.
    pub p99_ms: f64,
    /// Whether every surviving request answered byte-identically to the
    /// never-faulted cluster. Anything but `true` is a correctness
    /// failure.
    pub survivors_byte_identical: bool,
    /// Per-chip health / retry / shed breakdown after the run.
    pub per_chip: Vec<ChipStats>,
}

/// The fault-injection section: the shared trace replayed on a two-chip
/// cluster with chip 1 killed mid-trace, replicated vs unreplicated,
/// against the no-fault baseline.
#[derive(Debug, Clone, Serialize)]
pub struct FaultInjectionReport {
    /// Requests in the trace.
    pub requests: usize,
    /// Global batch dispatch sequence number the kill lands on
    /// (mid-trace: half the no-fault run's batch count).
    pub kill_seq: u64,
    /// 99th-percentile latency of the same trace with no fault (ms).
    pub no_fault_p99_ms: f64,
    /// `Replicated(2)`: the kill fails over to live replicas.
    pub replicated: FaultCase,
    /// `LeastLoaded` single residency: the kill forces snapshot
    /// recovery onto the survivor.
    pub unreplicated: FaultCase,
    /// `replicated.p99_ms / no_fault_p99_ms` — the degradation budget
    /// (acceptance: ≤ 2.0).
    pub p99_ratio_replicated_vs_no_fault: f64,
}

/// One comparison window of the drift section: a contiguous span of the
/// trace graded element-wise against the drift-free reference run.
#[derive(Debug, Clone, Serialize)]
pub struct DriftWindow {
    /// Requests in the window.
    pub requests: usize,
    /// Output elements compared.
    pub elements: usize,
    /// Worst absolute output deviation from the reference.
    pub max_abs_delta: i64,
    /// Fraction of output elements that differ from the reference.
    pub error_rate: f64,
}

/// The drift/self-healing section: a long multi-drain trace on a device
/// whose PCM tiles age one virtual tick per dispatched batch, replayed
/// with online recalibration on and off, graded against the same trace
/// with drift disabled.
#[derive(Debug, Clone, Serialize)]
pub struct DriftRecalReport {
    /// Requests in the trace.
    pub requests: usize,
    /// Drains the trace was split into (aging advances at drain
    /// boundaries).
    pub waves: usize,
    /// Wall-clock seconds one virtual tick represents.
    pub drift_tick_seconds: f64,
    /// The analytic accuracy budget: ticks until the worst-case level
    /// slips half an LSB.
    pub budget_ticks: u64,
    /// Budget breaches the health monitor flagged on the recalibrating
    /// run.
    pub breaches: u64,
    /// Recalibration plans the scheduler dispatched.
    pub recalibrations: u64,
    /// Tiles reprogrammed by those plans.
    pub recalibrated_tiles: u64,
    /// Requests that vanished without a completion or a shed notice on
    /// the recalibrating run. Anything but 0 is a correctness failure.
    pub lost: u64,
    /// Degraded→Healthy transitions on the recalibrating run: the chip
    /// degrades on breach and heals once recalibration clears the
    /// backlog. Zero is a correctness failure. (Final-instant health is
    /// phase-dependent — tile cohorts re-cross the budget on a rotating
    /// schedule — so the section grades the transition count, not the
    /// end state.)
    pub heals: u64,
    /// Whether the non-recalibrating run ended the trace `Degraded`
    /// (without recalibration a breach can never heal).
    pub unhealed_degraded: bool,
    /// The in-budget run-up band `[n/8, n/2)`: past the pristine head
    /// (whose near-zero tile ages would understate the error rate every
    /// in-budget engine actually runs at — analog readout perturbs most
    /// output elements by ±1 code even one tick after programming) and
    /// spanning the age ramp up to the first breach. This is the
    /// "fresh-program level" the late window is graded against.
    pub fresh_window: DriftWindow,
    /// The recalibrating run's last trace quarter.
    pub recal_late_window: DriftWindow,
    /// The non-recalibrating run's last trace quarter.
    pub norecal_late_window: DriftWindow,
    /// Whether the late-window max|Δ| and error rate returned to the
    /// fresh-program level (recalibration bounds every tile's age by
    /// the budget, so the late window samples the same in-budget age
    /// range as the fresh band) *and* beat the unhealed run. The
    /// fresh-level comparison carries a small tolerance (10% on max|Δ|,
    /// +0.01 on error rate) because two windows of different request
    /// mixes jitter by a few ±1-code elements — an order of magnitude
    /// below the unhealed run's drift.
    pub accuracy_recovered: bool,
    /// p99 request latency with recalibration on (ms), at the shared
    /// offered load.
    pub p99_with_recal_ms: f64,
    /// p99 request latency with recalibration off (ms).
    pub p99_without_recal_ms: f64,
    /// `p99_with_recal_ms / p99_without_recal_ms` — the cost of
    /// self-healing (acceptance: ≤ 2.0; recalibration rides the spare
    /// stage slots, not the critical path).
    pub p99_ratio_recal_vs_no_recal: f64,
}

/// The autoregressive transformer section: token-by-token sequences
/// against the tiny decoder (`catalog::llm_tiny`) served through the
/// same scheduler, tile cache, and batcher as the CNN traffic. The
/// dense stack (QKV/output/FFN projections + LM head) is
/// weight-stationary; the per-token attention matmuls run on the
/// uncached dynamic MVM path.
#[derive(Debug, Clone, Serialize)]
pub struct LlmReport {
    /// Sequences decoded in the steady-state measurement (a separate
    /// cold sequence feeds the first-token figure).
    pub sequences: usize,
    /// Decode steps per sequence.
    pub steps: usize,
    /// Tokens decoded across the steady-state sequences.
    pub tokens: u64,
    /// Steady-state decode throughput on the warm engine, tokens/s.
    pub tokens_per_sec: f64,
    /// Wall time of the cold first-token batch (pays PCM tile
    /// programming and transfer-matrix compilation — prewarm is off on
    /// purpose so the cost is visible), ms.
    pub first_token_ms: f64,
    /// Mean wall time of a steady-state token batch, ms.
    pub steady_token_ms: f64,
    /// Tile-cache hit rate of the dense stack after warmup — the
    /// weight-stationary claim for autoregressive serving (≈ 1.0: the
    /// dynamic attention passes never touch the cache).
    pub steady_hit_rate: f64,
    /// p99 CNN request latency in the mixed CNN + LLM replay, ms.
    pub mixed_cnn_p99_ms: f64,
    /// Whether the mixed CNN + LLM drain — completions *and* token
    /// streams — was byte-identical between 1 and 4 dispatch workers.
    /// Anything but `true` is a correctness failure.
    pub byte_identical: bool,
    /// Tokens emitted == sequences × steps everywhere, nothing lost or
    /// duplicated. Anything but `true` is a correctness failure.
    pub token_conservation: bool,
}

/// The full machine-readable snapshot (`BENCH_serve.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Snapshot identifier (`"serve"`).
    pub bench: String,
    /// `"quick"` (CI smoke) or `"full"`.
    pub mode: String,
    /// Time unit of the per-case numbers (`"ms"`).
    pub unit: String,
    /// The headline speedup target.
    pub target_speedup: f64,
    /// Whether the batched case met the target against the cold baseline;
    /// `null` in quick mode (the smoke trace is too short to amortize the
    /// first-compile cost, so only the full trace is graded).
    pub achieved: Option<bool>,
    /// Heap allocations of one warm serving round (a 4-request
    /// same-model batch through a fully resident engine), measured by the
    /// binary's counting global allocator; `null` when no counting
    /// allocator is installed (library tests).
    pub warm_round_allocations: Option<u64>,
    /// The admitted catalog, in admission order.
    pub models: Vec<ModelReport>,
    /// Per-configuration results; cold baseline first, headline second.
    pub cases: Vec<CaseResult>,
    /// The network front end driven over loopback sockets.
    pub closed_loop: ClosedLoopReport,
    /// Mid-trace chip-kill behavior: failover, recovery, shedding.
    pub fault_injection: FaultInjectionReport,
    /// Tile aging, budget-driven degradation, and online recalibration.
    pub drift_recal: DriftRecalReport,
    /// Autoregressive token serving against the tiny transformer.
    pub llm: LlmReport,
}

/// The shared trace: a weighted open-loop mix over the whole catalog.
fn workload(requests: usize) -> OpenLoop {
    OpenLoop {
        mix: vec![
            MixEntry {
                model: oxbar_serve::ModelId(0),
                weight: 3,
            },
            MixEntry {
                model: oxbar_serve::ModelId(1),
                weight: 2,
            },
            MixEntry {
                model: oxbar_serve::ModelId(2),
                weight: 2,
            },
            MixEntry {
                model: oxbar_serve::ModelId(3),
                weight: 3,
            },
        ],
        requests,
        interarrival: 1,
        seed: 2023,
        deadline_slack: Some(100),
    }
}

/// Builds an engine over the stock catalog. A non-empty `chips` list
/// serves a multi-chip cluster with those per-chip budgets (least-loaded
/// placement, so the catalog spreads); empty is the classic single chip
/// of `budget` cells.
fn engine_with(policy: BatchPolicy, budget: usize, prewarm: bool, chips: &[usize]) -> ServeEngine {
    let device = SimConfig::noisy(128, 128).with_threads(1);
    let mut engine = ServeEngine::new(
        ServeConfig::new(device)
            .with_policy(policy)
            .with_cache_budget(budget)
            .with_workers(1)
            .with_prewarm(prewarm)
            .with_chips(chips.to_vec())
            .with_placement(PlacementPolicy::LeastLoaded),
    );
    for spec in catalog::stock_catalog() {
        engine.admit(spec).expect("catalog models admit");
    }
    engine
}

/// Replays the shared trace through one engine configuration.
fn run_case(
    name: &str,
    requests: usize,
    policy: BatchPolicy,
    budget: usize,
    prewarm: bool,
    chips: &[usize],
) -> CaseResult {
    let mut engine = engine_with(policy, budget, prewarm, chips);
    let load = workload(requests);
    for request in load.trace(|m| engine.input_shape(m)) {
        engine.submit(request);
    }
    let drain_start = std::time::Instant::now();
    let trace = engine.drain_traced();
    let elapsed_ms = drain_start.elapsed().as_secs_f64() * 1e3;
    let (completions, batch_ms) = (trace.completions, trace.batch_ms);
    let wall_ms: f64 = batch_ms.iter().sum();
    let throughput_rps = requests as f64 / (wall_ms / 1e3);
    // Replay the queueing timeline at 80% of this case's saturation,
    // using the dispatch rounds the drain actually ran (round-aware
    // replay: concurrent batches within a round overlap).
    let tick_ms = wall_ms / requests as f64 / REPLAY_LOAD;
    let (latencies, deadline_misses) =
        replay_latencies(&completions, &batch_ms, &trace.rounds, tick_ms);
    let summary = LatencySummary::of(&latencies);
    // Cold-start tail: latencies of the requests in each model's first
    // dispatched batch.
    let mut first_batch_of_model: Vec<Option<usize>> = vec![None; engine.registry().len()];
    for c in &completions {
        let slot = &mut first_batch_of_model[c.model.0];
        *slot = Some(slot.map_or(c.batch_seq, |s| s.min(c.batch_seq)));
    }
    let cold_start: Vec<f64> = completions
        .iter()
        .zip(&latencies)
        .filter(|(c, _)| first_batch_of_model[c.model.0] == Some(c.batch_seq))
        .map(|(_, &l)| l)
        .collect();
    let cold_summary = LatencySummary::of(&cold_start);
    let stats = engine.stats();
    CaseResult {
        name: name.to_string(),
        requests,
        max_batch: policy.max_batch,
        max_wait: policy.max_wait,
        budget_cells: stats.budget_cells,
        chip_budgets: engine.config().effective_chip_budgets(),
        prewarm,
        wall_ms,
        elapsed_ms,
        throughput_rps,
        p50_ms: summary.p50_ms,
        p99_ms: summary.p99_ms,
        p99_cold_start_ms: cold_summary.p99_ms,
        mean_ms: summary.mean_ms,
        deadline_misses,
        hit_rate: stats.hit_rate(),
        evictions: stats.evictions,
        migrations: stats.migrations,
        prewarms: stats.prewarms,
        prewarmed_tiles: stats.prewarmed_tiles,
        mean_batch_size: stats.mean_batch_size(),
        speedup_vs_cold: None,
        per_chip: stats.chips,
    }
}

/// Connections the closed-loop loopback run drives concurrently.
const CLOSED_LOOP_CONNECTIONS: usize = 8;

/// The closed-loop trace entry for connection `c`, wave `w`: a model
/// from the stock catalog and the seed of its synthetic input. Pure
/// function, so the wire run and the in-process oracle replay the exact
/// same trace.
fn closed_loop_entry(c: usize, w: usize, waves: usize) -> (usize, u64) {
    let model = (c + w) % 4;
    let seed = request_seed(0xC105ED, (c * waves + w) as u64);
    (model, seed)
}

/// Drives the network front end over loopback: 8 concurrent connections
/// in closed loop (each submits its next request only when the previous
/// completed), then cross-checks every response byte-for-byte against
/// the in-process engine fed the same trace, and recovers engine-level
/// p50/p99 from the round-aware replay.
fn run_closed_loop(quick: bool) -> ClosedLoopReport {
    let waves = if quick { 3 } else { 10 };
    let connections = CLOSED_LOOP_CONNECTIONS;
    let requests = connections * waves;
    let engine = engine_with(BatchPolicy::new(16, 8), 4_000_000, true, &[]);
    let shapes: Vec<oxbar_nn::TensorShape> =
        (0..4).map(|i| engine.input_shape(ModelId(i))).collect();
    let server = Server::start(engine, ServerConfig::default()).expect("server binds loopback");
    let addr = server.addr();

    let run_start = std::time::Instant::now();
    let handles: Vec<std::thread::JoinHandle<Vec<(f64, oxbar_nn::reference::Tensor3)>>> = (0
        ..connections)
        .map(|c| {
            let shapes = shapes.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("loopback connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("read timeout");
                let mut client = Client::connect(stream).expect("handshake");
                (0..waves)
                    .map(|w| {
                        let (model, seed) = closed_loop_entry(c, w, waves);
                        let input = oxbar_nn::synthetic::activations(shapes[model], 6, seed);
                        let sent = std::time::Instant::now();
                        client
                            .send(&ClientFrame::Infer {
                                tag: w as u64,
                                model,
                                arrival: w as u64,
                                deadline: None,
                                input,
                            })
                            .expect("send over loopback");
                        match client.wait_completion(w as u64).expect("completion") {
                            ServerFrame::Completion { output, .. } => {
                                (sent.elapsed().as_secs_f64() * 1e3, output)
                            }
                            other => panic!("closed loop expected a completion, got {other:?}"),
                        }
                    })
                    .collect()
            })
        })
        .collect();
    let mut served: Vec<Vec<(f64, oxbar_nn::reference::Tensor3)>> = Vec::new();
    for handle in handles {
        served.push(handle.join().expect("client thread"));
    }
    let wall_ms = run_start.elapsed().as_secs_f64() * 1e3;
    server.shutdown();

    // In-process oracle on the identical trace. RequestId counts
    // submission order, so sorting completions by id maps completion
    // `c * waves + w` back to connection `c`, wave `w`.
    let mut oracle = engine_with(BatchPolicy::new(16, 8), 4_000_000, true, &[]);
    for c in 0..connections {
        for w in 0..waves {
            let (model, seed) = closed_loop_entry(c, w, waves);
            oracle
                .try_submit(InferRequest {
                    model: ModelId(model),
                    input: oxbar_nn::synthetic::activations(shapes[model], 6, seed),
                    arrival: w as u64,
                    deadline: None,
                })
                .expect("oracle submits");
        }
    }
    let trace = oracle.drain_traced();
    let mut by_id = trace.completions.clone();
    by_id.sort_by_key(|d| d.id);
    let byte_identical = served.iter().enumerate().all(|(c, outputs)| {
        outputs
            .iter()
            .enumerate()
            .all(|(w, (_, output))| by_id[c * waves + w].output == *output)
    });

    let wire: Vec<f64> = served.iter().flatten().map(|(ms, _)| *ms).collect();
    let wire_summary = LatencySummary::of(&wire);
    let engine_wall: f64 = trace.batch_ms.iter().sum();
    let tick_ms = engine_wall / requests as f64 / REPLAY_LOAD;
    let (replay, _) = replay_latencies(&trace.completions, &trace.batch_ms, &trace.rounds, tick_ms);
    let replay_summary = LatencySummary::of(&replay);
    ClosedLoopReport {
        connections,
        waves,
        requests,
        byte_identical,
        wall_ms,
        wire_p50_ms: wire_summary.p50_ms,
        wire_p99_ms: wire_summary.p99_ms,
        wire_mean_ms: wire_summary.mean_ms,
        replay_p50_ms: replay_summary.p50_ms,
        replay_p99_ms: replay_summary.p99_ms,
        replay_mean_ms: replay_summary.mean_ms,
    }
}

/// What one fault-section replay produced.
struct FaultRun {
    /// Request id → output values, survivors only.
    outputs: BTreeMap<RequestId, Vec<i64>>,
    sheds: u64,
    p99_ms: f64,
    tick_ms: f64,
    stats: oxbar_serve::EngineStats,
}

/// Replays the shared trace on a two-chip cluster under `placement` and
/// `plan`, **in-process** (batch sequence numbers — and therefore the
/// kill point — must not depend on socket coalescing timing). `tick_ms`
/// pins the replay's offered load to the no-fault baseline's so the p99
/// figures are comparable; `None` derives it from this run's own wall.
fn run_fault_trace(
    requests: usize,
    placement: PlacementPolicy,
    plan: FaultPlan,
    tick_ms: Option<f64>,
) -> FaultRun {
    let device = SimConfig::noisy(128, 128).with_threads(1);
    let mut engine = ServeEngine::new(
        ServeConfig::new(device)
            .with_policy(BatchPolicy::new(16, 8))
            .with_workers(1)
            .with_prewarm(true)
            .with_chips(vec![4_000_000, 4_000_000])
            .with_placement(placement)
            .with_faults(plan),
    );
    for spec in catalog::stock_catalog() {
        engine.admit(spec).expect("catalog models admit");
    }
    for request in workload(requests).trace(|m| engine.input_shape(m)) {
        engine.submit(request);
    }
    let trace = engine.drain_traced();
    let wall_ms: f64 = trace.batch_ms.iter().sum();
    let tick_ms = tick_ms.unwrap_or(wall_ms / requests as f64 / REPLAY_LOAD);
    let (latencies, _) =
        replay_latencies(&trace.completions, &trace.batch_ms, &trace.rounds, tick_ms);
    FaultRun {
        outputs: trace
            .completions
            .iter()
            .map(|c| (c.id, c.output.data().to_vec()))
            .collect(),
        sheds: trace.sheds.len() as u64,
        p99_ms: LatencySummary::of(&latencies).p99_ms,
        tick_ms,
        stats: engine.stats(),
    }
}

/// The fault-injection section: chip 1 killed halfway through the
/// no-fault run's dispatch sequence, once with every model replicated on
/// both chips (failover) and once with single residency (snapshot
/// recovery), graded against the no-fault baseline.
fn run_fault_injection(requests: usize) -> FaultInjectionReport {
    let baseline = run_fault_trace(
        requests,
        PlacementPolicy::Replicated(2),
        FaultPlan::new(),
        None,
    );
    let kill_seq = baseline.stats.batches / 2;
    let grade = |run: FaultRun| -> FaultCase {
        // Byte identity against the no-fault cluster: admission seeds
        // are global, so placement never changes what a model answers.
        let survivors_byte_identical = run
            .outputs
            .iter()
            .all(|(id, out)| baseline.outputs.get(id) == Some(out));
        FaultCase {
            completions: run.outputs.len(),
            shed: run.sheds,
            lost: (requests as u64).saturating_sub(run.outputs.len() as u64 + run.sheds),
            retried: run.stats.retries,
            recoveries: run.stats.recoveries,
            recovery_ms: run.stats.recovery_ms,
            p99_ms: run.p99_ms,
            survivors_byte_identical,
            per_chip: run.stats.chips,
        }
    };
    let replicated = grade(run_fault_trace(
        requests,
        PlacementPolicy::Replicated(2),
        FaultPlan::new().kill_chip(kill_seq, 1),
        Some(baseline.tick_ms),
    ));
    let unreplicated = grade(run_fault_trace(
        requests,
        PlacementPolicy::LeastLoaded,
        FaultPlan::new().kill_chip(kill_seq, 1),
        Some(baseline.tick_ms),
    ));
    FaultInjectionReport {
        requests,
        kill_seq,
        no_fault_p99_ms: baseline.p99_ms,
        p99_ratio_replicated_vs_no_fault: replicated.p99_ms / baseline.p99_ms,
        replicated,
        unreplicated,
    }
}

/// One virtual tick of the drift section, in wall-clock seconds. At
/// this rate the noisy 128×128 device's half-LSB budget is 43 ticks —
/// large enough that the per-drain recalibration cap keeps up with the
/// whole catalog's aging (the steady state is sustainable), small
/// enough that the drift trace crosses it.
const DRIFT_TICK_SECONDS: f64 = 1e3;

/// What one drift-section replay produced.
struct DriftTraceRun {
    /// Request id → output values.
    outputs: BTreeMap<RequestId, Vec<i64>>,
    sheds: u64,
    p99_ms: f64,
    tick_ms: f64,
    stats: oxbar_serve::EngineStats,
    /// Final health of the single serving chip.
    health: oxbar_serve::ChipHealth,
}

/// Replays the shared trace in `waves` drains (tile age advances at
/// drain boundaries, so one long drain would never age anything
/// mid-trace). `aging` turns the per-tick drift clock on; `recal` the
/// scheduler's recalibration stage. `tick_ms` pins the replay's offered
/// load (see [`run_fault_trace`]).
fn run_drift_trace(
    requests: usize,
    waves: usize,
    aging: bool,
    recal: bool,
    tick_ms: Option<f64>,
) -> DriftTraceRun {
    let mut device = SimConfig::noisy(128, 128).with_threads(1);
    if aging {
        device = device.with_drift_tick(oxbar_units::Time::from_seconds(DRIFT_TICK_SECONDS));
    }
    let mut engine = ServeEngine::new(
        ServeConfig::new(device)
            .with_policy(BatchPolicy::new(16, 8))
            .with_cache_budget(4_000_000)
            .with_workers(1)
            .with_prewarm(true)
            .with_recalibration(recal),
    );
    for spec in catalog::stock_catalog() {
        engine.admit(spec).expect("catalog models admit");
    }
    let all: Vec<InferRequest> = workload(requests).trace(|m| engine.input_shape(m));
    let per_wave = requests.div_ceil(waves);
    let mut traces = Vec::new();
    for chunk in all.chunks(per_wave) {
        for request in chunk {
            engine.submit(request.clone());
        }
        traces.push(engine.drain_traced());
    }
    let wall_ms: f64 = traces.iter().flat_map(|t| &t.batch_ms).sum();
    let tick_ms = tick_ms.unwrap_or(wall_ms / requests as f64 / REPLAY_LOAD);
    let mut outputs = BTreeMap::new();
    let mut sheds = 0u64;
    let mut latencies = Vec::new();
    for trace in &traces {
        let (wave_latencies, _) =
            replay_latencies(&trace.completions, &trace.batch_ms, &trace.rounds, tick_ms);
        latencies.extend(wave_latencies);
        sheds += trace.sheds.len() as u64;
        for c in &trace.completions {
            outputs.insert(c.id, c.output.data().to_vec());
        }
    }
    let stats = engine.stats();
    let health = stats.chips[0].health;
    DriftTraceRun {
        outputs,
        sheds,
        p99_ms: LatencySummary::of(&latencies).p99_ms,
        tick_ms,
        stats,
        health,
    }
}

/// Grades one span of request ids `[lo, hi)` against the drift-free
/// reference outputs.
fn drift_window(run: &DriftTraceRun, reference: &DriftTraceRun, lo: u64, hi: u64) -> DriftWindow {
    let mut requests = 0usize;
    let mut elements = 0usize;
    let mut mismatches = 0usize;
    let mut max_delta = 0i64;
    for (id, outputs) in &run.outputs {
        if id.0 < lo || id.0 >= hi {
            continue;
        }
        let Some(baseline) = reference.outputs.get(id) else {
            continue;
        };
        requests += 1;
        elements += baseline.len();
        for (a, b) in outputs.iter().zip(baseline) {
            if a != b {
                mismatches += 1;
                max_delta = max_delta.max((a - b).abs());
            }
        }
    }
    DriftWindow {
        requests,
        elements,
        max_abs_delta: max_delta,
        error_rate: mismatches as f64 / elements.max(1) as f64,
    }
}

/// The drift section: a long trace split into enough drains to walk
/// tile ages well past the accuracy budget, with recalibration on and
/// off, graded against the identical trace with drift disabled. The
/// trace is longer than the shared one on purpose: the budget is 43
/// ticks and ages advance roughly 1.7 ticks per two-request drain, so
/// the first trace half must span the whole `0..=budget` age ramp and
/// the tail must sit in the recalibrated steady state.
fn run_drift_recal(quick: bool) -> DriftRecalReport {
    let requests = if quick { 96 } else { 192 };
    let waves = requests / 2;
    let budget_ticks = oxbar_sim::DeviceExecutor::new(
        SimConfig::noisy(128, 128)
            .with_threads(1)
            .with_drift_tick(oxbar_units::Time::from_seconds(DRIFT_TICK_SECONDS)),
    )
    .drift_budget_ticks()
    .expect("aging device has a bounded budget");
    // The drift-free reference: same trace, same engine, drift off. Its
    // outputs are the accuracy yardstick and its own wall pins the
    // offered load for both aged runs.
    let reference = run_drift_trace(requests, waves, false, true, None);
    let recal = run_drift_trace(requests, waves, true, true, Some(reference.tick_ms));
    let norecal = run_drift_trace(requests, waves, true, false, Some(reference.tick_ms));

    let n = requests as u64;
    let quarter = n / 4;
    // Fresh window: the in-budget run-up band — after the pristine
    // first eighth (tiles near age 0, unrepresentatively low error
    // rate) and through the age ramp toward the first breach. Late
    // window: the last quarter, deep in the recalibrated steady state
    // where no tile ever *serves* past the budget. Recalibration bounds
    // the late window to the same age range the fresh band walked, so
    // its divergence from the drift-free reference must not exceed the
    // fresh band's — and must not exceed the unhealed engine's, whose
    // tile ages grow without bound.
    let fresh_window = drift_window(&recal, &reference, n / 8, n / 2);
    let recal_late_window = drift_window(&recal, &reference, n - quarter, n);
    let norecal_late_window = drift_window(&norecal, &reference, n - quarter, n);
    let max_f64 = |w: &DriftWindow| w.max_abs_delta as f64;
    let accuracy_recovered = max_f64(&recal_late_window) <= max_f64(&fresh_window) * 1.1
        && recal_late_window.error_rate <= fresh_window.error_rate + 0.01
        && recal_late_window.error_rate < norecal_late_window.error_rate;
    DriftRecalReport {
        requests,
        waves,
        drift_tick_seconds: DRIFT_TICK_SECONDS,
        budget_ticks,
        breaches: recal.stats.drift_budget_breaches,
        recalibrations: recal.stats.recalibrations,
        recalibrated_tiles: recal.stats.recalibrated_tiles,
        lost: n.saturating_sub(recal.outputs.len() as u64 + recal.sheds),
        heals: recal.stats.drift_heals,
        unhealed_degraded: norecal.health == oxbar_serve::ChipHealth::Degraded,
        fresh_window,
        recal_late_window,
        norecal_late_window,
        accuracy_recovered,
        p99_with_recal_ms: recal.p99_ms,
        p99_without_recal_ms: norecal.p99_ms,
        p99_ratio_recal_vs_no_recal: recal.p99_ms / norecal.p99_ms,
    }
}

/// The LLM section. Three measurements:
///
/// 1. **Cold first token vs steady tokens** — a fresh engine (prewarm
///    off) decodes one sequence; the step-0 batch pays PCM programming
///    and compilation, every later step reuses the resident tiles.
/// 2. **Steady-state throughput + hit rate** — the now-warm engine
///    decodes `sequences` more; the dense stack's cache-stat delta over
///    exactly this phase gives the post-warmup hit rate.
/// 3. **Mixed CNN + LLM** — two sequences interleaved with LeNet batch
///    traffic, replayed at 1 and 4 workers for byte identity, with the
///    CNN p99 measured from the round-aware queueing replay.
fn run_llm(quick: bool) -> LlmReport {
    let steps = if quick { 8 } else { 32 };
    let sequences = 4usize;
    let config = ServeConfig::new(SimConfig::noisy(128, 128).with_threads(1))
        .with_policy(BatchPolicy::new(16, 8))
        .with_cache_budget(4_000_000)
        .with_workers(1)
        .with_prewarm(false);

    // Phase 1: cold sequence on a fresh engine.
    let mut engine = ServeEngine::new(config.clone());
    let llm = engine.admit(catalog::llm_tiny()).expect("llm_tiny admits");
    engine
        .begin_sequence(llm, 5, steps, 0, 1)
        .expect("cold sequence begins");
    let cold_trace = engine.drain_traced();
    let mut first_token_ms = 0.0;
    let mut steady_batches = Vec::new();
    for c in &cold_trace.completions {
        let Some(tc) = &c.sequence else { continue };
        if tc.step == 0 {
            first_token_ms = cold_trace.batch_ms[c.batch_seq];
        } else {
            steady_batches.push(cold_trace.batch_ms[c.batch_seq]);
        }
    }
    let steady_token_ms = if steady_batches.is_empty() {
        0.0
    } else {
        steady_batches.iter().sum::<f64>() / steady_batches.len() as f64
    };
    let warm = engine.stats().models[llm.0].cache;

    // Phase 2: steady state on the warm engine.
    for s in 0..sequences {
        let prompt = (3 + 7 * s as u32) % 32;
        engine
            .begin_sequence(llm, prompt, steps, s as u64, 1)
            .expect("steady sequence begins");
    }
    let steady_trace = engine.drain_traced();
    let steady_wall_ms: f64 = steady_trace.batch_ms.iter().sum();
    let stats = engine.stats();
    let cache = &stats.models[llm.0].cache;
    let (hits, misses) = (cache.hits - warm.hits, cache.misses - warm.misses);
    let steady_hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let tokens = (sequences * steps) as u64;
    let tokens_per_sec = tokens as f64 / (steady_wall_ms / 1e3);
    let phase_conservation = stats.tokens == ((sequences + 1) * steps) as u64;

    // Phase 3: mixed CNN + LLM, 1 vs 4 workers.
    let mixed = |workers: usize| {
        let mut engine = ServeEngine::new(config.clone().with_workers(workers));
        let lenet = engine.admit(catalog::lenet5_model()).expect("lenet admits");
        let llm = engine.admit(catalog::llm_tiny()).expect("llm_tiny admits");
        let seqs: Vec<_> = (0..2u32)
            .map(|s| {
                engine
                    .begin_sequence(llm, 1 + 11 * s, steps, u64::from(s), 1)
                    .expect("mixed sequence begins")
            })
            .collect();
        for i in 0..8u64 {
            engine.submit(InferRequest {
                model: lenet,
                input: oxbar_nn::synthetic::activations(engine.input_shape(lenet), 6, i),
                arrival: i,
                deadline: None,
            });
        }
        let trace = engine.drain_traced();
        let tokens: Vec<Vec<u32>> = seqs
            .iter()
            .map(|&s| engine.sequence_tokens(s).to_vec())
            .collect();
        (trace, tokens)
    };
    let (trace1, tokens1) = mixed(1);
    let (trace4, tokens4) = mixed(4);
    let byte_identical = trace1.completions == trace4.completions && tokens1 == tokens4;
    let mixed_wall: f64 = trace1.batch_ms.iter().sum();
    let tick_ms = mixed_wall / trace1.completions.len() as f64 / REPLAY_LOAD;
    let (latencies, _) = replay_latencies(
        &trace1.completions,
        &trace1.batch_ms,
        &trace1.rounds,
        tick_ms,
    );
    let cnn: Vec<f64> = trace1
        .completions
        .iter()
        .zip(&latencies)
        .filter(|(c, _)| c.sequence.is_none())
        .map(|(_, &l)| l)
        .collect();
    let mixed_cnn_p99_ms = LatencySummary::of(&cnn).p99_ms;
    let mixed_tokens: usize = tokens1.iter().map(Vec::len).sum();
    let token_conservation = phase_conservation && mixed_tokens == 2 * steps;

    LlmReport {
        sequences,
        steps,
        tokens,
        tokens_per_sec,
        first_token_ms,
        steady_token_ms,
        steady_hit_rate,
        mixed_cnn_p99_ms,
        byte_identical,
        token_conservation,
    }
}

/// Heap allocations of one warm serving round: a 4-request same-model
/// batch through a fully resident pipelined engine. Requires the
/// `bench_serve` binary's counting allocator; returns `None` elsewhere.
fn warm_round_allocations() -> Option<u64> {
    if !crate::alloc_counter::active() {
        return None;
    }
    let mut engine = engine_with(BatchPolicy::new(8, 8), 4_000_000, true, &[]);
    let inputs: Vec<_> = (0..4u64)
        .map(|i| {
            oxbar_nn::synthetic::activations(engine.input_shape(oxbar_serve::ModelId(0)), 6, i)
        })
        .collect();
    // Two rounds to program the tiles and settle the executor arena pool.
    for _ in 0..2 {
        for input in &inputs {
            engine.submit_simple(oxbar_serve::ModelId(0), input.clone());
        }
        engine.drain();
    }
    for input in &inputs {
        engine.submit_simple(oxbar_serve::ModelId(0), input.clone());
    }
    let before = crate::alloc_counter::count();
    engine.drain();
    Some(crate::alloc_counter::count() - before)
}

/// Static per-model facts: footprint (measured by serving one request on
/// an unconstrained engine) and the analytic chip-model IPS.
fn model_reports() -> Vec<ModelReport> {
    let chip = Chip::new(ChipConfig::paper_optimal());
    let mut engine = engine_with(BatchPolicy::SINGLE, usize::MAX, false, &[]);
    catalog::stock_catalog()
        .into_iter()
        .enumerate()
        .map(|(index, spec)| {
            let id = oxbar_serve::ModelId(index);
            let input = oxbar_nn::synthetic::activations(engine.input_shape(id), 6, 1);
            engine.submit_simple(id, input);
            engine.drain();
            ModelReport {
                analytic_ips: chip.evaluate(&spec.network).ips,
                name: spec.name,
                footprint_cells: engine.stats().models[index].cache.cells,
            }
        })
        .collect()
}

/// Runs the snapshot. `quick` keeps the trace small enough for a CI
/// smoke step; the full mode replays the headline trace.
#[must_use]
pub fn generate(quick: bool) -> ServeReport {
    let requests = if quick { 24 } else { 120 };
    let models = model_reports();
    // A budget that can hold the two lightest models but not the whole
    // catalog: the cache-thrash operating point.
    let total_cells: usize = models.iter().map(|m| m.footprint_cells).sum();
    let tight = total_cells / 3;

    let cold = run_case(
        "open_loop/cold_serial",
        requests,
        BatchPolicy::SINGLE,
        0,
        false,
        &[],
    );
    let mut cases = vec![cold];
    // The headline: batched weight-stationary serving with the pipelined
    // prewarm scheduler (the engine's default configuration).
    let mut batched = run_case(
        "open_loop/batched_weight_stationary",
        requests,
        BatchPolicy::new(16, 8),
        4_000_000,
        true,
        &[],
    );
    batched.speedup_vs_cold = Some(cases[0].wall_ms / batched.wall_ms);
    cases.push(batched);
    // Multi-chip: the same total budget sharded across two chips with
    // least-loaded placement — the catalog spreads, and the per-chip
    // breakdown lands in the report.
    let mut dual = run_case(
        "open_loop/dual_chip_least_loaded",
        requests,
        BatchPolicy::new(16, 8),
        4_000_000,
        true,
        &[2_000_000, 2_000_000],
    );
    dual.speedup_vs_cold = Some(cases[0].wall_ms / dual.wall_ms);
    cases.push(dual);
    if !quick {
        // Ablation: the same batched engine without the pipelined stage
        // (every model's first batch stalls on PCM programming).
        let mut no_prewarm = run_case(
            "open_loop/batched_no_prewarm",
            requests,
            BatchPolicy::new(16, 8),
            4_000_000,
            false,
            &[],
        );
        no_prewarm.speedup_vs_cold = Some(cases[0].wall_ms / no_prewarm.wall_ms);
        cases.push(no_prewarm);
        for (name, policy) in [
            ("open_loop/tight_budget_interleaved", BatchPolicy::SINGLE),
            ("open_loop/tight_budget_batched", BatchPolicy::new(16, 8)),
        ] {
            let mut case = run_case(name, requests, policy, tight, true, &[]);
            case.speedup_vs_cold = Some(cases[0].wall_ms / case.wall_ms);
            cases.push(case);
        }
        // The sharding payoff: at the same per-chip budget that thrashes
        // a single chip, a second chip keeps more of the catalog
        // resident — fewer evictions, no worse tail.
        let mut tight_dual = run_case(
            "open_loop/tight_budget_dual_chip",
            requests,
            BatchPolicy::new(16, 8),
            tight,
            true,
            &[tight, tight],
        );
        tight_dual.speedup_vs_cold = Some(cases[0].wall_ms / tight_dual.wall_ms);
        cases.push(tight_dual);
    }
    let achieved = (!quick).then(|| cases[1].speedup_vs_cold.unwrap_or(0.0) >= TARGET_SPEEDUP);
    ServeReport {
        bench: "serve".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        unit: "ms".to_string(),
        target_speedup: TARGET_SPEEDUP,
        achieved,
        warm_round_allocations: warm_round_allocations(),
        models,
        cases,
        closed_loop: run_closed_loop(quick),
        fault_injection: run_fault_injection(requests),
        drift_recal: run_drift_recal(quick),
        llm: run_llm(quick),
    }
}

/// Prints the serving table.
pub fn render(report: &ServeReport) {
    println!(
        "# serve — batched weight-stationary serving vs cold per-request execution, {} mode",
        report.mode
    );
    println!("models (footprint = compiled tile cells; analytic = chip-model ceiling):");
    for m in &report.models {
        println!(
            "  {:<24} {:>9} cells   {:>12.0} IPS analytic",
            m.name, m.footprint_cells, m.analytic_ips
        );
    }
    println!(
        "{:<38} {:>5} {:>5} {:>3} {:>8} {:>8} {:>7} {:>7} {:>8} {:>6} {:>5} {:>4} {:>8}",
        "case",
        "chips",
        "batch",
        "pw",
        "wall_ms",
        "elap_ms",
        "p50_ms",
        "p99_ms",
        "p99cold",
        "hit",
        "evict",
        "migr",
        "speedup"
    );
    for c in &report.cases {
        println!(
            "{:<38} {:>5} {:>5} {:>3} {:>8.1} {:>8.1} {:>7.2} {:>7.2} {:>8.2} {:>5.0}% {:>5} {:>4} {:>8}",
            c.name,
            c.chip_budgets.len(),
            c.max_batch,
            if c.prewarm { "on" } else { "off" },
            c.wall_ms,
            c.elapsed_ms,
            c.p50_ms,
            c.p99_ms,
            c.p99_cold_start_ms,
            c.hit_rate * 100.0,
            c.evictions,
            c.migrations,
            c.speedup_vs_cold
                .map_or_else(|| "—".to_string(), |s| format!("{s:.1}x")),
        );
        if c.chip_budgets.len() > 1 {
            for chip in &c.per_chip {
                println!(
                    "    chip{}: {}/{} cells, {} models, {:.0}% hit, {} evict, {}/{} migr in/out",
                    chip.chip,
                    chip.occupancy_cells,
                    chip.budget_cells,
                    chip.models,
                    chip.hit_rate() * 100.0,
                    chip.evictions,
                    chip.migrations_in,
                    chip.migrations_out,
                );
            }
        }
    }
    let cl = &report.closed_loop;
    println!(
        "closed loop over loopback: {} conns x {} waves, wall {:.0} ms, \
         wire p50/p99 {:.2}/{:.2} ms, replay p50/p99 {:.2}/{:.2} ms, byte-identical: {}",
        cl.connections,
        cl.waves,
        cl.wall_ms,
        cl.wire_p50_ms,
        cl.wire_p99_ms,
        cl.replay_p50_ms,
        cl.replay_p99_ms,
        if cl.byte_identical { "yes" } else { "NO (bug)" },
    );
    let fi = &report.fault_injection;
    println!(
        "fault injection (chip 1 killed at dispatch seq {}, no-fault p99 {:.2} ms):",
        fi.kill_seq, fi.no_fault_p99_ms
    );
    for (name, case) in [
        ("replicated(2)", &fi.replicated),
        ("unreplicated", &fi.unreplicated),
    ] {
        println!(
            "  {:<14} {} done, {} shed, {} lost, {} retried, {} recoveries ({:.2} ms), \
             p99 {:.2} ms, survivors byte-identical: {}",
            name,
            case.completions,
            case.shed,
            case.lost,
            case.retried,
            case.recoveries,
            case.recovery_ms,
            case.p99_ms,
            if case.survivors_byte_identical {
                "yes"
            } else {
                "NO (bug)"
            },
        );
    }
    println!(
        "  replicated p99 vs no-fault: {:.2}x (budget 2.0x)",
        fi.p99_ratio_replicated_vs_no_fault
    );
    let dr = &report.drift_recal;
    println!(
        "drift recal ({} reqs / {} drains, tick {:.0e} s, budget {} ticks): \
         {} breaches, {} recals / {} tiles, {} lost, {} heals, unhealed degraded: {}",
        dr.requests,
        dr.waves,
        dr.drift_tick_seconds,
        dr.budget_ticks,
        dr.breaches,
        dr.recalibrations,
        dr.recalibrated_tiles,
        dr.lost,
        dr.heals,
        if dr.unhealed_degraded {
            "yes"
        } else {
            "NO (bug)"
        },
    );
    println!(
        "  max|Δ|/err vs drift-free: fresh {}/{:.4}, late+recal {}/{:.4}, late no-recal {}/{:.4} \
         — recovered: {}",
        dr.fresh_window.max_abs_delta,
        dr.fresh_window.error_rate,
        dr.recal_late_window.max_abs_delta,
        dr.recal_late_window.error_rate,
        dr.norecal_late_window.max_abs_delta,
        dr.norecal_late_window.error_rate,
        if dr.accuracy_recovered {
            "yes"
        } else {
            "NO (bug)"
        },
    );
    println!(
        "  p99 with/without recal: {:.2}/{:.2} ms = {:.2}x (budget 2.0x)",
        dr.p99_with_recal_ms, dr.p99_without_recal_ms, dr.p99_ratio_recal_vs_no_recal
    );
    let llm = &report.llm;
    println!(
        "llm (llm_tiny, {} seqs x {} steps): {:.0} tokens/s steady, \
         first token {:.2} ms vs steady {:.3} ms, steady hit {:.1}%, \
         mixed CNN p99 {:.2} ms, byte-identical: {}, conservation: {}",
        llm.sequences,
        llm.steps,
        llm.tokens_per_sec,
        llm.first_token_ms,
        llm.steady_token_ms,
        llm.steady_hit_rate * 100.0,
        llm.mixed_cnn_p99_ms,
        if llm.byte_identical {
            "yes"
        } else {
            "NO (bug)"
        },
        if llm.token_conservation {
            "yes"
        } else {
            "NO (bug)"
        },
    );
    match report.warm_round_allocations {
        Some(allocs) => println!("warm round allocations: {allocs} (4-request resident batch)"),
        None => println!("warm round allocations: not measured (no counting allocator)"),
    }
    match report.achieved {
        Some(met) => println!(
            "target {:.0}x batched vs cold: {}",
            report.target_speedup,
            if met { "MET" } else { "NOT MET" }
        ),
        None => println!(
            "target {:.0}x: graded on the full trace only (quick mode is a smoke run)",
            report.target_speedup
        ),
    }
}

/// Generates the snapshot and writes `BENCH_serve.json` at the workspace
/// root.
///
/// # Panics
///
/// Panics if the snapshot cannot be serialized or written.
#[must_use]
pub fn run(quick: bool) -> ServeReport {
    let report = generate(quick);
    let path = crate::workspace_root().join("BENCH_serve.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&path, json + "\n").expect("write BENCH_serve.json");
    println!("[written] {}", path.display());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_valid_schema() {
        let report = generate(true);
        assert_eq!(report.bench, "serve");
        assert_eq!(report.mode, "quick");
        assert_eq!(report.unit, "ms");
        assert_eq!(report.models.len(), 4);
        for m in &report.models {
            assert!(m.footprint_cells > 0);
            assert!(m.analytic_ips > 0.0);
        }
        assert_eq!(
            report.cases.len(),
            3,
            "quick mode: cold + batched + dual-chip smoke"
        );
        for c in &report.cases {
            assert!(c.wall_ms > 0.0);
            assert!(c.elapsed_ms >= c.wall_ms * 0.5, "elapsed sanity");
            assert!(c.throughput_rps > 0.0);
            assert!(c.p50_ms > 0.0 && c.p99_ms >= c.p50_ms);
            assert!(c.p99_cold_start_ms > 0.0);
            assert!((0.0..=1.0).contains(&c.hit_rate));
            assert!(!c.chip_budgets.is_empty());
            assert_eq!(c.per_chip.len(), c.chip_budgets.len());
            assert_eq!(c.budget_cells, c.chip_budgets.iter().sum::<usize>());
        }
        assert_eq!(report.cases[0].speedup_vs_cold, None);
        assert!(!report.cases[0].prewarm, "cold baseline stays unpipelined");
        assert!(report.cases[1].speedup_vs_cold.is_some());
        assert!(
            report.cases[1].prewarm,
            "the smoke case exercises the pipelined path"
        );
        assert!(
            report.cases[1].prewarms > 0,
            "the pipelined scheduler must dispatch prewarm stages"
        );
        assert_eq!(report.cases[0].hit_rate, 0.0, "budget 0 never hits");
        let dual = &report.cases[2];
        assert_eq!(dual.chip_budgets.len(), 2, "the smoke run shards 2 chips");
        assert!(
            dual.per_chip.iter().all(|c| c.models > 0),
            "least-loaded placement spreads the catalog across both chips"
        );
        let chip_occ: usize = dual.per_chip.iter().map(|c| c.occupancy_cells).sum();
        assert!(chip_occ > 0, "serving leaves resident state somewhere");
        assert_eq!(report.achieved, None, "quick mode is not graded");
        assert_eq!(
            report.warm_round_allocations, None,
            "library tests run without the counting allocator"
        );
        let fi = &report.fault_injection;
        assert_eq!(fi.requests, report.cases[0].requests);
        for case in [&fi.replicated, &fi.unreplicated] {
            assert_eq!(case.lost, 0, "a chip kill must never lose a request");
            assert_eq!(
                case.completions as u64 + case.shed,
                fi.requests as u64,
                "every request completes or sheds"
            );
            assert!(
                case.survivors_byte_identical,
                "failover/recovery must not change answers"
            );
            assert!(case.p99_ms > 0.0);
            // Per-chip counters reconcile with the engine totals.
            let chip_retries: u64 = case.per_chip.iter().map(|c| c.retries).sum();
            let chip_sheds: u64 = case.per_chip.iter().map(|c| c.sheds).sum();
            assert_eq!(chip_retries, case.retried);
            assert_eq!(chip_sheds, case.shed);
            assert_eq!(
                case.per_chip
                    .iter()
                    .filter(|c| c.health == oxbar_serve::ChipHealth::Failed)
                    .count(),
                1,
                "exactly the killed chip is marked failed"
            );
        }
        assert!(fi.replicated.retried >= 1, "the kill forces failovers");
        assert_eq!(
            fi.replicated.recoveries, 0,
            "replicas absorb the kill without recovery"
        );
        assert!(
            fi.unreplicated.recoveries >= 1,
            "single residency must recover via snapshot restore"
        );
        assert!(fi.no_fault_p99_ms > 0.0);
        assert!(fi.p99_ratio_replicated_vs_no_fault.is_finite());
        let cl = &report.closed_loop;
        assert_eq!(cl.connections, 8, "the loopback run is 8-wide");
        assert_eq!(cl.requests, cl.connections * cl.waves);
        assert!(
            cl.byte_identical,
            "wire responses must equal the in-process engine"
        );
        assert!(cl.wall_ms > 0.0);
        assert!(cl.wire_p50_ms > 0.0 && cl.wire_p99_ms >= cl.wire_p50_ms);
        assert!(cl.replay_p50_ms > 0.0 && cl.replay_p99_ms >= cl.replay_p50_ms);
        let llm = &report.llm;
        assert_eq!(llm.sequences, 4);
        assert_eq!(llm.tokens, (llm.sequences * llm.steps) as u64);
        assert!(llm.tokens_per_sec > 0.0);
        assert!(
            llm.first_token_ms > llm.steady_token_ms,
            "the cold first token must pay PCM programming: first {} ms vs steady {} ms",
            llm.first_token_ms,
            llm.steady_token_ms
        );
        assert!(
            llm.steady_hit_rate > 0.99,
            "the dense stack is weight-stationary after warmup, got {}",
            llm.steady_hit_rate
        );
        assert!(llm.mixed_cnn_p99_ms > 0.0);
        assert!(
            llm.byte_identical,
            "mixed CNN + LLM traffic must be worker-invariant"
        );
        assert!(llm.token_conservation, "every step emits exactly one token");
        let dr = &report.drift_recal;
        assert!(dr.requests >= report.cases[0].requests);
        assert!(dr.waves > 1, "aging needs multi-drain traces");
        assert!(dr.budget_ticks > 0);
        assert!(dr.breaches > 0, "the trace must cross the accuracy budget");
        assert!(dr.recalibrations > 0 && dr.recalibrated_tiles > 0);
        assert_eq!(dr.lost, 0, "self-healing must never lose a request");
        assert!(dr.heals > 0, "recalibration must heal the chip");
        assert!(dr.unhealed_degraded, "without recal the breach must stick");
        assert!(
            dr.accuracy_recovered,
            "late-window accuracy must return to the fresh-program level: \
             fresh {}/{:.4}, late {}/{:.4}",
            dr.fresh_window.max_abs_delta,
            dr.fresh_window.error_rate,
            dr.recal_late_window.max_abs_delta,
            dr.recal_late_window.error_rate,
        );
        for window in [
            &dr.fresh_window,
            &dr.recal_late_window,
            &dr.norecal_late_window,
        ] {
            assert!(window.requests > 0 && window.elements > 0);
            assert!((0.0..=1.0).contains(&window.error_rate));
        }
        assert!(dr.p99_with_recal_ms > 0.0 && dr.p99_without_recal_ms > 0.0);
        assert!(
            dr.p99_ratio_recal_vs_no_recal <= 2.0,
            "recalibration must stay off the critical path: {:.2}x",
            dr.p99_ratio_recal_vs_no_recal
        );
    }
}
