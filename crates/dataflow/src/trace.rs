//! Cycle-by-cycle SRAM demand traces (SCALE-sim's signature output).
//!
//! For a fold of a layer, emits the per-cycle addresses the array demands:
//! which input-SRAM words feed the rows and which accumulator words absorb
//! the columns. Intended for small layers (verification, SRAM bank-conflict
//! studies); the analytic engine remains the tool for whole networks.

use crate::fold::FoldPlan;
use oxbar_nn::Conv2d;
use serde::{Deserialize, Serialize};

/// One cycle's demands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCycle {
    /// Cycle index within the fold (pixel-major: `pixel × batch + image`).
    pub cycle: u64,
    /// Image within the batch.
    pub image: usize,
    /// Output pixel `(y, x)` being computed.
    pub pixel: (usize, usize),
    /// Input-SRAM word addresses read this cycle (one per occupied row).
    /// Address = flattened HWC offset of the activation element; `None`
    /// marks zero-padding taps that need no read.
    pub input_reads: Vec<Option<usize>>,
    /// Accumulator lanes written this cycle (one per occupied column).
    pub accumulator_writes: Vec<usize>,
}

/// Generates the demand trace of one `(group, row_fold, col_fold)` fold.
///
/// # Examples
///
/// ```
/// use oxbar_dataflow::trace::trace_fold;
/// use oxbar_dataflow::FoldPlan;
/// use oxbar_nn::{Conv2d, TensorShape};
///
/// let conv = Conv2d::new("c", TensorShape::new(4, 4, 2), 3, 3, 4, 1, 1);
/// let plan = FoldPlan::plan(&conv, 32, 8, 1);
/// let trace = trace_fold(&conv, &plan, 0, 0, 0, 2);
/// // 16 output pixels × batch 2 = 32 cycles.
/// assert_eq!(trace.len(), 32);
/// ```
///
/// # Panics
///
/// Panics if the fold indices are out of range for the plan.
#[must_use]
pub fn trace_fold(
    conv: &Conv2d,
    plan: &FoldPlan,
    group: usize,
    row_fold: usize,
    col_fold: usize,
    batch: usize,
) -> Vec<TraceCycle> {
    assert!(group < plan.groups, "group {group} out of range");
    assert!(
        row_fold < plan.row_folds,
        "row fold {row_fold} out of range"
    );
    assert!(
        col_fold < plan.col_folds,
        "col fold {col_fold} out of range"
    );

    let out = conv.output_shape();
    let in_per_group = conv.in_c_per_group();
    let out_per_group = conv.out_c_per_group();
    let row_offset = row_fold * plan.array_rows;
    let rows = (conv.filter_rows() - row_offset).min(plan.array_rows);
    let logical_per_fold = (plan.array_cols / plan.cols_per_output).max(1);
    let col_offset = col_fold * logical_per_fold;
    let cols = (out_per_group - col_offset).min(logical_per_fold);

    let mut cycles = Vec::with_capacity(out.h * out.w * batch);
    let mut cycle = 0u64;
    for oy in 0..out.h {
        for ox in 0..out.w {
            for image in 0..batch {
                let input_reads = (0..rows)
                    .map(|r| {
                        let flat = row_offset + r;
                        let ky = flat / (conv.k_w * in_per_group);
                        let kx = (flat / in_per_group) % conv.k_w;
                        let ci = flat % in_per_group;
                        let iy = (oy * conv.stride + ky) as isize - conv.padding as isize;
                        let ix = (ox * conv.stride + kx) as isize - conv.padding as isize;
                        if iy < 0
                            || ix < 0
                            || iy >= conv.input.h as isize
                            || ix >= conv.input.w as isize
                        {
                            None // zero padding: no SRAM read
                        } else {
                            let c = group * in_per_group + ci;
                            Some((iy as usize * conv.input.w + ix as usize) * conv.input.c + c)
                        }
                    })
                    .collect();
                let accumulator_writes = (0..cols)
                    .map(|c| {
                        let oc = group * out_per_group + col_offset + c;
                        (oy * out.w + ox) * out.c + oc
                    })
                    .collect();
                cycles.push(TraceCycle {
                    cycle,
                    image,
                    pixel: (oy, ox),
                    input_reads,
                    accumulator_writes,
                });
                cycle += 1;
            }
        }
    }
    cycles
}

/// Summarizes a trace: total reads (excluding padding), unique addresses,
/// and the reuse factor (reads per unique address).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Cycles in the trace.
    pub cycles: u64,
    /// Non-padding input reads.
    pub input_reads: u64,
    /// Distinct input addresses touched.
    pub unique_inputs: u64,
    /// Average reads per distinct address (the im2col reuse the input SRAM
    /// exists to serve).
    pub reuse_factor: f64,
}

/// Computes the summary of a fold trace.
#[must_use]
pub fn summarize(trace: &[TraceCycle]) -> TraceSummary {
    let mut unique = std::collections::BTreeSet::new();
    let mut reads = 0u64;
    for cycle in trace {
        for read in cycle.input_reads.iter().flatten() {
            unique.insert(*read);
            reads += 1;
        }
    }
    TraceSummary {
        cycles: trace.len() as u64,
        input_reads: reads,
        unique_inputs: unique.len() as u64,
        reuse_factor: if unique.is_empty() {
            0.0
        } else {
            reads as f64 / unique.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_nn::TensorShape;

    fn small_conv() -> Conv2d {
        Conv2d::new("t", TensorShape::new(4, 4, 2), 3, 3, 4, 1, 1)
    }

    #[test]
    fn cycle_count_matches_plan() {
        let conv = small_conv();
        let plan = FoldPlan::plan(&conv, 32, 8, 1);
        let trace = trace_fold(&conv, &plan, 0, 0, 0, 3);
        assert_eq!(trace.len() as u64, plan.compute_cycles(3));
    }

    #[test]
    fn padding_taps_skip_sram() {
        let conv = small_conv();
        let plan = FoldPlan::plan(&conv, 32, 8, 1);
        let trace = trace_fold(&conv, &plan, 0, 0, 0, 1);
        // The (0,0) output pixel with padding 1 reads 5 padded taps of the
        // 3×3 window (top row + left column), i.e. 5·2 channels = 10 None.
        let first = &trace[0];
        assert_eq!(first.pixel, (0, 0));
        let padded = first.input_reads.iter().filter(|r| r.is_none()).count();
        assert_eq!(padded, 10);
    }

    #[test]
    fn interior_pixel_reads_full_window() {
        let conv = small_conv();
        let plan = FoldPlan::plan(&conv, 32, 8, 1);
        let trace = trace_fold(&conv, &plan, 0, 0, 0, 1);
        let interior = trace
            .iter()
            .find(|c| c.pixel == (1, 1))
            .expect("interior pixel");
        assert!(interior.input_reads.iter().all(Option::is_some));
        assert_eq!(interior.input_reads.len(), 18); // 3·3·2
    }

    #[test]
    fn addresses_in_bounds() {
        let conv = small_conv();
        let plan = FoldPlan::plan(&conv, 32, 8, 1);
        let trace = trace_fold(&conv, &plan, 0, 0, 0, 1);
        let input_words = conv.input.elements();
        let output_words = conv.output_shape().elements();
        for cycle in &trace {
            for read in cycle.input_reads.iter().flatten() {
                assert!(*read < input_words);
            }
            for write in &cycle.accumulator_writes {
                assert!(*write < output_words);
            }
        }
    }

    #[test]
    fn im2col_reuse_visible_in_summary() {
        let conv = small_conv();
        let plan = FoldPlan::plan(&conv, 32, 8, 1);
        let trace = trace_fold(&conv, &plan, 0, 0, 0, 1);
        let summary = summarize(&trace);
        // Every interior activation is read by up to 9 windows.
        assert!(summary.reuse_factor > 3.0);
        assert_eq!(summary.unique_inputs, conv.input.elements() as u64);
    }

    #[test]
    fn row_folds_slice_the_window() {
        // 18 filter rows on an 8-row array: fold 1 starts at flat index 8.
        let conv = small_conv();
        let plan = FoldPlan::plan(&conv, 8, 8, 1);
        assert_eq!(plan.row_folds, 3);
        let fold1 = trace_fold(&conv, &plan, 0, 1, 0, 1);
        assert_eq!(fold1[0].input_reads.len(), 8);
    }

    #[test]
    #[should_panic(expected = "row fold 9 out of range")]
    fn out_of_range_fold_panics() {
        let conv = small_conv();
        let plan = FoldPlan::plan(&conv, 32, 8, 1);
        let _ = trace_fold(&conv, &plan, 0, 9, 0, 1);
    }
}
