//! `device_mvm` perf snapshot: field-walk vs compiled transfer-matrix
//! device-level MVM, emitted as machine-readable `BENCH_device_mvm.json`
//! at the workspace root so successive PRs can track the trajectory.
//!
//! Every case times the *same* workload on [`MvmEngine::FieldWalk`]
//! (the cell-by-cell propagation baseline, "before") and
//! [`MvmEngine::Compiled`] (the transfer-matrix fast path, "after"); the
//! headline case is the release-mode LeNet-5 device-level forward pass,
//! whose target is a ≥10× speedup.

use oxbar_nn::synthetic;
use oxbar_nn::zoo::lenet5;
use oxbar_nn::{Conv2d, TensorShape};
use oxbar_photonics::crossbar::{CrossbarConfig, CrossbarSimulator};
use oxbar_photonics::transfer::CompiledCrossbar;
use oxbar_sim::{DeviceExecutor, MvmEngine, SimConfig};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// The headline speedup target (from the issue's acceptance criteria).
pub const TARGET_SPEEDUP: f64 = 10.0;

/// One timed workload, on both engines.
#[derive(Debug, Clone, Serialize)]
pub struct CaseResult {
    /// Workload name.
    pub name: String,
    /// Timed iterations per engine (after one warm-up).
    pub iterations: usize,
    /// Per-iteration wall time on the field-walk baseline (ms).
    pub field_walk_ms: f64,
    /// Per-iteration wall time on the compiled path (ms). For forward
    /// workloads this is the weight-stationary steady state (programmed
    /// tiles reused across images, as the hardware runs).
    pub compiled_ms: f64,
    /// Cold-start compiled time (fresh executor every run: PCM
    /// programming + transfer-matrix compile + MVM). Equals `compiled_ms`
    /// for workloads without a reuse dimension.
    pub compiled_cold_ms: f64,
    /// `field_walk_ms / compiled_ms`.
    pub speedup: f64,
}

/// The full machine-readable snapshot (`BENCH_device_mvm.json`).
#[derive(Debug, Clone, Serialize)]
pub struct DeviceMvmReport {
    /// Snapshot identifier (`"device_mvm"`).
    pub bench: String,
    /// `"quick"` (CI smoke) or `"full"`.
    pub mode: String,
    /// Time unit of the per-case numbers (`"ms"`).
    pub unit: String,
    /// The headline speedup target.
    pub target_speedup: f64,
    /// Whether the LeNet-5 headline case met the target; `null` when the
    /// headline was not run (quick mode times smoke workloads only).
    pub achieved: Option<bool>,
    /// Per-workload results, headline first.
    pub cases: Vec<CaseResult>,
}

/// Times `f` for `iterations` runs (after one warm-up), per-run ms.
fn time_ms<F: FnMut()>(iterations: usize, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iterations {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iterations as f64
}

fn case<F, G, H>(
    name: &str,
    iterations: usize,
    mut field_walk: F,
    mut compiled_cold: G,
    compiled_warm: Option<H>,
) -> CaseResult
where
    F: FnMut(),
    G: FnMut(),
    H: FnMut(),
{
    let field_walk_ms = time_ms(iterations, &mut field_walk);
    let compiled_cold_ms = time_ms(iterations, &mut compiled_cold);
    let compiled_ms = match compiled_warm {
        Some(mut warm) => time_ms(iterations, &mut warm),
        None => compiled_cold_ms,
    };
    CaseResult {
        name: name.to_string(),
        iterations,
        field_walk_ms,
        compiled_ms,
        compiled_cold_ms,
        speedup: field_walk_ms / compiled_ms,
    }
}

/// A LeNet-5 device-level forward pass on the given engine and threads.
///
/// `compiled` (the headline number) is the weight-stationary steady
/// state: one executor keeps its programmed+compiled tiles across images,
/// exactly as the PCM hardware amortizes programming over inference.
/// `compiled_cold` rebuilds the executor every pass (programming +
/// compile + MVM); the field-walk baseline is always cold because the
/// oracle engine never caches.
fn lenet_case(name: &str, iterations: usize, threads: usize) -> CaseResult {
    let net = lenet5();
    let input = synthetic::activations(net.input(), 6, 77);
    let filters = synthetic::filter_banks(&net, 6, 78);
    let config = SimConfig::ideal(128, 128).with_threads(threads);
    let walk = DeviceExecutor::new(config.clone()).with_engine(MvmEngine::FieldWalk);
    let warm = DeviceExecutor::new(config.clone());
    let cold_config = config.clone();
    case(
        name,
        iterations,
        || {
            black_box(walk.forward(&net, &input, &filters).unwrap());
        },
        || {
            let fresh = DeviceExecutor::new(cold_config.clone());
            black_box(fresh.forward(&net, &input, &filters).unwrap());
        },
        Some(|| {
            black_box(warm.forward(&net, &input, &filters).unwrap());
        }),
    )
}

/// One padded conv layer (duplicate/dark windows) on a small array.
fn conv_case(iterations: usize) -> CaseResult {
    let conv = Conv2d::new("probe", TensorShape::new(12, 12, 3), 3, 3, 8, 1, 1);
    let input = synthetic::activations(conv.input, 6, 31);
    let bank = synthetic::filter_bank(&conv, 6, 32);
    let out = conv.output_shape();
    let pixels: Vec<usize> = (0..out.h * out.w).collect();
    let config = SimConfig::ideal(64, 32).with_threads(1);
    let walk = DeviceExecutor::new(config.clone()).with_engine(MvmEngine::FieldWalk);
    let warm = DeviceExecutor::new(config.clone());
    let cold_config = config.clone();
    case(
        "conv3x3_12x12x3/64x32/serial",
        iterations,
        || {
            black_box(walk.conv_pixels(&conv, &input, &bank, 0, &pixels));
        },
        || {
            let fresh = DeviceExecutor::new(cold_config.clone());
            black_box(fresh.conv_pixels(&conv, &input, &bank, 0, &pixels));
        },
        Some(|| {
            black_box(warm.conv_pixels(&conv, &input, &bank, 0, &pixels));
        }),
    )
}

/// The raw crossbar kernel: one `run_normalized` MVM, walk vs compiled.
fn kernel_case(size: usize, iterations: usize) -> CaseResult {
    let sim = CrossbarSimulator::ideal(CrossbarConfig::new(size, size));
    let inputs: Vec<f64> = (0..size).map(|i| (i % 17) as f64 / 16.0).collect();
    let weights: Vec<Vec<f64>> = (0..size)
        .map(|i| (0..size).map(|j| ((i + j) % 13) as f64 / 12.0).collect())
        .collect();
    let compiled = CompiledCrossbar::new(&sim, &weights);
    let mut out = vec![0.0; size];
    case::<_, _, fn()>(
        &format!("crossbar_mvm/{size}x{size}"),
        iterations,
        || {
            black_box(sim.run_normalized(black_box(&inputs), black_box(&weights)));
        },
        || {
            compiled.run_normalized_into(black_box(&inputs), &mut out);
            black_box(&out);
        },
        None,
    )
}

/// Runs the snapshot. `quick` keeps the workloads small enough for a CI
/// smoke step; the full mode times the LeNet-5 headline at 128×128.
#[must_use]
pub fn generate(quick: bool) -> DeviceMvmReport {
    let cases = if quick {
        vec![conv_case(2), kernel_case(32, 20)]
    } else {
        vec![
            lenet_case("lenet5_forward/128x128/serial", 3, 1),
            lenet_case("lenet5_forward/128x128/parallel", 3, 0),
            conv_case(10),
            kernel_case(128, 200),
        ]
    };
    let achieved = cases
        .iter()
        .find(|c| c.name.starts_with("lenet5_forward"))
        .map(|c| c.speedup >= TARGET_SPEEDUP);
    DeviceMvmReport {
        bench: "device_mvm".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        unit: "ms".to_string(),
        target_speedup: TARGET_SPEEDUP,
        achieved,
        cases,
    }
}

/// Prints the before/after table.
pub fn render(report: &DeviceMvmReport) {
    println!(
        "# device_mvm — field walk (before) vs compiled transfer matrix (after), {} mode",
        report.mode
    );
    println!("(compiled_ms = weight-stationary steady state; cold_ms = program+compile+MVM)");
    println!(
        "{:<36} {:>6} {:>16} {:>14} {:>10} {:>9}",
        "case", "iters", "field_walk_ms", "compiled_ms", "cold_ms", "speedup"
    );
    for c in &report.cases {
        println!(
            "{:<36} {:>6} {:>16.3} {:>14.3} {:>10.3} {:>8.1}x",
            c.name, c.iterations, c.field_walk_ms, c.compiled_ms, c.compiled_cold_ms, c.speedup
        );
    }
    match report.achieved {
        Some(met) => println!(
            "target {:.0}x on the LeNet-5 headline: {}",
            report.target_speedup,
            if met { "MET" } else { "NOT MET" }
        ),
        None => println!(
            "target {:.0}x: headline not run in {} mode",
            report.target_speedup, report.mode
        ),
    }
}

/// Generates the snapshot and writes `BENCH_device_mvm.json` at the
/// workspace root.
///
/// # Panics
///
/// Panics if the snapshot cannot be serialized or written.
#[must_use]
pub fn run(quick: bool) -> DeviceMvmReport {
    let report = generate(quick);
    let path = crate::workspace_root().join("BENCH_device_mvm.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&path, json + "\n").expect("write BENCH_device_mvm.json");
    println!("[written] {}", path.display());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_valid_schema() {
        let report = generate(true);
        assert_eq!(report.bench, "device_mvm");
        assert_eq!(report.mode, "quick");
        assert_eq!(report.unit, "ms");
        assert_eq!(
            report.achieved, None,
            "quick mode does not run the LeNet-5 headline"
        );
        assert!(!report.cases.is_empty());
        for c in &report.cases {
            assert!(c.field_walk_ms > 0.0);
            assert!(c.compiled_ms > 0.0);
            assert!((c.speedup - c.field_walk_ms / c.compiled_ms).abs() < 1e-9);
        }
    }
}
