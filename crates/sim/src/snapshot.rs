//! Serializable snapshots of a chip's programmed tile state.
//!
//! A PCM crossbar is **non-volatile**: once programmed, the array state
//! persists with no standby power, so "what is resident on this chip" is
//! durable state worth capturing. A [`ChipSnapshot`] records everything
//! needed to reconstruct an executor's weight-stationary cache
//! bit-exactly — the signed weight codes of every resident tile, the
//! per-tile seed its stochastic streams (PCM programming variation,
//! per-channel phase errors) were drawn from, and the admission-time
//! configuration — without touching the original filter banks.
//!
//! [`crate::DeviceExecutor::snapshot`] captures a chip;
//! [`crate::DeviceExecutor::restore`] rebuilds one. Because every tile is
//! a deterministic function of `(codes, config, seed, channel)`, the
//! restored chip's forward passes are byte-identical to the source chip's
//! — the property multi-chip serving uses to *migrate* a hot model
//! between chips without replaying its admission history.

use crate::config::SimConfig;
use oxbar_pcm::ProgramReport;
use serde::{Deserialize, Serialize};

/// One resident tile of a [`ChipSnapshot`]: the non-volatile codes plus
/// the deterministic seed that reconstructs its compiled state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileSnapshot {
    /// Network layer index the tile belongs to.
    pub layer: usize,
    /// Fold-tile index within the layer.
    pub tile: usize,
    /// WDM wavelength channel the compiled state serves.
    pub channel: usize,
    /// The per-tile seed ([`crate::config::tile_seed`]) the tile's
    /// stochastic streams were drawn from.
    pub seed: u64,
    /// Logical rows of the signed code matrix.
    pub rows: usize,
    /// Signed weight codes, flat column-major (`cols × rows`) — exactly
    /// [`crate::tile::CompiledTile::values`].
    pub values: Vec<i8>,
    /// The programming report of the original compile; restore verifies
    /// its recompile against this record.
    pub program: ProgramReport,
}

/// A full serializable image of one executor's programmed tile state.
///
/// Produced by [`crate::DeviceExecutor::snapshot`], consumed by
/// [`crate::DeviceExecutor::restore`]. Round-trips through the workspace
/// serde shim (`serde_json`), so chips can be persisted, shipped between
/// processes, or migrated between cluster slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSnapshot {
    /// The executor's full configuration, **including** its admission
    /// seed (`config.seed`) — per-tile seeds derive from it.
    pub config: SimConfig,
    /// The weight-stationary cell budget the cache admits against.
    pub cache_budget: usize,
    /// Lifetime cache-hit counter at capture time.
    pub hits: u64,
    /// Lifetime cache-miss counter at capture time.
    pub misses: u64,
    /// Every resident tile, in deterministic `(layer, tile, channel)`
    /// order.
    pub tiles: Vec<TileSnapshot>,
}

impl ChipSnapshot {
    /// Total crossbar cells of compiled state the snapshot carries
    /// (what the restored cache's occupancy will be).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.tiles
            .iter()
            .map(|t| {
                let cols = t.values.len().checked_div(t.rows).unwrap_or(0);
                t.rows * cols * self.config.mapping.columns_per_output()
            })
            .sum()
    }
}
