//! One network session: the per-connection read loop, request
//! validation, and reply routing of the serving front end.
//!
//! # Session lifecycle
//!
//! 1. On accept the server sends [`ServerFrame::Hello`] with the resident
//!    catalog and the session's operating limits.
//! 2. The session thread then reads [`ClientFrame`]s until the peer says
//!    [`ClientFrame::Goodbye`] (answered with [`ServerFrame::Bye`] after
//!    the session's in-flight requests drain), closes the stream on a
//!    frame boundary, or damages the framing.
//! 3. Validation failures are *answers*, not disconnects: an unknown
//!    model, a bad tensor, or a full queue draws a
//!    [`ServerFrame::Error`] and the session keeps serving. Only framing
//!    damage (truncated/oversized frames, I/O errors) ends the session,
//!    because the byte stream cannot be resynchronized after it.
//! 4. A mid-request disconnect is a non-event for the engine: the
//!    request still executes, and its completion is dropped when the
//!    write to the dead peer fails.
//!
//! Completions are written by the server's dispatcher thread (not this
//! one); both serialize frames through the connection's writer lock, so
//! frames never interleave mid-bytes.

use crate::cluster::ChipHealth;
use crate::engine::SubmitError;
use crate::protocol::{
    self, ClientFrame, ErrorCode, FrameError, ServerFrame, WireModel, MAX_FRAME_BYTES,
};
use crate::request::{InferRequest, ModelId};
use crate::server::Shared;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One live connection's write half, shared between the session thread
/// (errors, acks) and the dispatcher thread (completions).
pub(crate) struct Conn {
    /// Session id (accept order) — used to find this session's in-flight
    /// requests at Goodbye time.
    pub(crate) id: u64,
    writer: Mutex<TcpStream>,
}

impl Conn {
    pub(crate) fn new(id: u64, writer: TcpStream) -> Self {
        Self {
            id,
            writer: Mutex::new(writer),
        }
    }

    /// Writes one frame; an error means the peer is gone, which every
    /// caller treats as "drop the reply".
    pub(crate) fn send(&self, frame: &ServerFrame) -> io::Result<()> {
        let mut writer = self.writer.lock().expect("writer lock");
        protocol::write_message(&mut *writer, frame)
    }

    /// Shuts the socket down (both halves), unblocking the session
    /// thread's blocking read. Used by server shutdown.
    pub(crate) fn shutdown(&self) {
        let writer = self.writer.lock().expect("writer lock");
        let _ = writer.shutdown(std::net::Shutdown::Both);
    }
}

/// What one handled frame means for the read loop.
enum Flow {
    Continue,
    Close,
}

/// Runs one session to completion. Never panics on peer input.
pub(crate) fn run(mut reader: TcpStream, conn: &Arc<Conn>, shared: &Arc<Shared>) {
    if conn.send(&hello(shared)).is_err() {
        return;
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = conn.send(&ServerFrame::Bye);
            return;
        }
        match protocol::read_message::<ClientFrame>(&mut reader) {
            Ok(frame) => match handle(frame, conn, shared) {
                Flow::Continue => {}
                Flow::Close => return,
            },
            // Clean close on a frame boundary: the normal end.
            Err(FrameError::Closed) => return,
            // A read deadline expired. The server never configures one
            // today, but if a deployment does (e.g. to poll the
            // shutdown flag), the stream is still synchronized — loop
            // and keep waiting.
            Err(FrameError::Timeout) => {}
            // The frame was delimited but its payload didn't decode: the
            // stream is still synchronized, so answer and keep serving.
            Err(FrameError::Malformed(detail)) => {
                if conn
                    .send(&ServerFrame::Error {
                        tag: None,
                        code: ErrorCode::MalformedFrame,
                        detail,
                    })
                    .is_err()
                {
                    return;
                }
            }
            // Framing damage: the byte stream cannot be resynchronized.
            // Best-effort error, then close.
            Err(e @ (FrameError::Truncated | FrameError::Oversized(_) | FrameError::Io(_))) => {
                let _ = conn.send(&ServerFrame::Error {
                    tag: None,
                    code: ErrorCode::MalformedFrame,
                    detail: e.to_string(),
                });
                return;
            }
        }
    }
}

/// The greeting: resident catalog + session limits.
fn hello(shared: &Arc<Shared>) -> ServerFrame {
    let core = shared.core.lock().expect("core lock");
    let registry = core.engine.registry();
    let models = (0..registry.len())
        .map(|index| {
            let id = ModelId(index);
            let shape = registry.input_shape(id);
            WireModel {
                model: index,
                name: registry.spec(id).name.clone(),
                input_h: shape.h,
                input_w: shape.w,
                input_c: shape.c,
            }
        })
        .collect();
    ServerFrame::Hello {
        models,
        max_frame: MAX_FRAME_BYTES as u64,
        queue_capacity: shared.queue_capacity as u64,
    }
}

fn handle(frame: ClientFrame, conn: &Arc<Conn>, shared: &Arc<Shared>) -> Flow {
    match frame {
        ClientFrame::Infer {
            tag,
            model,
            arrival,
            deadline,
            input,
        } => {
            // Device range check on the untrusted activations: values a
            // debug build would overflow on must never reach execution.
            if let Some(&bad) = input.data().iter().find(|v| **v < 0 || **v > shared.v_max) {
                return reply(
                    conn,
                    &ServerFrame::Error {
                        tag: Some(tag),
                        code: ErrorCode::BadInput,
                        detail: format!(
                            "activation {bad} outside the device range 0..={}",
                            shared.v_max
                        ),
                    },
                );
            }
            let request = InferRequest {
                model: ModelId(model),
                input,
                arrival,
                deadline,
            };
            let verdict = {
                let mut core = shared.core.lock().expect("core lock");
                // Backpressure: refuse before the queue grows past the
                // configured depth. Checked under the same lock as the
                // submit so the bound is exact.
                if core.engine.queued() >= shared.queue_capacity {
                    Err(ServerFrame::Error {
                        tag: Some(tag),
                        code: ErrorCode::Backpressure,
                        detail: format!(
                            "queue at capacity ({}); retry after completions drain",
                            shared.queue_capacity
                        ),
                    })
                } else {
                    match core.engine.try_submit(request) {
                        Ok(id) => {
                            core.note_pending(id, Arc::clone(conn), tag);
                            Ok(())
                        }
                        Err(e) => {
                            let code = match e {
                                SubmitError::UnknownModel(_) => ErrorCode::UnknownModel,
                                SubmitError::NotLanguageModel(_) => ErrorCode::Unsupported,
                                SubmitError::ShapeMismatch { .. }
                                | SubmitError::MalformedTensor { .. }
                                | SubmitError::BadToken { .. }
                                | SubmitError::BadSteps { .. } => ErrorCode::BadInput,
                            };
                            Err(ServerFrame::Error {
                                tag: Some(tag),
                                code,
                                detail: e.to_string(),
                            })
                        }
                    }
                }
            };
            match verdict {
                Ok(()) => {
                    shared.work.notify_one();
                    Flow::Continue
                }
                Err(error) => reply(conn, &error),
            }
        }
        ClientFrame::Generate {
            tag,
            model,
            prompt,
            steps,
            arrival,
            interval,
        } => {
            // Narrow the wire-width fields before they reach the engine;
            // out-of-range values are client errors, not panics.
            let (Ok(prompt), Ok(steps)) = (u32::try_from(prompt), usize::try_from(steps)) else {
                return reply(
                    conn,
                    &ServerFrame::Error {
                        tag: Some(tag),
                        code: ErrorCode::BadInput,
                        detail: "prompt or steps exceeds the supported range".to_string(),
                    },
                );
            };
            let verdict = {
                let mut core = shared.core.lock().expect("core lock");
                // Same exact backpressure bound as Infer: the sequence's
                // first token step enters the queue on begin.
                if core.engine.queued() >= shared.queue_capacity {
                    Err(ServerFrame::Error {
                        tag: Some(tag),
                        code: ErrorCode::Backpressure,
                        detail: format!(
                            "queue at capacity ({}); retry after completions drain",
                            shared.queue_capacity
                        ),
                    })
                } else {
                    match core.engine.begin_sequence(
                        ModelId(model),
                        prompt,
                        steps,
                        arrival,
                        interval,
                    ) {
                        Ok(seq) => {
                            core.note_sequence(seq, Arc::clone(conn), tag);
                            Ok(())
                        }
                        Err(e) => {
                            let code = match e {
                                SubmitError::UnknownModel(_) => ErrorCode::UnknownModel,
                                SubmitError::NotLanguageModel(_) => ErrorCode::Unsupported,
                                _ => ErrorCode::BadInput,
                            };
                            Err(ServerFrame::Error {
                                tag: Some(tag),
                                code,
                                detail: e.to_string(),
                            })
                        }
                    }
                }
            };
            match verdict {
                Ok(()) => {
                    shared.work.notify_one();
                    Flow::Continue
                }
                Err(error) => reply(conn, &error),
            }
        }
        ClientFrame::Admit { name } => {
            let response = {
                let mut core = shared.core.lock().expect("core lock");
                // Idempotent: an already-resident name answers with its
                // existing id instead of admitting a duplicate.
                let existing = (0..core.engine.registry().len())
                    .find(|&i| core.engine.registry().spec(ModelId(i)).name == name);
                if let Some(model) = existing {
                    ServerFrame::Admitted { name, model }
                } else {
                    match crate::catalog::stock_catalog()
                        .into_iter()
                        .find(|s| s.name == name)
                    {
                        None => ServerFrame::Error {
                            tag: None,
                            code: ErrorCode::UnknownCatalogName,
                            detail: format!("no stock catalog model named {name:?}"),
                        },
                        Some(spec) => match core.engine.admit_strict(spec) {
                            Ok(id) => ServerFrame::Admitted { name, model: id.0 },
                            Err(e) => ServerFrame::Error {
                                tag: None,
                                code: ErrorCode::AdmissionRefused,
                                detail: e.to_string(),
                            },
                        },
                    }
                }
            };
            reply(conn, &response)
        }
        ClientFrame::Stats => {
            let response = {
                let core = shared.core.lock().expect("core lock");
                let stats = core.engine.stats();
                let degraded = stats
                    .chips
                    .iter()
                    .filter(|c| c.health == ChipHealth::Degraded)
                    .count();
                let failed = stats
                    .chips
                    .iter()
                    .filter(|c| c.health == ChipHealth::Failed)
                    .count();
                ServerFrame::Stats {
                    requests: stats.requests,
                    batches: stats.batches,
                    queued: core.engine.queued() as u64,
                    occupancy_cells: stats.occupancy_cells as u64,
                    budget_cells: stats.budget_cells as u64,
                    retries: stats.retries,
                    sheds: stats.sheds,
                    recoveries: stats.recoveries,
                    degraded_chips: degraded as u64,
                    failed_chips: failed as u64,
                }
            };
            reply(conn, &response)
        }
        ClientFrame::Goodbye => {
            // Flush this session's in-flight requests before
            // acknowledging, so a well-behaved client that waits for Bye
            // has seen every completion it is owed.
            let mut core = shared.core.lock().expect("core lock");
            while core.has_pending_for(conn.id) && !shared.shutdown.load(Ordering::SeqCst) {
                shared.work.notify_one();
                let (guard, _) = shared
                    .drained
                    .wait_timeout(core, Duration::from_millis(50))
                    .expect("core lock");
                core = guard;
            }
            drop(core);
            let _ = conn.send(&ServerFrame::Bye);
            Flow::Close
        }
    }
}

/// Sends a reply; a dead peer closes the session.
fn reply(conn: &Arc<Conn>, frame: &ServerFrame) -> Flow {
    if conn.send(frame).is_err() {
        Flow::Close
    } else {
        Flow::Continue
    }
}
