//! End-to-end device-level inference: LeNet-5 executed through the whole
//! physical chain — fold/tile planning, PCM programming, field-level
//! photonic MVM, TIA/ADC readout, digital accumulation — and validated
//! against the exact integer reference executor.
//!
//! ```sh
//! cargo run --release --example device_inference
//! ```

use oxbar::nn::synthetic;
use oxbar::nn::zoo::lenet5;
use oxbar::prelude::*;
use oxbar::sim::run_inference;

fn main() {
    let net = lenet5();
    let images: Vec<_> = (0..4)
        .map(|s| synthetic::activations(net.input(), 6, 100 + s))
        .collect();
    let filters = synthetic::filter_banks(&net, 6, 7);

    // Ideal chain: idealized PCM levels, exact readout — must be
    // bit-for-bit identical to the integer reference.
    let ideal = run_inference(&net, &SimConfig::ideal(128, 128), &images, &filters)
        .expect("lenet is sequential");
    println!(
        "ideal chain : exact = {}, top-1 agreement = {:.0}%, PCM cells written = {}",
        ideal.exact,
        ideal.top1_agreement * 100.0,
        ideal.cells_programmed
    );
    assert!(ideal.exact);

    // Noisy chain: 1% PCM programming sigma, 1 h drift, 0.02 rad phase
    // error with trimmers, compensated losses, 12-bit TIA/ADC readout.
    let noisy = run_inference(&net, &SimConfig::noisy(128, 128), &images, &filters)
        .expect("lenet is sequential");
    println!(
        "noisy chain : top-1 agreement = {:.0}%, output error rate = {:.3}, max |Δ| = {}",
        noisy.top1_agreement * 100.0,
        noisy.output_error_rate,
        noisy.output_max_abs_delta
    );
    println!("\nper-layer fidelity (noisy):");
    println!("{:<8} {:>12} {:>10}", "layer", "error_rate", "max|Δ|");
    for layer in &noisy.layers {
        println!(
            "{:<8} {:>12.4} {:>10}",
            layer.name, layer.error_rate, layer.max_abs_delta
        );
    }
}
