//! Regenerates Fig. 6 (IPS/W vs array rows and columns).
fn main() {
    oxbar_bench::figures::fig6::run();
}
