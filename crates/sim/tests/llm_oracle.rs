//! Property test pinning the device transformer pipeline to the integer
//! oracle: for random model shapes, sequence lengths, seeds, array
//! geometries, and **both** weight mappings, every decode step on the
//! ideal-mode crossbar is bit-for-bit the oracle's — next token, full
//! logit vector, and the K/V rows appended to the cache.

use oxbar_nn::mapping::WeightMapping;
use oxbar_nn::transformer::{generate, KvCache, LmConfig, LmWeights, OracleEngine};
use oxbar_sim::{lm_step, DeviceExecutor, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ideal_device_decode_equals_oracle(seed in 0u64..10_000) {
        // Derive the whole scenario from one seed so failures replay.
        let heads = [1, 2, 4][(seed % 3) as usize];
        let d_model = heads * [4, 8][((seed / 3) % 2) as usize];
        let config = LmConfig {
            d_model,
            d_ff: d_model * 2,
            heads,
            vocab: 8 + (seed % 25) as usize,
            blocks: 1 + (seed % 2) as usize,
            bits: 6,
            positions: 64,
        };
        config.validate();
        let weights = LmWeights::synthetic(config, seed ^ 0xC0FFEE);
        let steps = 2 + (seed % 5) as usize;
        let prompt = (seed % config.vocab as u64) as u32;

        let mapping = if seed.is_multiple_of(2) {
            WeightMapping::Offset
        } else {
            WeightMapping::Differential
        };
        let rows = [32, 64, 128][((seed / 7) % 3) as usize];
        let sim = SimConfig::ideal(rows, rows)
            .with_mapping(mapping)
            .with_seed(seed);
        let executor = DeviceExecutor::new(sim);

        let mut oracle = OracleEngine::new(&weights);
        let exact = generate(&weights, &mut oracle, prompt, steps)
            .expect("oracle is infallible");

        let network = weights.network("lm");
        let filters = weights.filters();
        let mut cache = KvCache::new(&weights.config);
        let mut token = prompt;
        for (pos, want) in exact.iter().enumerate() {
            let got = lm_step(&executor, &network, &filters, &weights, &cache, token, pos)
                .expect("healthy chip");
            prop_assert!(
                got.logits == want.logits,
                "seed {} pos {} ({:?} {}x{}): logits diverged",
                seed, pos, mapping, rows, rows
            );
            prop_assert_eq!(got.next_token, want.next_token);
            prop_assert_eq!(&got.k_rows, &want.k_rows);
            prop_assert_eq!(&got.v_rows, &want.v_rows);
            cache.apply(&got);
            token = got.next_token;
        }
    }
}
