//! Sequential network container with shape auditing.

use crate::layer::{Conv2d, Layer};
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};

/// A feed-forward network as an ordered layer list.
///
/// Residual topology is flattened: the runtime-spec analysis (like
/// SCALE-sim's) needs each MAC layer's shapes, not the skip wiring; skip
/// additions appear as [`Layer::Add`] entries for energy accounting.
///
/// # Examples
///
/// ```
/// use oxbar_nn::zoo::resnet50_v1_5;
///
/// let net = resnet50_v1_5();
/// assert_eq!(net.name(), "resnet50_v1.5");
/// assert!(net.total_params() > 25_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    input: TensorShape,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates an empty network for the given input shape.
    #[must_use]
    pub fn new(name: impl Into<String>, input: TensorShape) -> Self {
        Self {
            name: name.into(),
            input,
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Layer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Network name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape.
    #[must_use]
    pub fn input(&self) -> TensorShape {
        self.input
    }

    /// All layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The crossbar-mapped layers (convs + dense as 1×1 conv), in order.
    pub fn conv_like_layers(&self) -> impl Iterator<Item = Conv2d> + '_ {
        self.layers.iter().filter_map(|l| match l {
            Layer::Conv2d(c) => Some(c.clone()),
            Layer::Dense(d) => Some(d.as_conv()),
            _ => None,
        })
    }

    /// Total MACs per input image.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total parameters.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Total weight storage at `bits` precision.
    #[must_use]
    pub fn weight_bits(&self, bits: u8) -> u64 {
        self.total_params() * u64::from(bits)
    }

    /// The largest single activation tensor (input or any output), in bits
    /// at the given precision — the per-image working-set bound that sizes
    /// the input SRAM.
    #[must_use]
    pub fn max_activation_bits(&self, bits: u8) -> u64 {
        let mut max = self.input.bits(bits);
        for layer in &self.layers {
            max = max.max(layer.output_shape().bits(bits));
        }
        max
    }

    /// Checks layer-to-layer shape continuity for the conv/pool chain.
    ///
    /// Returns the first `(layer index, expected, found)` mismatch, if any.
    ///
    /// Residual wiring is validated structurally: a convolution whose input
    /// matches the *last join point* (the output of the previous `Add`,
    /// pool, or the network input) instead of the running shape is treated
    /// as a shortcut-branch projection; its output must agree with the
    /// `Add` that closes the block. `Dense` accepts any input whose element
    /// count matches its features (flattening).
    #[must_use]
    pub fn audit_shapes(&self) -> Option<(usize, TensorShape, TensorShape)> {
        let mut current = self.input;
        let mut last_join = self.input;
        let mut branch_output: Option<TensorShape> = None;
        for (idx, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Conv2d(c) => {
                    if c.input == current {
                        current = c.output_shape();
                    } else if c.input == last_join {
                        // Shortcut projection: runs from the block input.
                        branch_output = Some(c.output_shape());
                    } else {
                        return Some((idx, c.input, current));
                    }
                }
                Layer::Pool(p) => {
                    if p.input != current {
                        return Some((idx, p.input, current));
                    }
                    current = p.output_shape();
                    last_join = current;
                }
                Layer::Add(a) => {
                    if a.shape != current {
                        return Some((idx, a.shape, current));
                    }
                    if let Some(branch) = branch_output.take() {
                        if branch != a.shape {
                            return Some((idx, a.shape, branch));
                        }
                    }
                    last_join = current;
                }
                Layer::Dense(d) => {
                    if current.elements() != d.in_features {
                        return Some((idx, TensorShape::flat(d.in_features), current));
                    }
                    current = layer.output_shape();
                    last_join = current;
                }
            }
        }
        None
    }

    /// The final output shape.
    #[must_use]
    pub fn output_shape(&self) -> TensorShape {
        self.layers.last().map_or(self.input, Layer::output_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Pool, PoolKind};

    fn tiny_net() -> Network {
        let mut net = Network::new("tiny", TensorShape::new(8, 8, 3));
        net.push(Layer::Conv2d(Conv2d::new(
            "c1",
            TensorShape::new(8, 8, 3),
            3,
            3,
            16,
            1,
            1,
        )));
        net.push(Layer::Pool(Pool::new(
            "p1",
            TensorShape::new(8, 8, 16),
            PoolKind::Max,
            2,
            2,
            0,
        )));
        net.push(Layer::Dense(Dense::new("fc", 4 * 4 * 16, 10)));
        net
    }

    #[test]
    fn audit_passes_for_consistent_net() {
        assert_eq!(tiny_net().audit_shapes(), None);
    }

    #[test]
    fn audit_catches_mismatch() {
        let mut net = Network::new("broken", TensorShape::new(8, 8, 3));
        net.push(Layer::Conv2d(Conv2d::new(
            "c1",
            TensorShape::new(9, 9, 3), // wrong input
            3,
            3,
            16,
            1,
            1,
        )));
        let (idx, expected, found) = net.audit_shapes().unwrap();
        assert_eq!(idx, 0);
        assert_eq!(expected, TensorShape::new(9, 9, 3));
        assert_eq!(found, TensorShape::new(8, 8, 3));
    }

    #[test]
    fn totals_accumulate() {
        let net = tiny_net();
        let conv_macs = 8 * 8 * 3 * 3 * 3 * 16;
        let fc_macs = 4 * 4 * 16 * 10;
        assert_eq!(net.total_macs(), (conv_macs + fc_macs) as u64);
        assert_eq!(net.output_shape(), TensorShape::flat(10));
    }

    #[test]
    fn conv_like_includes_dense() {
        let net = tiny_net();
        let convs: Vec<_> = net.conv_like_layers().collect();
        assert_eq!(convs.len(), 2);
        assert_eq!(convs[1].filter_rows(), 256);
    }

    #[test]
    fn max_activation_is_widest_tensor() {
        let net = tiny_net();
        // conv output 8×8×16 = 1024 elements is the largest tensor.
        assert_eq!(net.max_activation_bits(6), 1024 * 6);
    }
}
