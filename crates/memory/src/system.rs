//! The four-block SRAM + DRAM memory system of the accelerator.

use crate::dram::{DramKind, DramModel};
use crate::sram::{SramBlock, SramKind};
use crate::traffic::TrafficStats;
use oxbar_units::{Area, DataVolume, Energy};
use serde::{Deserialize, Serialize};

/// On-chip SRAM sizing for the four blocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramSizing {
    /// Input activations buffer.
    pub input: DataVolume,
    /// Filter weights staging buffer.
    pub filter: DataVolume,
    /// Output buffer.
    pub output: DataVolume,
    /// Partial-sum buffer.
    pub accumulator: DataVolume,
}

impl SramSizing {
    /// The paper's optimal sizing: 26.3 / 0.75 / 0.75 / 0.75 MB (§VII).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            input: DataVolume::from_megabytes(26.3),
            filter: DataVolume::from_megabytes(0.75),
            output: DataVolume::from_megabytes(0.75),
            accumulator: DataVolume::from_megabytes(0.75),
        }
    }

    /// Same block ratios with a different input size (the Fig. 7b sweep).
    #[must_use]
    pub fn with_input(mut self, input: DataVolume) -> Self {
        self.input = input;
        self
    }

    /// Total capacity across the four blocks.
    #[must_use]
    pub fn total(&self) -> DataVolume {
        DataVolume::from_bits(
            self.input.as_bits()
                + self.filter.as_bits()
                + self.output.as_bits()
                + self.accumulator.as_bits(),
        )
    }
}

impl Default for SramSizing {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The chip's memory system: four SRAM blocks plus one DRAM channel.
///
/// # Examples
///
/// ```
/// use oxbar_memory::system::MemorySystem;
/// use oxbar_memory::TrafficStats;
///
/// let mut mem = MemorySystem::paper_default();
/// let stats = TrafficStats { dram_reads: 8e6, input_sram_reads: 8e6,
///                            ..TrafficStats::default() };
/// mem.apply_traffic(&stats);
/// assert!(mem.dram.energy() > mem.input.energy());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    /// Input activations SRAM.
    pub input: SramBlock,
    /// Filter weights SRAM.
    pub filter: SramBlock,
    /// Output SRAM.
    pub output: SramBlock,
    /// Partial-sum SRAM.
    pub accumulator: SramBlock,
    /// Off-chip DRAM channel.
    pub dram: DramModel,
}

impl MemorySystem {
    /// Builds a system from a sizing and DRAM kind.
    #[must_use]
    pub fn new(sizing: SramSizing, dram_kind: DramKind) -> Self {
        Self {
            input: SramBlock::new(SramKind::Input, sizing.input),
            filter: SramBlock::new(SramKind::Filter, sizing.filter),
            output: SramBlock::new(SramKind::Output, sizing.output),
            accumulator: SramBlock::new(SramKind::Accumulator, sizing.accumulator),
            dram: DramModel::new(DramKind::Hbm),
        }
        .with_dram(dram_kind)
    }

    fn with_dram(mut self, kind: DramKind) -> Self {
        self.dram = DramModel::new(kind);
        self
    }

    /// The paper's configuration: optimal SRAM sizing + HBM.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(SramSizing::paper_default(), DramKind::Hbm)
    }

    /// Applies a traffic record to all counters.
    pub fn apply_traffic(&mut self, stats: &TrafficStats) {
        self.dram
            .record_read(DataVolume::from_bits(stats.dram_reads));
        self.dram
            .record_write(DataVolume::from_bits(stats.dram_writes));
        self.input
            .record_read(DataVolume::from_bits(stats.input_sram_reads));
        self.input
            .record_write(DataVolume::from_bits(stats.input_sram_writes));
        self.filter
            .record_read(DataVolume::from_bits(stats.filter_sram_reads));
        self.filter
            .record_write(DataVolume::from_bits(stats.filter_sram_writes));
        self.output
            .record_read(DataVolume::from_bits(stats.output_sram_reads));
        self.output
            .record_write(DataVolume::from_bits(stats.output_sram_writes));
        self.accumulator
            .record_read(DataVolume::from_bits(stats.accumulator_sram_reads));
        self.accumulator
            .record_write(DataVolume::from_bits(stats.accumulator_sram_writes));
    }

    /// Total SRAM layout area.
    #[must_use]
    pub fn total_sram_area(&self) -> Area {
        self.input.area() + self.filter.area() + self.output.area() + self.accumulator.area()
    }

    /// Total SRAM access energy so far.
    #[must_use]
    pub fn total_sram_energy(&self) -> Energy {
        self.input.energy()
            + self.filter.energy()
            + self.output.energy()
            + self.accumulator.energy()
    }

    /// Total energy so far (SRAM + DRAM).
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.total_sram_energy() + self.dram.energy()
    }

    /// Clears all counters.
    pub fn reset_counters(&mut self) {
        self.input.reset_counters();
        self.filter.reset_counters();
        self.output.reset_counters();
        self.accumulator.reset_counters();
        self.dram.reset_counters();
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizing_totals() {
        let sizing = SramSizing::paper_default();
        assert!((sizing.total().as_megabytes() - 28.55).abs() < 1e-9);
    }

    #[test]
    fn paper_sram_area_dominates_at_121mm2_scale() {
        // 28.55 MB = 228.4 Mbit × 0.45 mm² ≈ 102.8 mm² — consistent with
        // Fig. 8 (area dominated by SRAM of a 121 mm² chip).
        let mem = MemorySystem::paper_default();
        let area = mem.total_sram_area().as_square_millimeters();
        assert!((area - 102.78).abs() < 0.01, "area {area}");
    }

    #[test]
    fn traffic_routes_to_blocks() {
        let mut mem = MemorySystem::paper_default();
        let stats = TrafficStats {
            filter_sram_writes: 123.0,
            dram_reads: 456.0,
            ..TrafficStats::default()
        };
        mem.apply_traffic(&stats);
        assert_eq!(mem.filter.bits_written().as_bits(), 123.0);
        assert_eq!(mem.dram.total_traffic().as_bits(), 456.0);
    }

    #[test]
    fn same_traffic_dram_costs_78x_sram() {
        let mut mem = MemorySystem::paper_default();
        let stats = TrafficStats {
            dram_reads: 1e6,
            input_sram_reads: 1e6,
            ..TrafficStats::default()
        };
        mem.apply_traffic(&stats);
        let ratio = mem.dram.energy().as_joules() / mem.input.energy().as_joules();
        assert!((ratio - 3.9e-12 / 50e-15).abs() < 1e-6); // 78×
    }

    #[test]
    fn reset_clears_everything() {
        let mut mem = MemorySystem::paper_default();
        mem.apply_traffic(&TrafficStats {
            dram_reads: 1e6,
            accumulator_sram_writes: 1e6,
            ..TrafficStats::default()
        });
        mem.reset_counters();
        assert_eq!(mem.total_energy(), Energy::ZERO);
    }

    #[test]
    fn with_input_resizes_only_input() {
        let sizing = SramSizing::paper_default().with_input(DataVolume::from_megabytes(8.0));
        assert!((sizing.input.as_megabytes() - 8.0).abs() < 1e-12);
        assert!((sizing.filter.as_megabytes() - 0.75).abs() < 1e-12);
    }
}
