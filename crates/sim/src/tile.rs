//! One fold-tile through the full device chain: PCM programming →
//! field-level crossbar propagation → TIA/ADC readout → signed recovery.

use crate::config::{Readout, SimConfig};
use oxbar_dataflow::tiles::WeightTile;
use oxbar_electronics::tia::Tia;
use oxbar_electronics::UnsignedQuantizer;
use oxbar_nn::mapping::MappedWeights;
use oxbar_pcm::array::Parallelism;
use oxbar_pcm::drift::DriftModel;
use oxbar_pcm::variation::DeviceVariation;
use oxbar_pcm::{PcmArray, ProgramReport};
use oxbar_photonics::crossbar::{CrossbarConfig, CrossbarSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Full-scale photocurrent assumed at the balanced receiver (A). The TIA
/// turns it into the ADC's full-scale voltage; the value cancels out of the
/// normalized transfer function and only anchors the analog chain.
const FULL_SCALE_CURRENT_A: f64 = 100e-6;

/// The signed partial sums one tile contributes.
#[derive(Debug, Clone)]
pub struct TileOutcome {
    /// `partials[pixel][c]` for the tile's logical columns `c` (output
    /// channels `col_offset + c` within the tile's group).
    pub partials: Vec<Vec<i64>>,
    /// PCM programming statistics for this tile.
    pub program: ProgramReport,
}

/// The per-pixel crossbar drive for one tile: unsigned input codes for the
/// tile's row slice, split into positive and negative passes (signed
/// activations run as `v = v⁺ − v⁻`, two unipolar crossbar cycles).
#[derive(Debug, Clone)]
pub struct TileDrive {
    /// Positive-part codes per pixel, `rows` long.
    pub positive: Vec<Vec<u8>>,
    /// Negative-part codes per pixel; `None` when every value is ≥ 0.
    pub negative: Option<Vec<Vec<u8>>>,
}

/// Executes one weight tile against its input windows.
///
/// The tile's signed weights are mapped to unipolar codes, programmed into
/// a PCM array (with the config's variation/drift), propagated through a
/// tile-sized field-level crossbar simulator (with the config's phase
/// errors/losses, seeded from `seed`), read out per column, and recovered
/// to signed integer partial sums.
///
/// # Panics
///
/// Panics if the drive's window lengths disagree with the tile geometry.
#[must_use]
pub fn run_tile(
    tile: &WeightTile,
    drive: &TileDrive,
    config: &SimConfig,
    seed: u64,
) -> TileOutcome {
    let rows = tile.rows();
    let mapped = MappedWeights::map(&tile.values, config.mapping, config.q());
    let pcols = mapped.physical_cols();

    // --- PCM programming ------------------------------------------------
    let device = config.device();
    let mut array = PcmArray::with_device(rows, pcols, device, config.weight_bits);
    let table_max = f64::from(config.table_max());
    let fractions: Vec<Vec<f64>> = mapped
        .unipolar()
        .iter()
        .map(|row| row.iter().map(|&u| f64::from(u) / table_max).collect())
        .collect();
    let program = if config.noise.pcm_sigma > 0.0 {
        let variation = DeviceVariation::new(config.noise.pcm_sigma, 0.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
        array.program_with_variation(&fractions, Parallelism::FullArray, &variation, &mut rng)
    } else {
        array.program(&fractions, Parallelism::FullArray)
    };
    let transmissions = if config.noise.drift_nu > 0.0 {
        array.drifted_transmissions(
            &DriftModel::new(config.noise.drift_nu),
            config.noise.drift_elapsed,
        )
    } else {
        array.transmissions()
    };

    // --- Photonic crossbar ----------------------------------------------
    let mut xbar = CrossbarConfig::new(rows, pcols)
        .with_phase_error_sigma(config.noise.phase_sigma_rad)
        .with_phase_error_seed(seed)
        .with_trim_resolution(config.noise.trim_resolution_rad);
    if config.noise.with_losses {
        xbar = xbar.with_losses(true).with_path_loss_compensation(true);
    }
    let sim = CrossbarSimulator::new(xbar);

    // --- Readout chain ---------------------------------------------------
    let tia = Tia::paper_default();
    let full_scale_v = tia.output_voltage(FULL_SCALE_CURRENT_A);
    let adc = match config.readout {
        Readout::Exact => None,
        Readout::Adc { bits } => {
            Some(UnsignedQuantizer::new(bits, full_scale_v).expect("valid ADC resolution"))
        }
    };
    // Undo the architecture normalization: the exact integer column output
    // is `y_norm · rows · v_max · table_max / t_max`.
    let v_max = config.v_max() as f64;
    let scale = rows as f64 * v_max * table_max / device.max_transmission();

    let mvm = |codes: &[u8]| -> Vec<i64> {
        assert_eq!(codes.len(), rows, "window must match tile rows");
        if codes.iter().all(|&v| v == 0) {
            // An all-dark drive produces exactly zero in every column.
            return vec![0; pcols];
        }
        let inputs: Vec<f64> = codes.iter().map(|&v| f64::from(v) / v_max).collect();
        let ys = sim.run_normalized(&inputs, &transmissions);
        ys.iter()
            .map(|&y| {
                let digitized = match &adc {
                    None => y,
                    Some(q) => {
                        let current = y.clamp(0.0, 1.0) * FULL_SCALE_CURRENT_A;
                        q.reconstruct(tia.output_voltage(current)) / full_scale_v
                    }
                };
                (digitized * scale).round() as i64
            })
            .collect()
    };

    let pixels = drive.positive.len();
    let mut partials = Vec::with_capacity(pixels);
    for p in 0..pixels {
        let raw_pos = mvm(&drive.positive[p]);
        let mut recovered = mapped.recover(&raw_pos, &drive.positive[p]);
        if let Some(negative) = &drive.negative {
            let raw_neg = mvm(&negative[p]);
            let rec_neg = mapped.recover(&raw_neg, &negative[p]);
            for (r, n) in recovered.iter_mut().zip(rec_neg) {
                *r -= n;
            }
        }
        partials.push(recovered);
    }
    TileOutcome { partials, program }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oxbar_dataflow::tiles::WeightTiles;
    use oxbar_dataflow::FoldPlan;
    use oxbar_nn::synthetic;
    use oxbar_nn::{Conv2d, TensorShape};

    fn signed_mac(tile: &WeightTile, window: &[i64]) -> Vec<i64> {
        (0..tile.cols())
            .map(|c| {
                (0..tile.rows())
                    .map(|r| i64::from(tile.values[r][c]) * window[r])
                    .sum()
            })
            .collect()
    }

    #[test]
    fn ideal_tile_is_bit_exact_for_unsigned_windows() {
        let conv = Conv2d::new("c", TensorShape::new(1, 1, 40), 1, 1, 12, 1, 0);
        let bank = synthetic::filter_bank(&conv, 6, 3);
        let plan = FoldPlan::plan(&conv, 32, 8, 1);
        let config = SimConfig::ideal(32, 8);
        let tiles: Vec<_> = WeightTiles::new(&conv, &bank.weights, &plan).collect();
        assert!(tiles.len() > 1, "fold coverage");
        for (t, tile) in tiles.iter().enumerate() {
            let window: Vec<u8> = (0..tile.rows()).map(|r| (r * 7 % 64) as u8).collect();
            let drive = TileDrive {
                positive: vec![window.clone()],
                negative: None,
            };
            let out = run_tile(tile, &drive, &config, 99 + t as u64);
            let expected = signed_mac(
                tile,
                &window.iter().map(|&v| i64::from(v)).collect::<Vec<_>>(),
            );
            assert_eq!(out.partials[0], expected, "tile {t}");
            assert_eq!(
                out.program.cells_programmed,
                tile.rows() * tile.cols(),
                "offset mapping programs one cell per weight"
            );
        }
    }

    #[test]
    fn signed_windows_split_into_two_passes_exactly() {
        let conv = Conv2d::new("c", TensorShape::new(1, 1, 24), 1, 1, 6, 1, 0);
        let bank = synthetic::filter_bank(&conv, 6, 11);
        let plan = FoldPlan::plan(&conv, 32, 8, 1);
        let tile = WeightTiles::new(&conv, &bank.weights, &plan)
            .next()
            .unwrap();
        let window: Vec<i64> = (0..tile.rows() as i64).map(|r| (r % 13) - 6).collect();
        let drive = TileDrive {
            positive: vec![window.iter().map(|&v| v.max(0) as u8).collect()],
            negative: Some(vec![window.iter().map(|&v| (-v).max(0) as u8).collect()]),
        };
        let out = run_tile(&tile, &drive, &SimConfig::ideal(32, 8), 5);
        assert_eq!(out.partials[0], signed_mac(&tile, &window));
    }

    #[test]
    fn differential_mapping_is_also_exact() {
        use oxbar_nn::mapping::WeightMapping;
        let conv = Conv2d::new("c", TensorShape::new(1, 1, 16), 1, 1, 4, 1, 0);
        let bank = synthetic::filter_bank(&conv, 6, 21);
        let plan = FoldPlan::plan(&conv, 32, 16, 2);
        let tile = WeightTiles::new(&conv, &bank.weights, &plan)
            .next()
            .unwrap();
        let window: Vec<u8> = (0..tile.rows()).map(|r| (r * 11 % 64) as u8).collect();
        let drive = TileDrive {
            positive: vec![window.clone()],
            negative: None,
        };
        let config = SimConfig::ideal(32, 16).with_mapping(WeightMapping::Differential);
        let out = run_tile(&tile, &drive, &config, 1);
        let expected = signed_mac(
            &tile,
            &window.iter().map(|&v| i64::from(v)).collect::<Vec<_>>(),
        );
        assert_eq!(out.partials[0], expected);
    }

    #[test]
    fn noise_perturbs_but_stays_reproducible() {
        let conv = Conv2d::new("c", TensorShape::new(1, 1, 64), 1, 1, 8, 1, 0);
        let bank = synthetic::filter_bank(&conv, 6, 31);
        let plan = FoldPlan::plan(&conv, 64, 8, 1);
        let tile = WeightTiles::new(&conv, &bank.weights, &plan)
            .next()
            .unwrap();
        let window: Vec<u8> = (0..tile.rows()).map(|r| (r * 5 % 64) as u8).collect();
        let drive = TileDrive {
            positive: vec![window.clone()],
            negative: None,
        };
        let config = SimConfig::noisy(64, 8);
        let a = run_tile(&tile, &drive, &config, 77);
        let b = run_tile(&tile, &drive, &config, 77);
        assert_eq!(a.partials, b.partials, "same seed, same result");
        let c = run_tile(&tile, &drive, &config, 78);
        assert_ne!(a.partials, c.partials, "different seed perturbs");
        let exact = signed_mac(
            &tile,
            &window.iter().map(|&v| i64::from(v)).collect::<Vec<_>>(),
        );
        assert_ne!(a.partials[0], exact, "noise shifts the MAC");
        // ... but not catastrophically: within a few percent of full scale.
        let full_scale = tile.rows() as f64 * 63.0 * 31.0;
        for (got, want) in a.partials[0].iter().zip(&exact) {
            assert!(((got - want).abs() as f64) < 0.05 * full_scale);
        }
    }
}
