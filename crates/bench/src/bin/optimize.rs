//! Runs the Sec. VI.B optimization flow.
fn main() {
    oxbar_bench::figures::optimize::run();
}
